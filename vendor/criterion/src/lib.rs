//! Offline stand-in for the subset of the Criterion.rs API this
//! workspace's benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher::iter`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of Criterion's full statistical machinery, each benchmark is
//! warmed up once and then timed for `sample_size` samples; the mean and
//! min per-iteration wall time are printed to stdout. Good enough for
//! the relative comparisons the workspace benches make (e.g. depth
//! oracle vs. incremental search), with zero external dependencies.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under Criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, recording one sample per configured sample count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warmup call.
        black_box(f());
        let n = self.samples.capacity().max(1);
        for _ in 0..n {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// Sample-count override for quick runs (e.g. a CI smoke job):
/// `NSB_BENCH_SAMPLES=2 cargo bench` caps every benchmark at 2 samples.
/// Unset, empty, unparsable, or zero values leave the configured count.
fn sample_override() -> Option<usize> {
    std::env::var("NSB_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

fn run_one(full_name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let sample_size = sample_override()
        .map(|n| n.min(sample_size))
        .unwrap_or(sample_size);
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{full_name:<48} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{full_name:<48} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        b.samples.len()
    );
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.default_sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // The harness=false bench binary receives libtest-style args
            // from `cargo bench`/`cargo test`; none change our behavior.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("unit/one", |b| b.iter(|| calls = calls.wrapping_add(1)));
        let mut g = c.benchmark_group("unit");
        g.sample_size(2);
        g.bench_function("two", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        assert!(calls > 0);
    }
}
