//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the [`Strategy`] trait with `prop_map`, numeric range and tuple
//! strategies, [`ProptestConfig`], and the [`proptest!`] /
//! [`prop_assert!`] macros.
//!
//! Shrinking is not implemented: each property is simply evaluated on
//! `cases` deterministic pseudo-random inputs (seeded from the test
//! name), which preserves the workspace's regression value without the
//! real crate's machinery.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases evaluated per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG driving input generation.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministically seeds the generator from a test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name keeps inputs stable across runs.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty range strategy");
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.gen::<f64>()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.gen::<f32>()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Everything a property test file needs in one import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

/// Asserts a property holds, with optional format arguments.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two values are equal, with optional format arguments.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` evaluating the body on `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for _case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -1.5f64..1.5, k in 0u64..10) {
            prop_assert!((-1.5..1.5).contains(&x));
            prop_assert!(k < 10, "k = {k}");
        }

        #[test]
        fn tuples_and_map_compose(p in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&p));
        }
    }
}
