//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits and a
//! deterministic [`rngs::StdRng`].
//!
//! The container this workspace builds in has no crates.io access, so the
//! real `rand` cannot be fetched; everything here is `std`-only. The
//! generator is xoshiro256** seeded through SplitMix64 — statistically
//! solid for the Monte-Carlo sampling and optimizer restarts the
//! workspace performs, though the exact stream differs from upstream
//! `StdRng` (all workspace tests use tolerance-based assertions, not
//! golden random values).
//!
//! ```
//! use rand::{Rng, SeedableRng};
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! ```

#![warn(missing_docs)]

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the stand-in for
/// `rand`'s `Standard` distribution).
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level random sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (e.g. `rng.gen::<f64>()` is
    /// uniform in `[0, 1)`).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Draws a uniform `f64` in `[low, high)`.
    fn gen_range_f64(&mut self, low: f64, high: f64) -> f64 {
        low + (high - low) * self.gen::<f64>()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state,
            // exactly as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn f64_uniform_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn works_through_unsized_generic_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
