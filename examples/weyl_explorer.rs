//! Explore the Weyl chamber: coordinates and invariants of named gates,
//! entangling power, perfect-entangler membership, synthesis regions and
//! mirror partners — the theory toolkit of Section V.
//!
//! Run with: `cargo run --release --example weyl_explorer`

use nsb_core::prelude::*;
use nsb_core::weyl::{
    entangling_power, is_perfect_entangler, local_invariants, min_layers_for_swap,
};

fn main() {
    let gates: Vec<(&str, Mat4)> = vec![
        ("Identity", Mat4::identity()),
        ("CNOT", Mat4::cnot()),
        ("CZ", Mat4::cz()),
        ("iSWAP", Mat4::iswap()),
        ("sqrt(iSWAP)", Mat4::sqrt_iswap()),
        ("SWAP", Mat4::swap()),
        ("sqrt(SWAP)", Mat4::sqrt_swap()),
        ("B gate", Mat4::b_gate()),
        ("CPhase(pi/2)", Mat4::cphase(std::f64::consts::FRAC_PI_2)),
    ];
    println!(
        "{:<14} {:<28} {:>7} {:>4} {:>8} {:>8}",
        "gate", "Weyl coordinates", "ep", "PE", "SWAP-in", "CNOT-in-2"
    );
    for (name, u) in &gates {
        let c = kak_vector(u);
        let ep = entangling_power(c);
        let pe = is_perfect_entangler(c, 1e-9);
        let swap_layers = min_layers_for_swap(c)
            .map(|n| n.to_string())
            .unwrap_or_else(|| ">3".into());
        println!(
            "{:<14} {:<28} {:>7.4} {:>4} {:>8} {:>8}",
            name,
            format!("{c}"),
            ep,
            if pe { "yes" } else { "no" },
            swap_layers,
            if can_cnot_in_2(c) { "yes" } else { "no" }
        );
    }

    println!("\nMakhlin local invariants (g1, g2, g3):");
    for (name, u) in &gates[..6] {
        let (g1, g2, g3) = local_invariants(u);
        println!("  {:<14} ({:+.4}, {:+.4}, {:+.4})", name, g1, g2, g3);
    }

    println!("\nAppendix-B mirror partners (2-layer SWAP synthesis pairs):");
    for (name, u) in &gates[1..6] {
        let c = kak_vector(u);
        println!(
            "  {:<14} <-> {}  (self-mirror: {})",
            name,
            c.mirror(),
            c.is_self_mirror(1e-9)
        );
    }

    // Sweep an XY trajectory and report where the selection criteria fire.
    println!("\nXY-trajectory sweep (t/2, t/2, 0):");
    let coords: Vec<WeylCoord> = (0..=100)
        .map(|k| WeylCoord::new(k as f64 / 200.0, k as f64 / 200.0, 0.0))
        .collect();
    for (label, crit) in [
        ("SWAP-in-3", SelectionCriterion::SwapIn3),
        ("SWAP-in-3 + CNOT-in-2", SelectionCriterion::SwapIn3CnotIn2),
    ] {
        let idx = first_crossing(&coords, crit, 0.0).unwrap();
        println!("  {label} first satisfied at {}", coords[idx]);
    }
}
