//! Compile a QFT circuit onto a small calibrated device under all three
//! basis-gate strategies and verify the compiled program against the
//! logical circuit by statevector simulation.
//!
//! Run with: `cargo run --release --example compile_qft`

use nsb_core::prelude::*;

fn main() {
    // A 3x2 device is large enough for a 5-qubit QFT and small enough to
    // verify by statevector. The fast-test config uses a 2-level pulse
    // model; swap it for DeviceConfig::default() for the full 3-level
    // physics (slower).
    println!("calibrating a 3x2 device...");
    let device = Device::build(3, 2, DeviceConfig::fast_test()).expect("device");
    for e in device.edges().iter().take(2) {
        println!(
            "  edge {:?}: baseline {:.1} ns {}, criterion2 {:.1} ns {}",
            e.qubits,
            e.baseline.duration,
            e.baseline.coord,
            e.criterion2.duration,
            e.criterion2.coord
        );
    }

    let qft = generators::qft(5, true);
    println!(
        "\nlogical QFT-5: {} gates, {} two-qubit",
        qft.len(),
        qft.two_qubit_count()
    );

    for strategy in BasisStrategy::ALL {
        let compiled = Transpiler::new(&device, strategy)
            .compile(&qft)
            .expect("compile");
        let overlap = verify_compiled(&qft, &compiled);
        println!(
            "{strategy:<12}: {:>4} entanglers, {:>2} swaps inserted, {:>8.1} ns, fidelity {:.4}, verified overlap {:.6}",
            compiled.schedule.entangler_count,
            compiled.swaps_inserted,
            compiled.schedule.duration,
            compiled.fidelity,
            overlap
        );
        assert!(
            overlap > 0.999,
            "compiled circuit must match the logical one"
        );
    }
    println!("\nall three compilations verified against the logical circuit.");
}
