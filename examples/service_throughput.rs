//! Batch-compilation throughput: the concurrent service (worker pool +
//! shared synthesis cache) versus one-at-a-time serial compilation of
//! the same jobs, then a warm-started service preloaded from a
//! persisted cache snapshot.
//!
//! Run with: `cargo run --release --example service_throughput`
//! (pass `--full` for the 10x10 device and the full Table II suite).

use nsb_core::prelude::*;
use std::time::Instant;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (cols, rows) = if full { (10, 10) } else { (4, 3) };
    println!("calibrating a {cols}x{rows} device...");
    let device = Device::build(cols, rows, DeviceConfig::fast_test()).expect("device");
    let capacity = device.topology().n_qubits();

    // The Table II benchmarks that fit the device, two rounds each under
    // two strategies — repetition across jobs is exactly what the shared
    // cache exploits.
    let suite: Vec<_> = table2_suite(7)
        .into_iter()
        .filter(|b| b.circuit.n_qubits() <= capacity)
        .collect();
    let mut jobs = Vec::new();
    for _round in 0..2 {
        for b in &suite {
            for strategy in [BasisStrategy::Baseline, BasisStrategy::Criterion2] {
                jobs.push((b.name.clone(), strategy, b.circuit.clone()));
            }
        }
    }
    println!(
        "{} jobs ({} benchmarks x 2 strategies x 2 rounds)\n",
        jobs.len(),
        suite.len()
    );

    // Serial baseline: a fresh transpiler per job, no shared state.
    let started = Instant::now();
    let mut serial_fidelities = Vec::new();
    for (_, strategy, circuit) in &jobs {
        let compiled = Transpiler::new(&device, *strategy)
            .compile(circuit)
            .expect("serial compile");
        serial_fidelities.push(compiled.fidelity);
    }
    let serial = started.elapsed();
    println!(
        "serial:  {} jobs in {:.2} s",
        jobs.len(),
        serial.as_secs_f64()
    );

    // Concurrent service: >= 2 workers sharing one synthesis cache.
    let workers = ServiceConfig::default().workers.max(2);
    let service = CompileService::new(
        device,
        ServiceConfig {
            workers,
            queue_capacity: jobs.len().max(1),
            ..ServiceConfig::default()
        },
    )
    .expect("start service");
    let started = Instant::now();
    let handles: Vec<_> = jobs
        .iter()
        .map(|(_, strategy, circuit)| {
            service
                .submit(JobSpec::new(circuit.clone(), *strategy))
                .expect("submit")
        })
        .collect();
    let service_fidelities: Vec<f64> = handles
        .into_iter()
        .map(|h| h.wait().expect("service compile").fidelity)
        .collect();
    let concurrent = started.elapsed();
    println!(
        "service: {} jobs in {:.2} s on {workers} workers",
        jobs.len(),
        concurrent.as_secs_f64()
    );
    println!(
        "speedup: {:.2}x\n",
        serial.as_secs_f64() / concurrent.as_secs_f64()
    );

    // The cache serves bit-identical decompositions, so results agree
    // exactly with the serial run.
    let identical = serial_fidelities
        .iter()
        .zip(&service_fidelities)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!("fidelities bit-identical to serial: {identical}");

    println!("\n{}", service.metrics().report());
    let stats = service.cache().stats();
    assert!(
        stats.hits > 0,
        "expected shared-cache hits across repeated jobs"
    );
    let cold_rate = service.metrics().cache_hit_rate();

    // Warm start: persist the cache, preload a fresh service from the
    // snapshot and rerun the whole batch. Every synthesis is already on
    // disk, so the warm run's hit rate must beat the cold run's.
    let store_dir =
        std::env::temp_dir().join(format!("nsb-throughput-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = SnapshotStore::open(&store_dir).expect("open store");
    let saved = service.drain_to(&store).expect("persist cache");
    let device = service.device().clone();
    service.shutdown();
    println!(
        "\npersisted {} cache entries ({} bytes); warm-starting a fresh service...",
        saved.entries, saved.bytes
    );

    let warm = CompileService::new(
        device,
        ServiceConfig {
            workers,
            queue_capacity: jobs.len().max(1),
            ..ServiceConfig::default()
        },
    )
    .expect("start warm service");
    let report = warm.warm_start_from(&store).expect("warm start");
    println!(
        "warm start: {} entries loaded, {} skipped",
        report.loaded, report.skipped
    );
    let started = Instant::now();
    let handles: Vec<_> = jobs
        .iter()
        .map(|(_, strategy, circuit)| {
            warm.submit(JobSpec::new(circuit.clone(), *strategy))
                .expect("submit")
        })
        .collect();
    let warm_fidelities: Vec<f64> = handles
        .into_iter()
        .map(|h| h.wait().expect("warm compile").fidelity)
        .collect();
    let warm_elapsed = started.elapsed();
    let warm_rate = warm.metrics().cache_hit_rate();
    println!(
        "warm:    {} jobs in {:.2} s ({:.1}% hit rate vs {:.1}% cold)",
        jobs.len(),
        warm_elapsed.as_secs_f64(),
        100.0 * warm_rate,
        100.0 * cold_rate,
    );
    let warm_identical = serial_fidelities
        .iter()
        .zip(&warm_fidelities)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!("warm fidelities bit-identical to serial: {warm_identical}");
    assert!(warm_identical, "warm-started results diverged");
    assert!(
        warm_rate > cold_rate,
        "warm-started hit rate ({warm_rate:.3}) must beat the cold run ({cold_rate:.3})"
    );
    warm.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);
}
