//! Batch-compilation throughput: the concurrent service (worker pool +
//! shared synthesis cache) versus one-at-a-time serial compilation of
//! the same jobs.
//!
//! Run with: `cargo run --release --example service_throughput`
//! (pass `--full` for the 10x10 device and the full Table II suite).

use nsb_core::prelude::*;
use std::time::Instant;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (cols, rows) = if full { (10, 10) } else { (4, 3) };
    println!("calibrating a {cols}x{rows} device...");
    let device = Device::build(cols, rows, DeviceConfig::fast_test()).expect("device");
    let capacity = device.topology().n_qubits();

    // The Table II benchmarks that fit the device, two rounds each under
    // two strategies — repetition across jobs is exactly what the shared
    // cache exploits.
    let suite: Vec<_> = table2_suite(7)
        .into_iter()
        .filter(|b| b.circuit.n_qubits() <= capacity)
        .collect();
    let mut jobs = Vec::new();
    for _round in 0..2 {
        for b in &suite {
            for strategy in [BasisStrategy::Baseline, BasisStrategy::Criterion2] {
                jobs.push((b.name.clone(), strategy, b.circuit.clone()));
            }
        }
    }
    println!(
        "{} jobs ({} benchmarks x 2 strategies x 2 rounds)\n",
        jobs.len(),
        suite.len()
    );

    // Serial baseline: a fresh transpiler per job, no shared state.
    let started = Instant::now();
    let mut serial_fidelities = Vec::new();
    for (_, strategy, circuit) in &jobs {
        let compiled = Transpiler::new(&device, *strategy)
            .compile(circuit)
            .expect("serial compile");
        serial_fidelities.push(compiled.fidelity);
    }
    let serial = started.elapsed();
    println!(
        "serial:  {} jobs in {:.2} s",
        jobs.len(),
        serial.as_secs_f64()
    );

    // Concurrent service: >= 2 workers sharing one synthesis cache.
    let workers = ServiceConfig::default().workers.max(2);
    let service = CompileService::new(
        device,
        ServiceConfig {
            workers,
            queue_capacity: jobs.len().max(1),
            ..ServiceConfig::default()
        },
    )
    .expect("start service");
    let started = Instant::now();
    let handles: Vec<_> = jobs
        .iter()
        .map(|(_, strategy, circuit)| {
            service
                .submit(JobSpec::new(circuit.clone(), *strategy))
                .expect("submit")
        })
        .collect();
    let service_fidelities: Vec<f64> = handles
        .into_iter()
        .map(|h| h.wait().expect("service compile").fidelity)
        .collect();
    let concurrent = started.elapsed();
    println!(
        "service: {} jobs in {:.2} s on {workers} workers",
        jobs.len(),
        concurrent.as_secs_f64()
    );
    println!(
        "speedup: {:.2}x\n",
        serial.as_secs_f64() / concurrent.as_secs_f64()
    );

    // The cache serves bit-identical decompositions, so results agree
    // exactly with the serial run.
    let identical = serial_fidelities
        .iter()
        .zip(&service_fidelities)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!("fidelities bit-identical to serial: {identical}");

    println!("\n{}", service.metrics().report());
    let stats = service.cache().stats();
    assert!(
        stats.hits > 0,
        "expected shared-cache hits across repeated jobs"
    );
    service.shutdown();
}
