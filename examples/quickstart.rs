//! Quickstart: pick a nonstandard basis gate off a simulated trajectory
//! and synthesize SWAP and CNOT from it.
//!
//! Run with: `cargo run --release --example quickstart`

use nsb_core::prelude::*;
use nsb_core::weyl::entangling_power;

fn main() {
    // 1. Simulate one qubit pair of the case-study architecture: two
    //    far-detuned transmons with a tunable coupler, biased to zero ZZ.
    println!("preparing unit cell (zero-ZZ bias search)...");
    let cell = PreparedCell::prepare(&UnitCellParams::default());
    println!(
        "  coupler biased at {:.3} GHz, residual ZZ {:.1e} rad/ns",
        cell.params.omega_c / (2.0 * std::f64::consts::PI),
        cell.residual_zz
    );

    // 2. Drive it hard (xi = 0.04 Phi_0): the Cartan trajectory is ~8x
    //    faster than the standard weak drive, but deviates from the
    //    textbook XY path — it is a *nonstandard* trajectory.
    let config = TrajectoryConfig {
        t_max: 30.0,
        ..TrajectoryConfig::default()
    };
    let traj = cell.trajectory(0.04, &config);

    // 3. Let this qubit pair choose its own basis gate: the fastest gate
    //    on the trajectory able to synthesize SWAP in 3 layers and CNOT
    //    in 2 layers (the paper's Criterion 2).
    let coords = traj.coords();
    let idx = first_crossing(&coords, SelectionCriterion::SwapIn3CnotIn2, 0.15)
        .expect("trajectory crosses the selection region");
    let point = &traj.points[idx];
    println!(
        "\nselected basis gate: {:.1} ns pulse, Weyl coordinates {}",
        point.duration, point.coord
    );
    println!(
        "  entangling power {:.4}, leakage {:.1e}",
        entangling_power(point.coord),
        point.leakage
    );

    // 4. Compile SWAP and CNOT into it — no human ever tuned this gate to
    //    be anything standard.
    let decomposer = Decomposer::new(point.gate);
    let swap = decomposer.decompose(&Mat4::swap()).expect("SWAP synthesis");
    let cnot = decomposer.decompose(&Mat4::cnot()).expect("CNOT synthesis");
    println!(
        "\nSWAP: {} layers, decomposition error {:.1e}",
        swap.layers, swap.error
    );
    println!(
        "CNOT: {} layers, decomposition error {:.1e}",
        cnot.layers, cnot.error
    );

    // 5. Compare against the baseline sqrt(iSWAP) from the slow standard
    //    trajectory (3 layers of an ~8x slower gate).
    let t_1q = 20.0;
    let swap_dur = nsb_core::device::synthesized_duration(swap.layers, point.duration, t_1q);
    println!(
        "\nsynthesized SWAP duration: {:.1} ns (baseline would be ~330 ns)",
        swap_dur
    );
    println!(
        "coherence-limited SWAP fidelity at T = 80 us: {:.5}",
        nsb_core::device::coherence_fidelity_2q(80_000.0, swap_dur)
    );
}
