//! Walk through the Section VI calibration protocol for one qubit pair:
//! initial tuneup (coarse tuning, QPT along the trajectory, candidate
//! narrowing via the Weyl-chamber regions, GST refinement) followed by a
//! daily retuning, with the edge-coloring schedule for device-scale
//! parallel calibration.
//!
//! Run with: `cargo run --release --example calibration_cycle`

use nsb_core::device::{initial_tuneup, retune, GridTopology};
use nsb_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    println!("== Initial tuneup (monthly) ==");
    println!("step 1: coarse tuning — zero-ZZ bias + drive frequency scan");
    let cell = PreparedCell::prepare(&UnitCellParams::default());
    let config = TrajectoryConfig {
        t_max: 35.0,
        ..TrajectoryConfig::default()
    };
    println!("step 2: QPT along the trajectory (1 ns controller resolution)");
    println!("step 3: narrow candidates with the Section V region geometry");
    println!("step 4: GST the survivors, select the fastest\n");
    let (traj, tuneup) = initial_tuneup(
        &cell,
        0.04,
        SelectionCriterion::SwapIn3CnotIn2,
        0.15,
        2e-3,
        &config,
        &mut rng,
    )
    .expect("tuneup");
    println!(
        "QPT kept {} candidate gates; selected {} ns with refined coordinates {}",
        tuneup.candidates.len(),
        tuneup.duration,
        tuneup.refined_coord
    );
    let true_gate = &traj.points[tuneup.selected_index].gate;
    println!(
        "GST estimate vs true simulated unitary: Frobenius distance {:.2e}",
        (tuneup.refined_gate - *true_gate).norm()
    );

    println!("\n== Retuning (daily) ==");
    let retuned = retune(&traj, &tuneup, &mut rng);
    println!(
        "re-characterized the same {} ns gate; coordinate drift {:.2e}",
        retuned.duration,
        retuned.refined_coord.dist(tuneup.refined_coord)
    );

    println!("\n== Device-scale scheduling ==");
    let grid = GridTopology::new(10, 10);
    let colors = grid.edge_coloring();
    let rounds = colors.iter().max().unwrap() + 1;
    println!(
        "10x10 grid: {} edges calibrated in {} parallel rounds (edge coloring)",
        grid.edges().len(),
        rounds
    );
    println!("=> calibration time does not grow with device size (Section VI)");
}
