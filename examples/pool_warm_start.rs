//! A sharded service pool across two device calibrations, with a
//! persistent synthesis-cache store.
//!
//! Run with: `cargo run --release --example pool_warm_start`
//!
//! The first run is cold: every shard's snapshot is missing, jobs pay
//! full synthesis cost, and the pool drains its caches to the store on
//! shutdown. Rerun it with the same `NSB_STORE_DIR` and every shard
//! warm-starts — the run prints (and asserts) a strictly higher
//! aggregate cache hit rate while producing bit-identical circuits.
//!
//! Environment:
//! * `NSB_STORE_DIR` — snapshot directory (default: a per-user dir under
//!   the system temp dir, so back-to-back runs see each other).

use nsb_core::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

fn store_dir() -> PathBuf {
    match std::env::var_os("NSB_STORE_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => std::env::temp_dir().join("nsb-pool-warm-start"),
    }
}

fn main() {
    let dir = store_dir();
    println!("snapshot store: {}", dir.display());

    // Two distinct calibrations: the default fast-test device and a
    // re-seeded variant (different trajectories => different per-edge
    // basis gates => a different calibration hash and snapshot).
    let device_a = Device::build(3, 2, DeviceConfig::fast_test()).expect("device a");
    let mut cfg_b = DeviceConfig::fast_test();
    cfg_b.seed = 7;
    let device_b = Device::build(3, 2, cfg_b).expect("device b");
    println!(
        "shard `alpha` calibration {:#018x}\nshard `beta`  calibration {:#018x}",
        device_a.calibration_hash(),
        device_b.calibration_hash()
    );

    let shard_config = ServiceConfig {
        workers: 2,
        queue_capacity: 128,
        cache_capacity: 2048,
        ..ServiceConfig::default()
    };
    let pool = ServicePool::new(
        vec![
            ShardSpec::new("alpha", device_a.clone()).with_config(shard_config),
            ShardSpec::new("beta", device_b.clone()).with_config(shard_config),
        ],
        PoolConfig {
            fallback: FallbackPolicy::LeastLoaded,
            store_dir: Some(dir.clone()),
            flush_interval: Some(Duration::from_millis(250)),
        },
    )
    .expect("pool");

    let warm = pool.warm_reports().iter().any(|(_, r)| r.found);
    for (name, report) in pool.warm_reports() {
        println!(
            "shard `{name}` warm start: found={} loaded={} skipped={}",
            report.found, report.loaded, report.skipped
        );
    }

    // The same circuit batch for both shards, routed by shard name.
    let circuits = [
        generators::ghz(4),
        generators::qft(4, true),
        generators::bv_all_ones(5),
    ];
    let mut handles = Vec::new();
    for circuit in &circuits {
        for strategy in [BasisStrategy::Baseline, BasisStrategy::Criterion2] {
            for shard in ["alpha", "beta"] {
                let handle = pool
                    .submit(
                        &JobRoute::Name(shard.into()),
                        JobSpec::new(circuit.clone(), strategy),
                    )
                    .expect("submit");
                handles.push((shard, strategy, circuit.clone(), handle));
            }
        }
    }
    // One job routed by calibration hash, and one to a shard that does
    // not exist — the LeastLoaded policy compiles it anyway and counts
    // it as fallback-routed.
    pool.submit(
        &JobRoute::Calibration(device_b.calibration_hash()),
        JobSpec::new(generators::ghz(3), BasisStrategy::Criterion1),
    )
    .expect("submit by calibration")
    .wait()
    .expect("compile by calibration");
    pool.submit(
        &JobRoute::Name("gamma".into()),
        JobSpec::new(generators::ghz(3), BasisStrategy::Criterion1),
    )
    .expect("fallback submit")
    .wait()
    .expect("fallback compile");

    // Serial references prove routed results are bit-identical to a
    // plain per-device transpiler, warm or cold.
    let mut mismatches = 0;
    for (shard, strategy, circuit, handle) in handles {
        let compiled = handle.wait().expect("pool compile");
        let device = if shard == "alpha" {
            &device_a
        } else {
            &device_b
        };
        let reference = Transpiler::new(device, strategy)
            .compile(&circuit)
            .expect("serial compile");
        if compiled.fidelity.to_bits() != reference.fidelity.to_bits() {
            mismatches += 1;
        }
    }
    assert_eq!(mismatches, 0, "pool output diverged from serial reference");
    println!("\nall routed jobs bit-identical to serial per-device compilation");

    println!("\n{}", pool.report());
    assert_eq!(pool.fallback_routed(), 1);

    let metrics = pool.shard_metrics();
    let (hits, lookups) = metrics.iter().fold((0, 0), |(h, l), m| {
        (h + m.cache_hits, l + m.cache_hits + m.cache_misses)
    });
    let rate = hits as f64 / lookups.max(1) as f64;

    // Two-phase contract: the cold run records its hit rate next to the
    // snapshots; a warm run must strictly beat it.
    let marker = dir.join("cold-hit-rate.txt");
    if warm {
        let cold_rate: f64 = std::fs::read_to_string(&marker)
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .expect("cold run must have recorded its hit rate");
        println!(
            "warm aggregate hit rate {:.1}% vs cold {:.1}%",
            100.0 * rate,
            100.0 * cold_rate
        );
        assert!(
            rate > cold_rate,
            "warm hit rate ({rate:.3}) must beat the cold run ({cold_rate:.3})"
        );
    } else {
        std::fs::write(&marker, format!("{rate}\n")).expect("record cold hit rate");
        println!("cold aggregate hit rate {:.1}% recorded", 100.0 * rate);
    }

    let saved = pool.shutdown().expect("drain to store");
    for (name, report) in saved {
        println!(
            "shard `{name}` drained: {} entries, {} bytes",
            report.entries, report.bytes
        );
    }
}
