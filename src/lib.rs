//! Root package of the *nonstandard basis gates* workspace — a
//! reproduction of "Let Each Quantum Bit Choose Its Basis Gates"
//! (MICRO 2022).
//!
//! This crate hosts the cross-crate integration tests (`tests/`) and the
//! runnable examples (`examples/`); the library surface lives in
//! [`nsb_core`] and its subsystem crates.
//!
//! ```
//! use nonstandard_basis::prelude::*;
//! let c = kak_vector(&Mat4::cnot());
//! assert!(c.dist(WeylCoord::CNOT) < 1e-7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nsb_core::*;

/// Re-export of the facade prelude.
pub mod prelude {
    pub use nsb_core::prelude::*;
}
