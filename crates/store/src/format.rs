//! The binary snapshot format: header and record encoding.
//!
//! Everything is little-endian and byte-exact; see `crates/store/README.md`
//! for the authoritative layout. Floating-point values are stored as raw
//! IEEE-754 bit patterns (`f64::to_bits`), so a round trip through the
//! store is bit-identical — the property the whole warm-start design
//! rests on.

use nsb_math::{Complex64, Mat2};
use nsb_synth::{StableHasher, SynthKey, Synthesized2Q};
use std::hash::Hasher;

/// File magic: identifies an nsb-store snapshot ("NSBSTOR1").
pub const MAGIC: [u8; 8] = *b"NSBSTOR1";

/// Current format version. Bumped whenever the header, record layout or
/// any persisted fingerprint algorithm changes incompatibly; loaders
/// refuse other versions (see the README compat policy).
pub const FORMAT_VERSION: u32 = 1;

/// Header length in bytes: magic + version + reserved + calibration hash.
pub const HEADER_LEN: usize = 8 + 4 + 4 + 8;

/// Upper bound on one record's payload length. Real payloads are a few
/// hundred bytes (`73 + 128 * n_locals`); anything larger means the
/// length field itself is corrupt and resynchronization is hopeless.
pub const MAX_PAYLOAD_LEN: u32 = 1 << 20;

/// One persisted cache entry: the shared-cache key, the full target
/// fingerprint, and the synthesized circuit.
#[derive(Clone, Debug)]
pub struct StoredEntry {
    /// Shared synthesis-cache key (quantized coordinate, basis id, tag).
    pub key: SynthKey,
    /// Full target fingerprint the entry was stored under.
    pub target_fp: u64,
    /// The synthesized circuit.
    pub value: Synthesized2Q,
}

/// FNV-1a checksum of a byte slice, as appended to every record.
pub fn checksum(payload: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write(payload);
    h.finish()
}

/// Encodes the fixed-size file header.
pub fn encode_header(calibration_hash: u64) -> [u8; HEADER_LEN] {
    let mut out = [0u8; HEADER_LEN];
    out[0..8].copy_from_slice(&MAGIC);
    out[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    // Bytes 12..16 are reserved (zero) for future flags.
    out[16..24].copy_from_slice(&calibration_hash.to_le_bytes());
    out
}

/// Why a header failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HeaderError {
    /// The file is shorter than a header.
    Truncated,
    /// The magic bytes do not match [`MAGIC`].
    BadMagic,
    /// The version field names a format this build cannot read.
    UnsupportedVersion(u32),
}

/// Decodes and validates the header, returning the calibration hash.
pub fn decode_header(bytes: &[u8]) -> Result<u64, HeaderError> {
    if bytes.len() < HEADER_LEN {
        return Err(HeaderError::Truncated);
    }
    if bytes[0..8] != MAGIC {
        return Err(HeaderError::BadMagic);
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != FORMAT_VERSION {
        return Err(HeaderError::UnsupportedVersion(version));
    }
    let mut hash = [0u8; 8];
    hash.copy_from_slice(&bytes[16..24]);
    Ok(u64::from_le_bytes(hash))
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    push_u64(out, v.to_bits());
}

fn push_mat2(out: &mut Vec<u8>, m: &Mat2) {
    for r in 0..2 {
        for c in 0..2 {
            let e = m.at(r, c);
            push_f64(out, e.re);
            push_f64(out, e.im);
        }
    }
}

/// Serializes one entry's record payload (without length or checksum).
pub fn encode_payload(entry: &StoredEntry) -> Vec<u8> {
    let n_locals = entry.value.locals.len();
    let mut out = Vec::with_capacity(73 + 128 * n_locals);
    for c in entry.key.coord {
        out.extend_from_slice(&c.to_le_bytes());
    }
    push_u64(&mut out, entry.key.basis_id);
    out.push(entry.key.tag);
    push_u64(&mut out, entry.target_fp);
    out.extend_from_slice(&(entry.value.layers as u32).to_le_bytes());
    out.extend_from_slice(&(n_locals as u32).to_le_bytes());
    for (u, v) in &entry.value.locals {
        push_mat2(&mut out, u);
        push_mat2(&mut out, v);
    }
    push_f64(&mut out, entry.value.trace_overlap);
    push_f64(&mut out, entry.value.error);
    push_f64(&mut out, entry.value.phase);
    out
}

/// Appends one full record (length, payload, checksum) to `out`.
pub fn encode_record(out: &mut Vec<u8>, entry: &StoredEntry) {
    let payload = encode_payload(entry);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let sum = checksum(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&sum.to_le_bytes());
}

/// A little-endian cursor over a payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        let s = self.take(4)?;
        Some(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Some(u64::from_le_bytes(b))
    }

    fn i64(&mut self) -> Option<i64> {
        self.u64().map(|v| v as i64)
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn mat2(&mut self) -> Option<Mat2> {
        let mut e = [[Complex64::ZERO; 2]; 2];
        for row in &mut e {
            for entry in row.iter_mut() {
                let re = self.f64()?;
                let im = self.f64()?;
                *entry = Complex64::new(re, im);
            }
        }
        Some(Mat2::from_rows(e))
    }
}

/// Deserializes a record payload. `None` means the payload is internally
/// inconsistent (truncated fields, impossible counts) even though its
/// checksum matched — treated as corruption by the loader.
pub fn decode_payload(payload: &[u8]) -> Option<StoredEntry> {
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let coord = [r.i64()?, r.i64()?, r.i64()?];
    let basis_id = r.u64()?;
    let tag = r.u8()?;
    let target_fp = r.u64()?;
    let layers = r.u32()? as usize;
    let n_locals = r.u32()? as usize;
    // The ansatz invariant: one local pair more than entangling layers.
    if n_locals != layers + 1 {
        return None;
    }
    let mut locals = Vec::with_capacity(n_locals);
    for _ in 0..n_locals {
        let u = r.mat2()?;
        let v = r.mat2()?;
        locals.push((u, v));
    }
    let trace_overlap = r.f64()?;
    let error = r.f64()?;
    let phase = r.f64()?;
    if r.pos != payload.len() {
        return None;
    }
    Some(StoredEntry {
        key: SynthKey {
            coord,
            basis_id,
            tag,
        },
        target_fp,
        value: Synthesized2Q {
            locals,
            layers,
            trace_overlap,
            error,
            phase,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsb_math::Mat4;
    use nsb_synth::Decomposer;

    fn sample_entry() -> StoredEntry {
        let dec = Decomposer::new(Mat4::sqrt_iswap());
        let value = dec.decompose(&Mat4::cnot()).expect("synthesize");
        let (key, target_fp) = dec.synth_key(&Mat4::cnot(), 1);
        StoredEntry {
            key,
            target_fp,
            value,
        }
    }

    fn bits(s: &Synthesized2Q) -> Vec<u64> {
        let mut out = vec![s.layers as u64];
        for (u, v) in &s.locals {
            for m in [u, v] {
                for r in 0..2 {
                    for c in 0..2 {
                        out.push(m.at(r, c).re.to_bits());
                        out.push(m.at(r, c).im.to_bits());
                    }
                }
            }
        }
        out.extend([
            s.trace_overlap.to_bits(),
            s.error.to_bits(),
            s.phase.to_bits(),
        ]);
        out
    }

    #[test]
    fn payload_round_trips_bit_identically() {
        let entry = sample_entry();
        let payload = encode_payload(&entry);
        let back = decode_payload(&payload).expect("decode");
        assert_eq!(back.key, entry.key);
        assert_eq!(back.target_fp, entry.target_fp);
        assert_eq!(bits(&back.value), bits(&entry.value));
    }

    #[test]
    fn header_round_trips_and_rejects_garbage() {
        let h = encode_header(0xdead_beef_1234_5678);
        assert_eq!(decode_header(&h), Ok(0xdead_beef_1234_5678));
        assert_eq!(decode_header(&h[..10]), Err(HeaderError::Truncated));
        let mut bad = h;
        bad[0] = b'X';
        assert_eq!(decode_header(&bad), Err(HeaderError::BadMagic));
        let mut newer = encode_header(1);
        newer[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            decode_header(&newer),
            Err(HeaderError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn truncated_payload_decodes_to_none() {
        let payload = encode_payload(&sample_entry());
        for cut in [0, 10, payload.len() - 1] {
            assert!(decode_payload(&payload[..cut]).is_none(), "cut {cut}");
        }
        // Trailing garbage is also rejected.
        let mut long = payload.clone();
        long.push(0);
        assert!(decode_payload(&long).is_none());
    }

    #[test]
    fn inconsistent_local_count_is_rejected() {
        let entry = sample_entry();
        let mut payload = encode_payload(&entry);
        // Corrupt n_locals (offset: 3*8 coord + 8 basis + 1 tag + 8 fp + 4 layers).
        let off = 24 + 8 + 1 + 8 + 4;
        payload[off..off + 4].copy_from_slice(&77u32.to_le_bytes());
        assert!(decode_payload(&payload).is_none());
    }
}
