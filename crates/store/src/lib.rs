//! # nsb-store
//!
//! Persistent storage for shared synthesis-cache entries: a versioned,
//! checksummed on-disk snapshot format, so a fresh compilation service
//! can **warm-start** from the decompositions a previous process already
//! paid for.
//!
//! The paper's per-qubit basis choice makes every synthesis result
//! device- and calibration-specific: a decomposition is only reusable on
//! a device whose basis gates are numerically the same. Snapshots are
//! therefore keyed by a stable *calibration hash*
//! (`Device::calibration_hash` in `nsb-device`) — one snapshot file per
//! calibration — and each record carries the full cache key (quantized
//! Cartan coordinate, basis-gate fingerprint, lowering tag) plus the full
//! target fingerprint, exactly the collision contract the in-memory
//! [`nsb_synth::SynthCache`] enforces. All floating-point data round
//! trips as raw IEEE-754 bits, so a warm-started cache serves results
//! **bit-identical** to the process that wrote them.
//!
//! Robustness properties:
//!
//! * **Atomic saves** — snapshots are written to a temporary file and
//!   renamed into place; readers and crashes never see partial files.
//! * **Corruption tolerance** — every record is length-prefixed and
//!   checksummed (FNV-1a); damaged records are skipped and counted, the
//!   rest of the snapshot still loads ([`LoadReport`]).
//! * **Versioning** — a magic + version header; incompatible versions
//!   are refused rather than misread (see `README.md` for the policy).
//! * **Background flush** — [`PeriodicFlusher`] drives periodic saves
//!   from a live service without blocking its workers.
//!
//! ```
//! use nsb_store::{SnapshotStore, StoredEntry};
//! use nsb_math::Mat4;
//! use nsb_synth::Decomposer;
//!
//! let dir = std::env::temp_dir().join(format!("nsb-store-doc-{}", std::process::id()));
//! let store = SnapshotStore::open(&dir).unwrap();
//! let dec = Decomposer::new(Mat4::sqrt_iswap());
//! let value = dec.decompose(&Mat4::cnot()).unwrap();
//! let (key, target_fp) = dec.synth_key(&Mat4::cnot(), 0);
//! store.save(1, &[StoredEntry { key, target_fp, value }]).unwrap();
//! let outcome = store.load(1).unwrap();
//! assert_eq!(outcome.report.loaded, 1);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flush;
mod format;
mod snapshot;

pub use flush::PeriodicFlusher;
pub use format::{
    decode_header, decode_payload, encode_header, encode_payload, HeaderError, StoredEntry,
    FORMAT_VERSION, HEADER_LEN, MAGIC,
};
pub use snapshot::{LoadOutcome, LoadReport, SaveReport, SnapshotStore, StoreError};
