//! The on-disk snapshot store: one checksummed snapshot file per
//! calibration hash, atomic replacement, corruption-tolerant loading.

use crate::format::{
    checksum, decode_header, decode_payload, encode_header, encode_record, HeaderError,
    StoredEntry, HEADER_LEN, MAX_PAYLOAD_LEN,
};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Why a store operation failed.
///
/// All variants carry owned strings rather than `std::io::Error` so the
/// type stays `Clone` (service errors embedding it are cloned across
/// worker channels).
#[derive(Clone, Debug)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The operation that failed (`"create dir"`, `"write"`, ...).
        op: &'static str,
        /// The operating system's error message.
        reason: String,
    },
    /// The file exists but is not an nsb-store snapshot.
    BadMagic {
        /// The offending file.
        path: PathBuf,
    },
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion {
        /// The offending file.
        path: PathBuf,
        /// The version the file declares.
        found: u32,
    },
    /// The snapshot belongs to a different device calibration.
    CalibrationMismatch {
        /// The offending file.
        path: PathBuf,
        /// The hash the caller asked for.
        expected: u64,
        /// The hash in the file's header.
        found: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, op, reason } => {
                write!(f, "store {op} failed for {}: {reason}", path.display())
            }
            StoreError::BadMagic { path } => {
                write!(f, "{} is not an nsb-store snapshot", path.display())
            }
            StoreError::UnsupportedVersion { path, found } => write!(
                f,
                "{} uses unsupported snapshot format version {found}",
                path.display()
            ),
            StoreError::CalibrationMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "{} holds calibration {found:#018x}, expected {expected:#018x}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// Outcome of a snapshot load: loaded entries plus recovery counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Records decoded successfully.
    pub loaded: usize,
    /// Records skipped due to checksum mismatch or inconsistent payload;
    /// a corrupt length field or mid-record truncation also counts one
    /// skipped record (and ends the scan, since resynchronization is
    /// impossible in a length-prefixed stream).
    pub skipped: usize,
    /// Whether a snapshot file existed at all.
    pub found: bool,
}

/// Entries plus the [`LoadReport`] describing how they were recovered.
#[derive(Clone, Debug, Default)]
pub struct LoadOutcome {
    /// Every record that survived validation.
    pub entries: Vec<StoredEntry>,
    /// Load statistics.
    pub report: LoadReport,
}

/// Outcome of a snapshot save.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SaveReport {
    /// Records written.
    pub entries: usize,
    /// Total file size in bytes.
    pub bytes: u64,
}

/// A directory of synthesis-cache snapshots, one file per calibration.
///
/// Snapshot files are named `synth-<calibration hash, 16 hex digits>.nsbstore`.
/// Saves are atomic: the new snapshot is written to a temporary file in
/// the same directory and `rename`d over the old one, so a reader (or a
/// crash) never observes a half-written snapshot.
#[derive(Clone, Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Opens (creating if needed) the store directory.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StoreError::Io {
            path: dir.clone(),
            op: "create dir",
            reason: e.to_string(),
        })?;
        Ok(SnapshotStore { dir })
    }

    /// The directory snapshots live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The snapshot file path for a calibration hash.
    pub fn path_for(&self, calibration_hash: u64) -> PathBuf {
        self.dir
            .join(format!("synth-{calibration_hash:016x}.nsbstore"))
    }

    /// Writes a snapshot for `calibration_hash`, atomically replacing any
    /// previous one.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the temporary file cannot be written or
    /// renamed into place.
    pub fn save(
        &self,
        calibration_hash: u64,
        entries: &[StoredEntry],
    ) -> Result<SaveReport, StoreError> {
        let mut bytes = Vec::with_capacity(HEADER_LEN + entries.len() * 600);
        bytes.extend_from_slice(&encode_header(calibration_hash));
        for entry in entries {
            encode_record(&mut bytes, entry);
        }
        let target = self.path_for(calibration_hash);
        let tmp = self.dir.join(format!(
            ".synth-{calibration_hash:016x}.tmp-{}",
            std::process::id()
        ));
        let io_err = |path: &Path, op: &'static str, e: std::io::Error| StoreError::Io {
            path: path.to_path_buf(),
            op,
            reason: e.to_string(),
        };
        let mut file = fs::File::create(&tmp).map_err(|e| io_err(&tmp, "create", e))?;
        file.write_all(&bytes)
            .and_then(|()| file.sync_all())
            .map_err(|e| {
                let _ = fs::remove_file(&tmp);
                io_err(&tmp, "write", e)
            })?;
        drop(file);
        fs::rename(&tmp, &target).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            io_err(&target, "rename", e)
        })?;
        Ok(SaveReport {
            entries: entries.len(),
            bytes: bytes.len() as u64,
        })
    }

    /// Loads the snapshot for `calibration_hash`.
    ///
    /// A missing file is not an error: the outcome is empty with
    /// `report.found == false` (there is simply nothing to warm-start
    /// from). Corrupt records are skipped and counted in the report;
    /// loading never fails on record-level damage.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on unreadable files, [`StoreError::BadMagic`] /
    /// [`StoreError::UnsupportedVersion`] on foreign or incompatible
    /// files, [`StoreError::CalibrationMismatch`] when the file's header
    /// names a different calibration (possible only if the file was
    /// renamed by hand).
    pub fn load(&self, calibration_hash: u64) -> Result<LoadOutcome, StoreError> {
        let path = self.path_for(calibration_hash);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(LoadOutcome::default());
            }
            Err(e) => {
                return Err(StoreError::Io {
                    path,
                    op: "read",
                    reason: e.to_string(),
                })
            }
        };
        let stored_hash = match decode_header(&bytes) {
            Ok(h) => h,
            Err(HeaderError::Truncated) => {
                // A file shorter than a header carries no records at all;
                // treat it like damage, not like a foreign file.
                return Ok(LoadOutcome {
                    entries: Vec::new(),
                    report: LoadReport {
                        loaded: 0,
                        skipped: 1,
                        found: true,
                    },
                });
            }
            Err(HeaderError::BadMagic) => return Err(StoreError::BadMagic { path }),
            Err(HeaderError::UnsupportedVersion(found)) => {
                return Err(StoreError::UnsupportedVersion { path, found })
            }
        };
        if stored_hash != calibration_hash {
            return Err(StoreError::CalibrationMismatch {
                path,
                expected: calibration_hash,
                found: stored_hash,
            });
        }
        let mut outcome = LoadOutcome::default();
        outcome.report.found = true;
        let mut pos = HEADER_LEN;
        while pos < bytes.len() {
            // Record = len(u32) | payload | checksum(u64).
            if pos + 4 > bytes.len() {
                outcome.report.skipped += 1;
                break;
            }
            let len =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
            if len > MAX_PAYLOAD_LEN {
                // The length field itself is corrupt; everything after it
                // is unrecoverable.
                outcome.report.skipped += 1;
                break;
            }
            let payload_start = pos + 4;
            let payload_end = payload_start + len as usize;
            let record_end = payload_end + 8;
            if record_end > bytes.len() {
                outcome.report.skipped += 1;
                break;
            }
            let payload = &bytes[payload_start..payload_end];
            let mut sum = [0u8; 8];
            sum.copy_from_slice(&bytes[payload_end..record_end]);
            let ok = u64::from_le_bytes(sum) == checksum(payload);
            match (ok, if ok { decode_payload(payload) } else { None }) {
                (true, Some(entry)) => {
                    outcome.entries.push(entry);
                    outcome.report.loaded += 1;
                }
                _ => outcome.report.skipped += 1,
            }
            pos = record_end;
        }
        Ok(outcome)
    }

    /// Calibration hashes with a snapshot file present in the directory.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be read.
    pub fn snapshots(&self) -> Result<Vec<u64>, StoreError> {
        let entries = fs::read_dir(&self.dir).map_err(|e| StoreError::Io {
            path: self.dir.clone(),
            op: "read dir",
            reason: e.to_string(),
        })?;
        let mut out = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(hex) = name
                .strip_prefix("synth-")
                .and_then(|s| s.strip_suffix(".nsbstore"))
            else {
                continue;
            };
            if let Ok(hash) = u64::from_str_radix(hex, 16) {
                out.push(hash);
            }
        }
        out.sort_unstable();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsb_math::Mat4;
    use nsb_synth::Decomposer;

    fn sample_entries(n: u8) -> Vec<StoredEntry> {
        let dec = Decomposer::new(Mat4::sqrt_iswap());
        (0..n)
            .map(|tag| {
                let value = dec.decompose(&Mat4::cnot()).expect("synthesize");
                let (key, target_fp) = dec.synth_key(&Mat4::cnot(), tag);
                StoredEntry {
                    key,
                    target_fp,
                    value,
                }
            })
            .collect()
    }

    fn temp_store(label: &str) -> SnapshotStore {
        let dir =
            std::env::temp_dir().join(format!("nsb-store-unit-{label}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        SnapshotStore::open(dir).expect("open store")
    }

    #[test]
    fn save_load_round_trip() {
        let store = temp_store("roundtrip");
        let entries = sample_entries(3);
        let saved = store.save(7, &entries).expect("save");
        assert_eq!(saved.entries, 3);
        let outcome = store.load(7).expect("load");
        assert_eq!(outcome.report.loaded, 3);
        assert_eq!(outcome.report.skipped, 0);
        assert!(outcome.report.found);
        assert_eq!(outcome.entries.len(), 3);
        assert_eq!(store.snapshots().expect("list"), vec![7]);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_snapshot_is_empty_not_error() {
        let store = temp_store("missing");
        let outcome = store.load(42).expect("load");
        assert!(!outcome.report.found);
        assert!(outcome.entries.is_empty());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn calibration_mismatch_is_detected() {
        let store = temp_store("mismatch");
        store.save(1, &sample_entries(1)).expect("save");
        // Simulate a hand-renamed file.
        fs::rename(store.path_for(1), store.path_for(2)).expect("rename");
        match store.load(2) {
            Err(StoreError::CalibrationMismatch {
                expected, found, ..
            }) => {
                assert_eq!((expected, found), (2, 1));
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn foreign_file_is_rejected() {
        let store = temp_store("foreign");
        fs::write(store.path_for(9), b"definitely not a snapshot").expect("write");
        assert!(matches!(store.load(9), Err(StoreError::BadMagic { .. })));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn io_failure_is_reported_with_path_and_op() {
        // Opening a store rooted under a regular file fails to create
        // the directory.
        let file = std::env::temp_dir().join(format!("nsb-store-flat-{}", std::process::id()));
        fs::write(&file, b"occupied").expect("write");
        let err = SnapshotStore::open(file.join("sub")).expect_err("open must fail");
        match &err {
            StoreError::Io { path, op, reason } => {
                assert!(path.ends_with("sub"), "{path:?}");
                assert!(!op.is_empty() && !reason.is_empty());
            }
            other => panic!("expected Io, got {other:?}"),
        }
        let _ = fs::remove_file(&file);
    }

    #[test]
    fn future_format_version_is_rejected() {
        let store = temp_store("version");
        let entries = sample_entries(1);
        store.save(11, &entries).expect("save");
        // Bump the version field in the header (bytes 8..12, after the
        // 8-byte magic) to a future format.
        let path = store.path_for(11);
        let mut bytes = fs::read(&path).expect("read");
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&path, bytes).expect("rewrite");
        match store.load(11) {
            Err(StoreError::UnsupportedVersion { found, .. }) => {
                assert_eq!(found, u32::MAX);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        let _ = fs::remove_dir_all(store.dir());
    }
}
