//! Periodic background flushing.
//!
//! A [`PeriodicFlusher`] owns one thread that invokes a caller-supplied
//! flush closure on a fixed interval until stopped (or dropped). The
//! closure typically exports a live cache and saves it through a
//! [`SnapshotStore`](crate::SnapshotStore); keeping the closure opaque
//! means the store crate needs no knowledge of any particular cache.

use crate::snapshot::StoreError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A background thread flushing on a fixed interval.
///
/// Stopping (explicitly via [`stop`](PeriodicFlusher::stop) or by
/// dropping) wakes the thread immediately, runs one final flush so no
/// tail of recent entries is lost, and joins it.
pub struct PeriodicFlusher {
    shared: Arc<(Mutex<bool>, Condvar)>,
    flushes: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl PeriodicFlusher {
    /// Spawns the flush thread; `flush` runs every `interval` from now on.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the operating system refuses to spawn the
    /// thread.
    pub fn spawn<F>(interval: Duration, mut flush: F) -> Result<Self, StoreError>
    where
        F: FnMut() + Send + 'static,
    {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let flushes = Arc::new(AtomicU64::new(0));
        let thread_shared = shared.clone();
        let thread_flushes = flushes.clone();
        let handle = std::thread::Builder::new()
            .name("nsb-store-flusher".into())
            .spawn(move || {
                let (stop, cvar) = &*thread_shared;
                loop {
                    let stopped = {
                        let guard = stop
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        let (guard, _timeout) = cvar
                            .wait_timeout(guard, interval)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        *guard
                    };
                    flush();
                    thread_flushes.fetch_add(1, Ordering::Relaxed);
                    if stopped {
                        break;
                    }
                }
            })
            .map_err(|e| StoreError::Io {
                path: "<flusher thread>".into(),
                op: "spawn",
                reason: e.to_string(),
            })?;
        Ok(PeriodicFlusher {
            shared,
            flushes,
            handle: Some(handle),
        })
    }

    /// Number of completed flushes so far.
    pub fn flush_count(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }

    /// Stops the thread: wakes it, runs one final flush, joins.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        let (stop, cvar) = &*self.shared;
        *stop
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        cvar.notify_all();
        let _ = handle.join();
    }
}

impl Drop for PeriodicFlusher {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn stop_runs_a_final_flush() {
        let count = Arc::new(AtomicUsize::new(0));
        let seen = count.clone();
        let flusher = PeriodicFlusher::spawn(Duration::from_secs(3600), move || {
            seen.fetch_add(1, Ordering::Relaxed);
        })
        .expect("spawn");
        assert_eq!(count.load(Ordering::Relaxed), 0);
        flusher.stop();
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn short_interval_flushes_repeatedly() {
        let count = Arc::new(AtomicUsize::new(0));
        let seen = count.clone();
        let flusher = PeriodicFlusher::spawn(Duration::from_millis(5), move || {
            seen.fetch_add(1, Ordering::Relaxed);
        })
        .expect("spawn");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while count.load(Ordering::Relaxed) < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(count.load(Ordering::Relaxed) >= 3, "flusher never ticked");
        assert!(flusher.flush_count() >= 3);
        drop(flusher);
    }
}
