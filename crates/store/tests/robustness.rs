//! Store robustness: bit-identical round trips, truncation and
//! corruption recovery, atomic replacement.

use nsb_math::Mat4;
use nsb_store::{LoadReport, SnapshotStore, StoredEntry, HEADER_LEN};
use nsb_synth::Decomposer;

fn temp_store(label: &str) -> SnapshotStore {
    let dir = std::env::temp_dir().join(format!("nsb-store-it-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    SnapshotStore::open(dir).expect("open store")
}

fn entries() -> Vec<StoredEntry> {
    let dec = Decomposer::new(Mat4::sqrt_iswap());
    let targets = [Mat4::cnot(), Mat4::swap(), Mat4::cphase(0.7)];
    targets
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let value = dec.decompose(t).expect("synthesize");
            let (key, target_fp) = dec.synth_key(t, i as u8);
            StoredEntry {
                key,
                target_fp,
                value,
            }
        })
        .collect()
}

fn value_bits(e: &StoredEntry) -> Vec<u64> {
    let mut out = vec![
        e.key.coord[0] as u64,
        e.key.coord[1] as u64,
        e.key.coord[2] as u64,
        e.key.basis_id,
        u64::from(e.key.tag),
        e.target_fp,
        e.value.layers as u64,
    ];
    for (u, v) in &e.value.locals {
        for m in [u, v] {
            for r in 0..2 {
                for c in 0..2 {
                    out.push(m.at(r, c).re.to_bits());
                    out.push(m.at(r, c).im.to_bits());
                }
            }
        }
    }
    out.extend([
        e.value.trace_overlap.to_bits(),
        e.value.error.to_bits(),
        e.value.phase.to_bits(),
    ]);
    out
}

#[test]
fn round_trip_is_bit_identical() {
    let store = temp_store("bits");
    let original = entries();
    store.save(11, &original).expect("save");
    let loaded = store.load(11).expect("load");
    assert_eq!(loaded.entries.len(), original.len());
    for (a, b) in original.iter().zip(&loaded.entries) {
        assert_eq!(value_bits(a), value_bits(b), "entry changed on disk");
    }
    let _ = std::fs::remove_dir_all(store.dir());
}

#[test]
fn truncated_file_recovers_leading_records() {
    let store = temp_store("truncate");
    let original = entries();
    store.save(5, &original).expect("save");
    let path = store.path_for(5);
    let bytes = std::fs::read(&path).expect("read");
    // Cut the file in the middle of the last record.
    std::fs::write(&path, &bytes[..bytes.len() - 20]).expect("truncate");
    let outcome = store.load(5).expect("load");
    assert_eq!(
        outcome.report,
        LoadReport {
            loaded: original.len() - 1,
            skipped: 1,
            found: true
        }
    );
    assert_eq!(outcome.entries.len(), original.len() - 1);
    let _ = std::fs::remove_dir_all(store.dir());
}

#[test]
fn corrupted_record_is_skipped_others_survive() {
    let store = temp_store("corrupt");
    let original = entries();
    store.save(6, &original).expect("save");
    let path = store.path_for(6);
    let mut bytes = std::fs::read(&path).expect("read");
    // Flip one byte inside the first record's payload (skip header + the
    // 4-byte length field); its checksum no longer matches.
    let victim = HEADER_LEN + 4 + 10;
    bytes[victim] ^= 0xff;
    std::fs::write(&path, &bytes).expect("write corrupted");
    let outcome = store.load(6).expect("load");
    assert_eq!(outcome.report.skipped, 1, "{:?}", outcome.report);
    assert_eq!(outcome.report.loaded, original.len() - 1);
    // The surviving entries are exactly the untouched ones, bit for bit.
    for (a, b) in original[1..].iter().zip(&outcome.entries) {
        assert_eq!(value_bits(a), value_bits(b));
    }
    let _ = std::fs::remove_dir_all(store.dir());
}

#[test]
fn empty_and_headerless_files_load_as_damage_not_panic() {
    let store = temp_store("stub");
    std::fs::write(store.path_for(3), b"").expect("write empty");
    let outcome = store.load(3).expect("load");
    assert_eq!(outcome.report.loaded, 0);
    assert_eq!(outcome.report.skipped, 1);
    assert!(outcome.report.found);
    let _ = std::fs::remove_dir_all(store.dir());
}

#[test]
fn save_overwrites_atomically() {
    let store = temp_store("atomic");
    let all = entries();
    store.save(8, &all).expect("save full");
    store.save(8, &all[..1]).expect("save smaller");
    let outcome = store.load(8).expect("load");
    assert_eq!(outcome.report.loaded, 1, "old tail must not survive");
    // No temporary files left behind.
    let leftovers: Vec<_> = std::fs::read_dir(store.dir())
        .expect("read dir")
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "{leftovers:?}");
    let _ = std::fs::remove_dir_all(store.dir());
}
