//! Numerical decomposability oracle.
//!
//! The paper determines circuit depth analytically via the monodromy
//! polytope (Peterson et al., Theorem 23: up to 8 branches of 72
//! inequalities). Those inequality tables are not reproducible offline, so
//! this workspace substitutes a *certified numerical oracle*: a target is
//! declared decomposable into the given layers when multi-restart
//! alternating-SVD synthesis reaches decomposition error below `1e-9`. The
//! oracle is cross-validated against the paper's closed-form region
//! geometry (Figure 4) in this module's tests and in the `fig4_regions`
//! bench binary.

use crate::decomposer::{decompose_with_bases, DecomposerConfig};
use nsb_math::Mat4;
use nsb_weyl::{canonical_gate, WeylCoord};

/// Configuration for the numerical oracle; higher `restarts` lowers the
/// false-negative rate at proportional cost.
#[derive(Clone, Copy, Debug)]
pub struct OracleConfig {
    /// Restarts for the underlying optimizer.
    pub restarts: usize,
    /// Error threshold counting as an exact decomposition.
    pub tol: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            restarts: 10,
            tol: 1e-7,
            seed: 0xacce5,
        }
    }
}

/// Numerically decides whether `target` can be written as
/// `L2 . C . L1 . B . L0` (two layers with possibly different bases).
pub fn can_decompose_2layer(target: &Mat4, b: &Mat4, c: &Mat4, config: &OracleConfig) -> bool {
    let cfg = DecomposerConfig {
        tol: config.tol,
        restarts: config.restarts,
        max_layers: 2,
        seed: config.seed,
        use_depth_oracle: false,
    };
    decompose_with_bases(target, &[*b, *c], &cfg).is_ok()
}

/// Numerically decides whether the *class* `basis` can synthesize SWAP in
/// three layers, via the mirror construction: `G` works iff `G_mirror` is
/// reachable from two layers of `G` (paper Section V-C).
pub fn numerical_can_swap_in_3(basis: WeylCoord, config: &OracleConfig) -> bool {
    let g = canonical_gate(basis.canonicalize());
    let mirror = canonical_gate(basis.mirror());
    can_decompose_2layer(&mirror, &g, &g, config)
}

/// Numerically decides whether the class `basis` can synthesize CNOT in two
/// layers.
pub fn numerical_can_cnot_in_2(basis: WeylCoord, config: &OracleConfig) -> bool {
    let g = canonical_gate(basis.canonicalize());
    can_decompose_2layer(&Mat4::cnot(), &g, &g, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsb_weyl::{can_cnot_in_2, can_swap_in_3, sample_chamber};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn oracle_agrees_with_region_geometry_on_landmarks() {
        let cfg = OracleConfig::default();
        for (coord, expect_swap3, expect_cnot2) in [
            (WeylCoord::CNOT, true, true),
            (WeylCoord::ISWAP, true, true),
            (WeylCoord::SQRT_ISWAP, true, true),
            (WeylCoord::B_GATE, true, true),
            (WeylCoord::new(0.15, 0.1, 0.0), false, false),
            (WeylCoord::new(0.4, 0.2, 0.1), true, true),
        ] {
            assert_eq!(
                numerical_can_swap_in_3(coord, &cfg),
                expect_swap3,
                "swap3 oracle at {coord}"
            );
            assert_eq!(
                numerical_can_cnot_in_2(coord, &cfg),
                expect_cnot2,
                "cnot2 oracle at {coord}"
            );
            // And both must agree with the analytic tetrahedra.
            assert_eq!(
                can_swap_in_3(coord),
                expect_swap3,
                "region swap3 at {coord}"
            );
            assert_eq!(
                can_cnot_in_2(coord),
                expect_cnot2,
                "region cnot2 at {coord}"
            );
        }
    }

    #[test]
    fn oracle_cross_validates_regions_on_random_sample() {
        // Small sample here; the fig4_regions bench runs a large one.
        let mut rng = StdRng::seed_from_u64(77);
        let cfg = OracleConfig::default();
        let mut checked = 0;
        for _ in 0..12 {
            let p = sample_chamber(&mut rng);
            // Skip points within 0.02 of region boundaries where numerical
            // tolerance and exact geometry can legitimately disagree.
            if near_swap3_boundary(p, 0.02) || near_cnot2_boundary(p, 0.02) {
                continue;
            }
            assert_eq!(
                numerical_can_swap_in_3(p, &cfg),
                can_swap_in_3(p),
                "swap3 mismatch at {p}"
            );
            assert_eq!(
                numerical_can_cnot_in_2(p, &cfg),
                can_cnot_in_2(p),
                "cnot2 mismatch at {p}"
            );
            checked += 1;
        }
        assert!(checked >= 6, "too few interior samples checked");
    }

    fn near_swap3_boundary(p: WeylCoord, margin: f64) -> bool {
        nsb_weyl::swap3_complement().iter().any(|t| {
            let inside = t.excludes(p);
            let inflated = t
                .tet
                .barycentric(p)
                .is_some_and(|w| w.iter().all(|&v| v >= -margin));
            inside != inflated
        })
    }

    fn near_cnot2_boundary(p: WeylCoord, margin: f64) -> bool {
        nsb_weyl::cnot2_complement().iter().any(|t| {
            let inside = t.excludes(p);
            let inflated = t
                .tet
                .barycentric(p)
                .is_some_and(|w| w.iter().all(|&v| v >= -margin));
            inside != inflated
        })
    }
}
