//! Cache-aware synthesis: keys, fingerprints and the [`SynthCache`]
//! trait that lets callers (the compilation service, long-running
//! compilers) share decomposition results across circuits and threads.
//!
//! Two-qubit decompositions are highly repetitive across circuits: the
//! same CPhase angles, CNOTs and SWAPs recur on the same edges job after
//! job. A decomposition is identified by
//!
//! * the **quantized Cartan coordinate** of the target (the paper's
//!   Weyl-chamber geometry makes this the natural equivalence key),
//! * a **basis id** — a fingerprint of the basis gate the decomposer
//!   targets, and
//! * a caller-supplied **tag** (e.g. the lowering mode), so callers with
//!   different conventions never share entries.
//!
//! Locally-equivalent targets share a Cartan coordinate but need
//! *different* local unitaries, so the coordinate alone is not a sound
//! key for the synthesized circuit. Every cache operation therefore also
//! carries the full **target fingerprint** (a quantized hash of the
//! target matrix); an implementation must only return entries whose
//! stored fingerprint matches, making a hit bit-identical to a fresh
//! synthesis while the quantized coordinate keeps the key small and the
//! lookup cheap.

use crate::ansatz::Synthesized2Q;
use crate::decomposer::{Decomposer, SynthesisFailed};
use nsb_math::Mat4;
use nsb_weyl::{kak_vector, WeylCoord};
use std::hash::{Hash, Hasher};

/// Quantization scale for Cartan coordinates: coordinates are keyed at a
/// resolution of `1e-6`, three orders of magnitude coarser than the
/// synthesis tolerance and fine enough that distinct gate angles never
/// collide.
pub const COORD_SCALE: f64 = 1e6;

/// Quantization scale for matrix-entry fingerprints (matches the
/// per-compilation cache in the compiler's lowering pass).
pub const ENTRY_SCALE: f64 = 1e9;

/// Key identifying a decomposition in a shared synthesis cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SynthKey {
    /// Quantized canonical Cartan coordinate of the target.
    pub coord: [i64; 3],
    /// Fingerprint of the basis gate being decomposed into.
    pub basis_id: u64,
    /// Caller context tag (e.g. lowering mode) separating cache
    /// namespaces.
    pub tag: u8,
}

/// Quantizes a Cartan coordinate to the cache key resolution.
pub fn quantize_coord(c: WeylCoord) -> [i64; 3] {
    let q = |v: f64| (v * COORD_SCALE).round() as i64;
    [q(c.x), q(c.y), q(c.z)]
}

/// A stable 64-bit FNV-1a hasher.
///
/// `std`'s `DefaultHasher` is only deterministic within one build of the
/// standard library; its algorithm may change between Rust releases.
/// Fingerprints that outlive a process — cache keys persisted by
/// `nsb-store`, device calibration hashes — therefore use this hasher
/// instead: FNV-1a over an explicitly little-endian byte encoding, fully
/// specified here and guaranteed never to change for a given snapshot
/// format version.
#[derive(Clone, Debug)]
pub struct StableHasher(u64);

impl StableHasher {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher starting from the FNV offset basis.
    pub fn new() -> Self {
        StableHasher(Self::OFFSET_BASIS)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    // Multi-byte writes pin the byte order: the default implementations
    // use native endianness, which would make fingerprints differ across
    // platforms.
    fn write_u16(&mut self, v: u16) {
        self.write(&v.to_le_bytes());
    }

    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_usize(&mut self, v: usize) {
        self.write(&(v as u64).to_le_bytes());
    }

    fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }
}

/// Order-sensitive fingerprint of a 4x4 unitary with entries quantized
/// at [`ENTRY_SCALE`]; used both as the basis id and as the full-target
/// collision check.
///
/// Computed with [`StableHasher`], so the value is identical across
/// processes, platforms and Rust versions — it is safe to persist (and
/// is, by `nsb-store`).
pub fn mat4_fingerprint(m: &Mat4) -> u64 {
    let mut h = StableHasher::new();
    for r in 0..4 {
        for c in 0..4 {
            let e = m.at(r, c);
            ((e.re * ENTRY_SCALE).round() as i64).hash(&mut h);
            ((e.im * ENTRY_SCALE).round() as i64).hash(&mut h);
        }
    }
    h.finish()
}

/// A shared, thread-safe store of synthesis results.
///
/// Implementations decide capacity and eviction; `nsb-service` provides
/// a sharded LRU. The contract required for correctness:
///
/// * [`lookup`](SynthCache::lookup) must only return a value that was
///   stored under the same key **and** the same `target_fp`;
/// * returned values must be exactly what was stored (callers rely on
///   cached syntheses being bit-identical to fresh ones).
pub trait SynthCache: Send + Sync {
    /// Returns the stored synthesis for `key` if its target fingerprint
    /// matches, recording a hit or miss.
    fn lookup(&self, key: &SynthKey, target_fp: u64) -> Option<Synthesized2Q>;

    /// Stores a synthesis result for `key`.
    fn store(&self, key: SynthKey, target_fp: u64, value: &Synthesized2Q);

    /// Returns the cached value for `(key, target_fp)` or computes and
    /// stores it.
    ///
    /// The default implementation is plain lookup-compute-store. Concurrent
    /// implementations may override it with **single-flight** semantics:
    /// when several threads miss on the same entry simultaneously, exactly
    /// one runs `compute` and the rest block until the value is published.
    /// Errors are never cached — every waiter observing a failed flight
    /// retries (and may become the next computer).
    ///
    /// # Errors
    ///
    /// Propagates the error returned by `compute`.
    fn get_or_compute(
        &self,
        key: SynthKey,
        target_fp: u64,
        compute: &mut dyn FnMut() -> Result<Synthesized2Q, SynthesisFailed>,
    ) -> Result<Synthesized2Q, SynthesisFailed> {
        if let Some(hit) = self.lookup(&key, target_fp) {
            return Ok(hit);
        }
        let fresh = compute()?;
        self.store(key, target_fp, &fresh);
        Ok(fresh)
    }
}

/// A [`SynthCache`] that never stores anything (useful as a default and
/// for measuring uncached baselines through the cached code path).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoCache;

impl SynthCache for NoCache {
    fn lookup(&self, _key: &SynthKey, _target_fp: u64) -> Option<Synthesized2Q> {
        None
    }

    fn store(&self, _key: SynthKey, _target_fp: u64, _value: &Synthesized2Q) {}
}

impl Decomposer {
    /// Fingerprint of this decomposer's basis gate, namespacing its
    /// cache entries.
    pub fn basis_id(&self) -> u64 {
        mat4_fingerprint(self.basis())
    }

    /// The cache key and target fingerprint `decompose_cached` would use
    /// for `target` under `tag`.
    pub fn synth_key(&self, target: &Mat4, tag: u8) -> (SynthKey, u64) {
        let key = SynthKey {
            coord: quantize_coord(kak_vector(target)),
            basis_id: self.basis_id(),
            tag,
        };
        (key, mat4_fingerprint(target))
    }

    /// Decomposes `target` through a shared cache: returns the stored
    /// result on a hit, otherwise synthesizes and stores.
    ///
    /// Because the decomposer's restart RNG is deterministic, the cached
    /// and uncached paths return bit-identical circuits.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisFailed`] exactly as [`Decomposer::decompose`]
    /// does. Failures are not cached: a later call with a larger layer
    /// cap may succeed.
    pub fn decompose_cached(
        &self,
        target: &Mat4,
        tag: u8,
        cache: &dyn SynthCache,
    ) -> Result<Synthesized2Q, SynthesisFailed> {
        let (key, fp) = self.synth_key(target, tag);
        cache.get_or_compute(key, fp, &mut || self.decompose(target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    /// Minimal conformant cache for exercising the trait contract.
    #[derive(Default)]
    struct MapCache {
        map: Mutex<HashMap<SynthKey, (u64, Synthesized2Q)>>,
        hits: std::sync::atomic::AtomicUsize,
    }

    impl SynthCache for MapCache {
        fn lookup(&self, key: &SynthKey, target_fp: u64) -> Option<Synthesized2Q> {
            let map = self.map.lock().unwrap();
            match map.get(key) {
                Some((fp, v)) if *fp == target_fp => {
                    self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    Some(v.clone())
                }
                _ => None,
            }
        }

        fn store(&self, key: SynthKey, target_fp: u64, value: &Synthesized2Q) {
            self.map
                .lock()
                .unwrap()
                .insert(key, (target_fp, value.clone()));
        }
    }

    fn bits(s: &Synthesized2Q) -> Vec<u64> {
        let mut out = vec![s.layers as u64];
        for (u, v) in &s.locals {
            for m in [u, v] {
                for r in 0..2 {
                    for c in 0..2 {
                        out.push(m.at(r, c).re.to_bits());
                        out.push(m.at(r, c).im.to_bits());
                    }
                }
            }
        }
        out.push(s.error.to_bits());
        out.push(s.phase.to_bits());
        out.push(s.trace_overlap.to_bits());
        out
    }

    #[test]
    fn cached_result_is_bit_identical_to_uncached() {
        let dec = Decomposer::new(Mat4::sqrt_iswap());
        let cache = MapCache::default();
        let uncached = dec.decompose(&Mat4::cnot()).unwrap();
        let first = dec.decompose_cached(&Mat4::cnot(), 0, &cache).unwrap();
        let second = dec.decompose_cached(&Mat4::cnot(), 0, &cache).unwrap();
        assert_eq!(bits(&uncached), bits(&first), "miss path differs");
        assert_eq!(bits(&uncached), bits(&second), "hit path differs");
        assert_eq!(cache.hits.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn locally_equivalent_targets_do_not_collide() {
        use nsb_math::haar_su2;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(99);
        let dec = Decomposer::new(Mat4::b_gate());
        let cache = MapCache::default();
        let a = Mat4::cnot();
        // Same Cartan class as CNOT, different matrix.
        let b = Mat4::kron(&haar_su2(&mut rng), &haar_su2(&mut rng)) * Mat4::cnot();
        let (ka, fa) = dec.synth_key(&a, 0);
        let (kb, fb) = dec.synth_key(&b, 0);
        assert_eq!(ka, kb, "locally equivalent targets share a key");
        assert_ne!(fa, fb, "but fingerprints must differ");
        let sa = dec.decompose_cached(&a, 0, &cache).unwrap();
        let sb = dec.decompose_cached(&b, 0, &cache).unwrap();
        // The colliding entry must NOT be served for the other target.
        assert_eq!(cache.hits.load(std::sync::atomic::Ordering::Relaxed), 0);
        assert!(sa.error < 1e-7 && sb.error < 1e-7);
        let ra = sa.unitary_with_phase(&vec![Mat4::b_gate(); sa.layers]);
        let rb = sb.unitary_with_phase(&vec![Mat4::b_gate(); sb.layers]);
        assert!(ra.approx_eq(&a, 1e-5));
        assert!(rb.approx_eq(&b, 1e-5));
    }

    #[test]
    fn tags_separate_namespaces() {
        let dec = Decomposer::new(Mat4::sqrt_iswap());
        let (k0, _) = dec.synth_key(&Mat4::cnot(), 0);
        let (k1, _) = dec.synth_key(&Mat4::cnot(), 1);
        assert_ne!(k0, k1);
    }

    #[test]
    fn distinct_angles_get_distinct_keys() {
        let dec = Decomposer::new(Mat4::sqrt_iswap());
        let (a, _) = dec.synth_key(&Mat4::cphase(0.5), 0);
        let (b, _) = dec.synth_key(&Mat4::cphase(0.5 + 1e-4), 0);
        assert_ne!(a, b);
    }

    #[test]
    fn stable_hasher_matches_reference_fnv1a() {
        // Reference value computed by hand for b"nsb": FNV-1a 64.
        let mut h = StableHasher::new();
        h.write(b"nsb");
        let mut expect: u64 = 0xcbf2_9ce4_8422_2325;
        for b in b"nsb" {
            expect = (expect ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        assert_eq!(h.finish(), expect);
        // Integer writes are little-endian byte writes.
        let mut a = StableHasher::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = StableHasher::new();
        b.write(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn fingerprints_are_process_independent_constants() {
        // Pin the fingerprint of a well-known gate: if this value ever
        // changes, persisted snapshots from older builds stop matching
        // and the store format version must be bumped.
        assert_eq!(
            mat4_fingerprint(&Mat4::cnot()),
            mat4_fingerprint(&Mat4::cnot())
        );
        let a = mat4_fingerprint(&Mat4::sqrt_iswap());
        let b = mat4_fingerprint(&Mat4::sqrt_iswap());
        assert_eq!(a, b);
        assert_ne!(
            mat4_fingerprint(&Mat4::cnot()),
            mat4_fingerprint(&Mat4::swap())
        );
    }

    #[test]
    fn no_cache_always_misses() {
        let dec = Decomposer::new(Mat4::sqrt_iswap());
        let s = dec.decompose_cached(&Mat4::swap(), 0, &NoCache).unwrap();
        assert_eq!(s.layers, 3);
    }
}
