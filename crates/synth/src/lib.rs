//! # nsb-synth
//!
//! Numerical two-qubit gate synthesis into arbitrary (including
//! nonstandard) basis gates, following Section VII of *Let Each Quantum Bit
//! Choose Its Basis Gates* (MICRO 2022).
//!
//! The synthesis ansatz alternates local (1Q (x) 1Q) unitaries with fixed
//! entangling layers; the locals are optimized by an alternating SVD
//! "environment" method, and the number of layers is chosen with an
//! analytic depth oracle built on the paper's Weyl-chamber region geometry,
//! skipping directly to the theoretically guaranteed depth.
//!
//! ```
//! use nsb_math::Mat4;
//! use nsb_synth::Decomposer;
//!
//! // Synthesize CNOT from sqrt(iSWAP): two layers, numerically exact.
//! let dec = Decomposer::new(Mat4::sqrt_iswap());
//! let cnot = dec.decompose(&Mat4::cnot()).unwrap();
//! assert_eq!(cnot.layers, 2);
//! assert!(cnot.error < 1e-7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ansatz;
mod cache;
mod decomposer;
mod kak_full;
mod optimizer;
mod oracle;

pub use ansatz::{build_ansatz, Synthesized2Q};
pub use cache::{mat4_fingerprint, quantize_coord, NoCache, StableHasher, SynthCache, SynthKey};
pub use decomposer::{decompose_with_bases, Decomposer, DecomposerConfig, SynthesisFailed};
pub use kak_full::{kak_decompose, KakDecomposition};
pub use optimizer::{
    optimize_locals, optimize_with_restarts, optimize_with_restarts_ws, OptimizerConfig, RunResult,
    Workspace,
};
pub use oracle::{
    can_decompose_2layer, numerical_can_cnot_in_2, numerical_can_swap_in_3, OracleConfig,
};
