//! Full KAK (Cartan) decomposition with explicit local factors.
//!
//! Coordinates come from [`nsb_weyl::kak_vector`]; the local factors are
//! then recovered by a one-layer synthesis of `U` into its own canonical
//! representative, which converges to machine precision because the
//! decomposition is exact by construction.

use crate::decomposer::{decompose_with_bases, DecomposerConfig};
use nsb_math::{Complex64, Mat2, Mat4};
use nsb_weyl::{canonical_gate, kak_vector, WeylCoord};

/// A full Cartan decomposition
/// `U = e^{i phase} (k1a (x) k1b) A(x,y,z) (k0a (x) k0b)`.
#[derive(Clone, Debug)]
pub struct KakDecomposition {
    /// Local pair applied before the canonical gate.
    pub before: (Mat2, Mat2),
    /// Canonical Cartan coordinates.
    pub coord: WeylCoord,
    /// Local pair applied after the canonical gate.
    pub after: (Mat2, Mat2),
    /// Global phase.
    pub phase: f64,
}

impl KakDecomposition {
    /// Reconstructs the original unitary.
    pub fn reconstruct(&self) -> Mat4 {
        let a = canonical_gate(self.coord);
        let w = Mat4::kron(&self.after.0, &self.after.1)
            * a
            * Mat4::kron(&self.before.0, &self.before.1);
        w.scale(Complex64::cis(self.phase))
    }
}

/// Computes the full KAK decomposition of a two-qubit unitary.
///
/// # Panics
///
/// Panics when `u` is not unitary, or when the internal exact synthesis
/// fails to converge (not observed in practice; the decomposition exists
/// by construction).
///
/// # Examples
///
/// ```
/// use nsb_math::Mat4;
/// use nsb_synth::kak_decompose;
///
/// let k = kak_decompose(&Mat4::cnot());
/// assert!(k.reconstruct().approx_eq(&Mat4::cnot(), 1e-4));
/// ```
pub fn kak_decompose(u: &Mat4) -> KakDecomposition {
    let coord = kak_vector(u);
    let a = canonical_gate(coord);
    let cfg = DecomposerConfig {
        tol: 1e-9,
        restarts: 24,
        max_layers: 1,
        seed: 0xaaa5,
        use_depth_oracle: false,
    };
    let s = decompose_with_bases(u, &[a], &cfg)
        // lint: allow(no-expect) — one-layer synthesis onto a gate's own canonical class always converges
        .expect("exact one-layer decomposition onto the canonical gate");
    KakDecomposition {
        before: s.locals[0],
        coord,
        after: s.locals[1],
        phase: s.phase,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsb_math::haar_u4;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kak_of_named_gates_reconstructs() {
        for u in [
            Mat4::cnot(),
            Mat4::cz(),
            Mat4::swap(),
            Mat4::iswap(),
            Mat4::sqrt_iswap(),
            Mat4::b_gate(),
            Mat4::identity(),
        ] {
            let k = kak_decompose(&u);
            assert!(k.reconstruct().approx_eq(&u, 1e-4), "{u}");
        }
    }

    #[test]
    fn kak_of_random_unitaries_reconstructs() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..10 {
            let u = haar_u4(&mut rng);
            let k = kak_decompose(&u);
            assert!(k.reconstruct().approx_eq(&u, 1e-4));
            assert!(k.coord.in_chamber(1e-9));
            assert!(k.before.0.is_unitary(1e-9));
            assert!(k.after.1.is_unitary(1e-9));
        }
    }
}
