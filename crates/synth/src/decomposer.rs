//! High-level decomposition API with the analytic depth oracle.
//!
//! The paper's compilation approach (Section VII): numerically search for
//! the local unitaries, but use analytically-derived circuit-depth
//! information to *skip directly* to the layer count at which a perfect
//! decomposition is guaranteed, instead of NuOp's increment-from-one-layer
//! strategy. Both strategies are implemented so the speedup can be measured
//! (see the `synthesis` Criterion bench).

use crate::ansatz::Synthesized2Q;
use crate::optimizer::{
    optimize_with_restarts, optimize_with_restarts_ws, OptimizerConfig, Workspace,
};
use nsb_math::Mat4;
use nsb_weyl::{can_cnot_in_2, kak_vector, min_layers_for_swap, WeylCoord};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Error returned when no decomposition below the layer cap reaches the
/// requested tolerance.
#[derive(Clone, Debug, PartialEq)]
pub struct SynthesisFailed {
    /// Best decomposition error achieved at the layer cap.
    pub best_error: f64,
    /// The layer cap that was tried.
    pub max_layers: usize,
}

impl fmt::Display for SynthesisFailed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "synthesis failed: best error {:.3e} with {} layers",
            self.best_error, self.max_layers
        )
    }
}

impl std::error::Error for SynthesisFailed {}

/// Configuration for the [`Decomposer`].
#[derive(Clone, Copy, Debug)]
pub struct DecomposerConfig {
    /// Decomposition-error tolerance (1 - average gate fidelity) below
    /// which a synthesis counts as exact.
    pub tol: f64,
    /// Random restarts per layer count.
    pub restarts: usize,
    /// Maximum number of entangling layers to try.
    pub max_layers: usize,
    /// Seed for the deterministic restart RNG.
    pub seed: u64,
    /// Use the analytic depth oracle to skip layer counts (the paper's
    /// approach). When false, layers are searched from the minimum up
    /// (NuOp-style), which is slower but produces identical circuits.
    pub use_depth_oracle: bool,
}

impl Default for DecomposerConfig {
    fn default() -> Self {
        DecomposerConfig {
            // 1e-7 average-fidelity error counts as "exact": it is four
            // orders of magnitude below the decoherence errors in the
            // paper's noise model, and safely separated from the >1e-4
            // plateau that impossible decompositions stall at.
            tol: 1e-7,
            restarts: 12,
            max_layers: 6,
            seed: 0x5eed,
            use_depth_oracle: true,
        }
    }
}

/// Decomposes two-qubit targets into a fixed hardware basis gate plus local
/// (single-qubit) unitaries.
///
/// # Examples
///
/// ```
/// use nsb_math::Mat4;
/// use nsb_synth::Decomposer;
///
/// let dec = Decomposer::new(Mat4::sqrt_iswap());
/// let swap = dec.decompose(&Mat4::swap()).unwrap();
/// assert_eq!(swap.layers, 3);
/// assert!(swap.error < 1e-7);
/// ```
#[derive(Clone, Debug)]
pub struct Decomposer {
    basis: Mat4,
    basis_coord: WeylCoord,
    config: DecomposerConfig,
}

impl Decomposer {
    /// Creates a decomposer for the given hardware basis gate with default
    /// configuration.
    pub fn new(basis: Mat4) -> Self {
        Decomposer::with_config(basis, DecomposerConfig::default())
    }

    /// Creates a decomposer with explicit configuration.
    pub fn with_config(basis: Mat4, config: DecomposerConfig) -> Self {
        let basis_coord = kak_vector(&basis);
        Decomposer {
            basis,
            basis_coord,
            config,
        }
    }

    /// The hardware basis gate.
    pub fn basis(&self) -> &Mat4 {
        &self.basis
    }

    /// Cartan coordinates of the basis gate.
    pub fn basis_coord(&self) -> WeylCoord {
        self.basis_coord
    }

    /// Analytic lower bound on the number of layers needed for `target`;
    /// exact for SWAP- and CNOT-class targets (the cases the region
    /// geometry of Section V covers), a generic bound otherwise.
    pub fn min_layers(&self, target_coord: WeylCoord) -> usize {
        let t = target_coord.canonicalize();
        if t.dist(WeylCoord::IDENTITY) < 1e-9 {
            return 0;
        }
        if t.class_eq(self.basis_coord, 1e-9) {
            return 1;
        }
        if t.class_eq(WeylCoord::SWAP, 1e-9) {
            return match min_layers_for_swap(self.basis_coord) {
                Some(n) => n as usize,
                // Not able within 3; no exact theory here, start at 4.
                None => 4,
            };
        }
        if t.class_eq(WeylCoord::CNOT, 1e-9) {
            return if can_cnot_in_2(self.basis_coord) {
                2
            } else {
                3
            };
        }
        // Generic non-local target needs at least 2 layers when it is not
        // the basis class itself.
        2
    }

    /// Decomposes `target` into the minimum number of basis-gate layers.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisFailed`] when no layer count up to the configured
    /// maximum reaches the tolerance.
    pub fn decompose(&self, target: &Mat4) -> Result<Synthesized2Q, SynthesisFailed> {
        let start = if self.config.use_depth_oracle {
            self.min_layers(kak_vector(target))
        } else {
            // NuOp-style: start from zero layers and work upward.
            0
        };
        self.decompose_from(target, start)
    }

    /// Decomposes with an explicit number of layers (no search).
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisFailed`] when the tolerance is not reached at
    /// exactly `layers` layers.
    pub fn decompose_exact_layers(
        &self,
        target: &Mat4,
        layers: usize,
    ) -> Result<Synthesized2Q, SynthesisFailed> {
        self.decompose_exact_layers_ws(target, layers, &mut Workspace::new())
    }

    /// [`Decomposer::decompose_exact_layers`] with caller-owned optimizer
    /// scratch, so a layer search reuses one set of buffers throughout.
    fn decompose_exact_layers_ws(
        &self,
        target: &Mat4,
        layers: usize,
        ws: &mut Workspace,
    ) -> Result<Synthesized2Q, SynthesisFailed> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let bases = vec![self.basis; layers];
        let run = optimize_with_restarts_ws(
            target,
            &bases,
            self.config.restarts,
            1.0 - self.config.tol / 5.0,
            &OptimizerConfig::default(),
            &mut rng,
            ws,
        );
        let result = finish(target, run.locals, layers, &bases);
        if result.error <= self.config.tol {
            Ok(result)
        } else {
            Err(SynthesisFailed {
                best_error: result.error,
                max_layers: layers,
            })
        }
    }

    fn decompose_from(
        &self,
        target: &Mat4,
        start_layers: usize,
    ) -> Result<Synthesized2Q, SynthesisFailed> {
        let mut best_error = f64::INFINITY;
        let mut ws = Workspace::new();
        for layers in start_layers..=self.config.max_layers {
            match self.decompose_exact_layers_ws(target, layers, &mut ws) {
                Ok(result) => return Ok(result),
                Err(e) => best_error = best_error.min(e.best_error),
            }
        }
        Err(SynthesisFailed {
            best_error,
            max_layers: self.config.max_layers,
        })
    }
}

/// Decomposes `target` into the explicit per-layer `bases` (mixed-basis
/// synthesis, e.g. mirror pairs for 2-layer SWAP).
///
/// # Errors
///
/// Returns [`SynthesisFailed`] when the tolerance is not reached.
pub fn decompose_with_bases(
    target: &Mat4,
    bases: &[Mat4],
    config: &DecomposerConfig,
) -> Result<Synthesized2Q, SynthesisFailed> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let run = optimize_with_restarts(
        target,
        bases,
        config.restarts,
        1.0 - config.tol / 5.0,
        &OptimizerConfig::default(),
        &mut rng,
    );
    let result = finish(target, run.locals, bases.len(), bases);
    if result.error <= config.tol {
        Ok(result)
    } else {
        Err(SynthesisFailed {
            best_error: result.error,
            max_layers: bases.len(),
        })
    }
}

fn finish(
    target: &Mat4,
    locals: Vec<(nsb_math::Mat2, nsb_math::Mat2)>,
    layers: usize,
    bases: &[Mat4],
) -> Synthesized2Q {
    let w = crate::ansatz::build_ansatz(&locals, bases);
    let tr = (w.adjoint() * *target).trace();
    let overlap = tr.abs() / 4.0;
    let avg_fid = (tr.abs() * tr.abs() + 4.0) / 20.0;
    Synthesized2Q {
        locals,
        layers,
        trace_overlap: overlap,
        error: 1.0 - avg_fid,
        phase: tr.arg(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsb_math::{haar_su2, Mat2};
    use nsb_weyl::canonical_gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn swap_from_cnot_needs_three_layers() {
        let dec = Decomposer::new(Mat4::cnot());
        let s = dec.decompose(&Mat4::swap()).unwrap();
        assert_eq!(s.layers, 3);
        assert!(s.error < 1e-7, "error {}", s.error);
        let rebuilt = s.unitary_with_phase(&vec![Mat4::cnot(); 3]);
        assert!(rebuilt.approx_eq(&Mat4::swap(), 1e-5));
    }

    #[test]
    fn swap_from_b_gate_needs_two_layers() {
        let dec = Decomposer::new(Mat4::b_gate());
        let s = dec.decompose(&Mat4::swap()).unwrap();
        assert_eq!(s.layers, 2);
        assert!(s.error < 1e-7);
    }

    #[test]
    fn cnot_from_sqrt_iswap_needs_two_layers() {
        let dec = Decomposer::new(Mat4::sqrt_iswap());
        let s = dec.decompose(&Mat4::cnot()).unwrap();
        assert_eq!(s.layers, 2);
        assert!(s.error < 1e-7);
    }

    #[test]
    fn swap_from_sqrt_iswap_needs_three_layers() {
        let dec = Decomposer::new(Mat4::sqrt_iswap());
        let s = dec.decompose(&Mat4::swap()).unwrap();
        assert_eq!(s.layers, 3);
        assert!(s.error < 1e-7);
    }

    #[test]
    fn basis_class_target_is_one_layer() {
        let mut rng = StdRng::seed_from_u64(10);
        let basis = Mat4::sqrt_iswap();
        let dressed = Mat4::kron(&haar_su2(&mut rng), &haar_su2(&mut rng))
            * basis
            * Mat4::kron(&haar_su2(&mut rng), &haar_su2(&mut rng));
        let dec = Decomposer::new(basis);
        let s = dec.decompose(&dressed).unwrap();
        assert_eq!(s.layers, 1);
        assert!(s.error < 1e-7);
    }

    #[test]
    fn local_target_is_zero_layers() {
        let mut rng = StdRng::seed_from_u64(11);
        let target = Mat4::kron(&haar_su2(&mut rng), &haar_su2(&mut rng));
        let dec = Decomposer::new(Mat4::cnot());
        let s = dec.decompose(&target).unwrap();
        assert_eq!(s.layers, 0);
        assert!(s.error < 1e-10);
    }

    #[test]
    fn mirror_pair_synthesizes_swap_in_two_layers() {
        // CNOT and iSWAP are mirror partners (Appendix B).
        let cfg = DecomposerConfig::default();
        let s = decompose_with_bases(&Mat4::swap(), &[Mat4::cnot(), Mat4::iswap()], &cfg).unwrap();
        assert!(s.error < 1e-7, "error {}", s.error);
    }

    #[test]
    fn impossible_two_layer_swap_fails_cleanly() {
        let cfg = DecomposerConfig {
            restarts: 6,
            ..DecomposerConfig::default()
        };
        let err =
            decompose_with_bases(&Mat4::swap(), &[Mat4::cnot(), Mat4::cnot()], &cfg).unwrap_err();
        assert!(err.best_error > 1e-4);
    }

    #[test]
    fn arbitrary_targets_from_b_gate_in_two_layers() {
        // The B gate synthesizes ANY two-qubit gate in two layers.
        let mut rng = StdRng::seed_from_u64(12);
        let dec = Decomposer::new(Mat4::b_gate());
        for _ in 0..5 {
            let target = nsb_math::haar_u4(&mut rng);
            let s = dec.decompose(&target).unwrap();
            assert!(s.layers <= 2, "layers {}", s.layers);
            assert!(s.error < 1e-7, "error {}", s.error);
        }
    }

    #[test]
    fn nonstandard_basis_synthesizes_swap_and_cnot() {
        // A nonstandard gate past both region faces, with a z component.
        let basis = canonical_gate(nsb_weyl::WeylCoord::new(0.30, 0.24, 0.06));
        // Dress it with locals so it is "nonstandard" in matrix form too.
        let mut rng = StdRng::seed_from_u64(13);
        let dressed = Mat4::kron(&haar_su2(&mut rng), &haar_su2(&mut rng))
            * basis
            * Mat4::kron(&haar_su2(&mut rng), &haar_su2(&mut rng));
        let dec = Decomposer::new(dressed);
        let s = dec.decompose(&Mat4::swap()).unwrap();
        assert_eq!(s.layers, 3);
        assert!(s.error < 1e-7, "swap error {}", s.error);
        let c = dec.decompose(&Mat4::cnot()).unwrap();
        assert_eq!(c.layers, 2);
        assert!(c.error < 1e-7, "cnot error {}", c.error);
    }

    #[test]
    fn depth_oracle_and_incremental_agree() {
        let basis = Mat4::sqrt_iswap();
        let with = Decomposer::with_config(
            basis,
            DecomposerConfig {
                use_depth_oracle: true,
                ..DecomposerConfig::default()
            },
        );
        let without = Decomposer::with_config(
            basis,
            DecomposerConfig {
                use_depth_oracle: false,
                ..DecomposerConfig::default()
            },
        );
        for target in [Mat4::swap(), Mat4::cnot(), Mat4::cphase(0.8)] {
            let a = with.decompose(&target).unwrap();
            let b = without.decompose(&target).unwrap();
            assert_eq!(a.layers, b.layers, "layer mismatch");
        }
    }

    #[test]
    fn rebuilt_unitary_matches_target_up_to_phase() {
        let dec = Decomposer::new(Mat4::sqrt_iswap());
        let target = Mat4::cphase(1.1);
        let s = dec.decompose(&target).unwrap();
        let w = s.unitary(&vec![Mat4::sqrt_iswap(); s.layers]);
        assert!(w.approx_eq_up_to_phase(&target, 1e-4));
        // Identity local check: all locals are unitary.
        for (u, v) in &s.locals {
            assert!(u.is_unitary(1e-9) && v.is_unitary(1e-9));
        }
        let _ = Mat2::identity();
    }
}
