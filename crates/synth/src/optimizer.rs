//! Alternating "environment" optimization of the local unitaries.
//!
//! With all but one local factor fixed, the trace objective is linear in
//! that factor: `tr(T^dag W) = tr(u E)` for a 2x2 environment `E` obtained
//! by partial contraction. The optimal unitary `u` is the polar factor
//! `V U^dag` of the SVD `E = U S V^dag`, achieving `s1 + s2`. Sweeping all
//! factors monotonically increases the objective; random restarts make the
//! search reliable enough to serve as a *decision procedure* for
//! decomposability (the approach NuOp takes with generic optimizers, made
//! deterministic and fast here).

use crate::ansatz::build_ansatz;
use nsb_math::{haar_su2, max_trace_unitary, Complex64, Mat2, Mat4};
use rand::Rng;

/// Tuning knobs for the alternating optimizer.
#[derive(Clone, Copy, Debug)]
pub struct OptimizerConfig {
    /// Maximum number of full sweeps per restart.
    pub max_sweeps: usize,
    /// Declare a stall after this many consecutive sweeps with improvement
    /// below `stall_tol`.
    pub stall_sweeps: usize,
    /// Improvement threshold counting as "no progress".
    pub stall_tol: f64,
    /// Stop as converged once `4 - Re tr(T^dag W)` drops below this
    /// residual. The default is tight enough that a converged result
    /// reconstructs the target to `sqrt(2e-12) ~ 1.4e-6` in Frobenius
    /// norm.
    pub target_residual: f64,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            max_sweeps: 2000,
            stall_sweeps: 8,
            stall_tol: 1e-15,
            target_residual: 1.0e-12,
        }
    }
}

/// Outcome of one optimization run: locals and the achieved overlap.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Optimized local pairs (`bases.len() + 1` of them).
    pub locals: Vec<(Mat2, Mat2)>,
    /// Achieved `|tr(T^dag W)| / 4` in `[0, 1]`.
    pub overlap: f64,
}

/// Optimizes the locals for `target` over the fixed per-layer `bases`,
/// starting from the supplied initial locals.
pub fn optimize_locals(
    target: &Mat4,
    bases: &[Mat4],
    mut locals: Vec<(Mat2, Mat2)>,
    config: &OptimizerConfig,
) -> RunResult {
    assert_eq!(locals.len(), bases.len() + 1, "ansatz shape mismatch");
    let t_dag = target.adjoint();
    let n = locals.len();
    let mut prev = objective(&t_dag, &locals, bases);
    let mut stalled = 0usize;
    for _sweep in 0..config.max_sweeps {
        for k in 0..n {
            // G_k = C_k T^dag A_k where W = A_k L_k C_k.
            // C_k = B_k L_{k-1} ... L_0 (everything applied before L_k)
            // A_k = L_n-1... (everything applied after L_k)
            let mut c = Mat4::identity();
            for j in 0..k {
                c = Mat4::kron(&locals[j].0, &locals[j].1) * c;
                c = bases[j] * c;
            }
            let mut a = Mat4::identity();
            for j in (k + 1)..n {
                a = Mat4::kron(&locals[j].0, &locals[j].1) * a;
                if j < n - 1 {
                    a = bases[j] * a;
                }
            }
            // Wait: A_k must include the basis gate between L_k and L_{k+1}.
            if k < n - 1 {
                a = a * bases[k];
            }
            let g = c * t_dag * a;
            // Update u then v with fresh environments; iterating the pair a
            // few times converges the local subproblem before moving on,
            // which measurably speeds up the global tail.
            for _ in 0..3 {
                let e_u = env_u(&g, &locals[k].1);
                locals[k].0 = max_trace_unitary(&e_u);
                let e_v = env_v(&g, &locals[k].0);
                locals[k].1 = max_trace_unitary(&e_v);
            }
        }
        let cur = objective(&t_dag, &locals, bases);
        if 4.0 - cur < config.target_residual {
            prev = cur;
            break;
        }
        if cur - prev < config.stall_tol {
            stalled += 1;
            // Near convergence (residual within ~1e-5 of the target) the
            // alternating sweeps can creep in steps below `stall_tol` yet
            // still close the gap; give those tails extra patience so the
            // decision procedure does not misclassify a decomposable
            // target on an unlucky start.
            let patience = if 4.0 - cur < 1e-5 {
                4 * config.stall_sweeps
            } else {
                config.stall_sweeps
            };
            if stalled >= patience {
                prev = prev.max(cur);
                break;
            }
        } else {
            stalled = 0;
        }
        prev = prev.max(cur);
    }
    RunResult {
        locals,
        overlap: prev / 4.0,
    }
}

/// Runs the optimizer from `restarts` random starting points, returning the
/// best result; stops early when `target_overlap` is reached.
pub fn optimize_with_restarts<R: Rng + ?Sized>(
    target: &Mat4,
    bases: &[Mat4],
    restarts: usize,
    target_overlap: f64,
    config: &OptimizerConfig,
    rng: &mut R,
) -> RunResult {
    let mut best: Option<RunResult> = None;
    for attempt in 0..restarts.max(1) {
        let init: Vec<(Mat2, Mat2)> = (0..=bases.len())
            .map(|k| {
                if attempt == 0 && k == 0 {
                    // First attempt starts from identity locals: cheap and
                    // often already optimal for structured targets.
                    (Mat2::identity(), Mat2::identity())
                } else if attempt == 0 {
                    (Mat2::identity(), Mat2::identity())
                } else {
                    (haar_su2(rng), haar_su2(rng))
                }
            })
            .collect();
        let run = optimize_locals(target, bases, init, config);
        let better = match &best {
            None => true,
            Some(b) => run.overlap > b.overlap,
        };
        if better {
            best = Some(run);
        }
        if best.as_ref().map(|b| b.overlap).unwrap_or(0.0) >= target_overlap {
            break;
        }
    }
    let mut best = best.expect("at least one restart ran"); // lint: allow(no-expect) — loop body runs >= 1 time
                                                            // Polish phase: coordinate ascent on the local pairs has spurious
                                                            // "ping-pong" fixed points a hair away from the optimum (each single
                                                            // update is exactly optimal yet the joint step is stuck), so a run
                                                            // can plateau at residual ~1e-7 on a decomposable target no matter
                                                            // how many fresh restarts are tried. Residual-scaled random kicks
                                                            // followed by re-optimization hop off the ridge; each round shrinks
                                                            // the residual by roughly an order of magnitude. Runs with a large
                                                            // residual are genuine rejections, not ridges, and are returned
                                                            // untouched so the decision procedure stays cheap.
    let mut residual = 4.0 * (1.0 - best.overlap);
    if residual < POLISH_THRESHOLD {
        for _round in 0..POLISH_ROUNDS {
            if residual <= config.target_residual {
                break;
            }
            let mag = (3.0 * residual.sqrt()).clamp(1e-8, 3e-2);
            for _trial in 0..POLISH_TRIALS {
                let kicked: Vec<(Mat2, Mat2)> = best
                    .locals
                    .iter()
                    .map(|(u, v)| (small_rotation(rng, mag) * *u, small_rotation(rng, mag) * *v))
                    .collect();
                let run = optimize_locals(target, bases, kicked, config);
                if run.overlap > best.overlap {
                    best = run;
                }
            }
            let polished = 4.0 * (1.0 - best.overlap);
            if polished >= residual {
                break;
            }
            residual = polished;
        }
    }
    best
}

/// Residual below which a non-converged run is treated as sitting on a
/// ping-pong ridge worth polishing rather than as a genuine rejection.
const POLISH_THRESHOLD: f64 = 1e-4;
/// Kick-and-reoptimize rounds in the polish phase.
const POLISH_ROUNDS: usize = 8;
/// Random kicks tried per polish round.
const POLISH_TRIALS: usize = 4;

/// A random unitary within distance ~`mag` of the identity: a Haar
/// rotation blended into the identity and projected back onto U(2).
fn small_rotation<R: Rng + ?Sized>(rng: &mut R, mag: f64) -> Mat2 {
    let h = haar_su2(rng);
    let id = Mat2::identity();
    let mut m = Mat2::zero();
    for r in 0..2 {
        for c in 0..2 {
            m[(r, c)] =
                id.at(r, c) * Complex64::real(1.0 - mag) + h.at(r, c) * Complex64::real(mag);
        }
    }
    max_trace_unitary(&m.adjoint())
}

/// `Re tr(T^dag W)` — the raw objective maximized by the sweeps. At
/// convergence it equals `|tr|` because the phase is absorbed into the
/// local factors.
fn objective(t_dag: &Mat4, locals: &[(Mat2, Mat2)], bases: &[Mat4]) -> f64 {
    let w = build_ansatz(locals, bases);
    (*t_dag * w).trace().abs()
}

/// Environment of `u` in `tr((u (x) v) G)`: returns `E` with the property
/// `tr((u (x) v) G) = tr(u E)`.
fn env_u(g: &Mat4, v: &Mat2) -> Mat2 {
    let mut e = Mat2::zero();
    for i in 0..2 {
        for j in 0..2 {
            let mut acc = Complex64::ZERO;
            for k in 0..2 {
                for l in 0..2 {
                    acc += v.at(k, l) * g.at(2 * j + l, 2 * i + k);
                }
            }
            e[(j, i)] = acc;
        }
    }
    e
}

/// Environment of `v` in `tr((u (x) v) G)`.
fn env_v(g: &Mat4, u: &Mat2) -> Mat2 {
    let mut e = Mat2::zero();
    for k in 0..2 {
        for l in 0..2 {
            let mut acc = Complex64::ZERO;
            for i in 0..2 {
                for j in 0..2 {
                    acc += u.at(i, j) * g.at(2 * j + l, 2 * i + k);
                }
            }
            e[(l, k)] = acc;
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsb_math::haar_su2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn environments_linearize_the_trace() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = nsb_math::haar_u4(&mut rng);
        let u = haar_su2(&mut rng);
        let v = haar_su2(&mut rng);
        let direct = (Mat4::kron(&u, &v) * g).trace();
        let via_u = {
            let e = env_u(&g, &v);
            (u * e).trace()
        };
        let via_v = {
            let e = env_v(&g, &u);
            (v * e).trace()
        };
        assert!((direct - via_u).abs() < 1e-10);
        assert!((direct - via_v).abs() < 1e-10);
    }

    #[test]
    fn recovers_local_target_with_zero_layers() {
        let mut rng = StdRng::seed_from_u64(4);
        let target = Mat4::kron(&haar_su2(&mut rng), &haar_su2(&mut rng));
        let run = optimize_with_restarts(
            &target,
            &[],
            4,
            1.0 - 1e-12,
            &OptimizerConfig::default(),
            &mut rng,
        );
        assert!(run.overlap > 1.0 - 1e-10, "overlap {}", run.overlap);
    }

    #[test]
    fn recovers_dressed_basis_with_one_layer() {
        let mut rng = StdRng::seed_from_u64(5);
        let b = Mat4::sqrt_iswap();
        let dress = Mat4::kron(&haar_su2(&mut rng), &haar_su2(&mut rng));
        let target = dress * b * Mat4::kron(&haar_su2(&mut rng), &haar_su2(&mut rng));
        let run = optimize_with_restarts(
            &target,
            &[b],
            6,
            1.0 - 1e-12,
            &OptimizerConfig::default(),
            &mut rng,
        );
        assert!(run.overlap > 1.0 - 1e-9, "overlap {}", run.overlap);
    }

    #[test]
    fn monotone_progress_on_hard_target() {
        // 2 layers of CNOT cannot make SWAP: overlap must stay below 1 but
        // the optimizer should still do clearly better than a random start.
        let mut rng = StdRng::seed_from_u64(6);
        let run = optimize_with_restarts(
            &Mat4::swap(),
            &[Mat4::cnot(), Mat4::cnot()],
            6,
            1.0 - 1e-12,
            &OptimizerConfig::default(),
            &mut rng,
        );
        assert!(run.overlap < 1.0 - 1e-3, "SWAP from 2 CNOTs is impossible");
        assert!(run.overlap > 0.5, "optimizer made no progress");
    }
}
