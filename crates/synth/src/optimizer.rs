//! Alternating "environment" optimization of the local unitaries.
//!
//! With all but one local factor fixed, the trace objective is linear in
//! that factor: `tr(T^dag W) = tr(u E)` for a 2x2 environment `E` obtained
//! by partial contraction. The optimal unitary `u` is the polar factor
//! `V U^dag` of the SVD `E = U S V^dag`, achieving `s1 + s2`. Sweeping all
//! factors monotonically increases the objective; random restarts make the
//! search reliable enough to serve as a *decision procedure* for
//! decomposability (the approach NuOp takes with generic optimizers, made
//! deterministic and fast here).

use crate::ansatz::build_ansatz;
use nsb_math::{haar_su2, max_trace_unitary, Complex64, Mat2, Mat4};
use rand::Rng;

/// Tuning knobs for the alternating optimizer.
#[derive(Clone, Copy, Debug)]
pub struct OptimizerConfig {
    /// Maximum number of full sweeps per restart.
    pub max_sweeps: usize,
    /// Declare a stall after this many consecutive sweeps with improvement
    /// below `stall_tol`.
    pub stall_sweeps: usize,
    /// Improvement threshold counting as "no progress".
    pub stall_tol: f64,
    /// Stop as converged once `4 - Re tr(T^dag W)` drops below this
    /// residual. The default is tight enough that a converged result
    /// reconstructs the target to `sqrt(2e-12) ~ 1.4e-6` in Frobenius
    /// norm.
    pub target_residual: f64,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            max_sweeps: 2000,
            stall_sweeps: 8,
            stall_tol: 1e-15,
            target_residual: 1.0e-12,
        }
    }
}

/// Outcome of one optimization run: locals and the achieved overlap.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Optimized local pairs (`bases.len() + 1` of them).
    pub locals: Vec<(Mat2, Mat2)>,
    /// Achieved `|tr(T^dag W)| / 4` in `[0, 1]`.
    pub overlap: f64,
}

/// Reusable scratch buffers for the alternating optimizer.
///
/// One `Workspace` threaded through a restart/basin-hopping search makes
/// the inner loop allocation-free: candidate and best locals live in
/// resizable buffers, and the per-sweep suffix products reuse one `Vec`.
/// A capacity-growth counter backs debug assertions that the buffers stop
/// growing after the first restart warms them up.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Current-attempt (and polish-kick) locals.
    cand: Vec<(Mat2, Mat2)>,
    /// Best locals found so far.
    best: Vec<(Mat2, Mat2)>,
    /// Per-layer suffix products `A_k`, rebuilt each sweep.
    suffix: Vec<Mat4>,
    /// Times any buffer had to grow its capacity.
    grows: usize,
}

impl Workspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Number of buffer capacity growths so far. After the first restart of
    /// a search has warmed the buffers, this must stay constant — the
    /// restart loop debug-asserts exactly that.
    pub fn grows(&self) -> usize {
        self.grows
    }

    /// Sizes every buffer for an `n`-local ansatz, counting capacity growth.
    fn prepare(&mut self, n: usize) {
        if self.cand.capacity() < n || self.best.capacity() < n || self.suffix.capacity() < n {
            self.grows += 1;
        }
        let id = (Mat2::identity(), Mat2::identity());
        self.cand.resize(n, id);
        self.best.resize(n, id);
        self.suffix.resize(n, Mat4::identity());
    }
}

/// Optimizes the locals for `target` over the fixed per-layer `bases`,
/// starting from the supplied initial locals.
pub fn optimize_locals(
    target: &Mat4,
    bases: &[Mat4],
    mut locals: Vec<(Mat2, Mat2)>,
    config: &OptimizerConfig,
) -> RunResult {
    assert_eq!(locals.len(), bases.len() + 1, "ansatz shape mismatch");
    let t_dag = target.adjoint();
    let mut suffix = vec![Mat4::identity(); locals.len()];
    let overlap = optimize_slice(&t_dag, bases, &mut locals, &mut suffix, config);
    RunResult { locals, overlap }
}

/// Core alternating sweep working entirely in caller-provided storage.
///
/// Each sweep builds the suffix products `A_k` once (right-to-left) and
/// grows the prefix `C_k` incrementally as factors are updated, instead of
/// rebuilding both from scratch for every `k` — ~`n(2n+1)` matmuls per
/// sweep drop to ~`7n`. Returns the achieved overlap in `[0, 1]`.
fn optimize_slice(
    t_dag: &Mat4,
    bases: &[Mat4],
    locals: &mut [(Mat2, Mat2)],
    suffix: &mut [Mat4],
    config: &OptimizerConfig,
) -> f64 {
    let n = locals.len();
    debug_assert_eq!(n, bases.len() + 1, "ansatz shape mismatch");
    debug_assert_eq!(suffix.len(), n, "suffix buffer shape mismatch");
    let mut prev = objective(t_dag, locals, bases);
    let mut stalled = 0usize;
    for _sweep in 0..config.max_sweeps {
        // Suffix products from the sweep-entry locals:
        // A_k = L_{n-1} B_{n-2} ... L_{k+1} (basis gates interleaved), so
        // F_k = F_{k+1} B_{k+1} K_{k+1} with F_{n-1} = I.
        suffix[n - 1] = Mat4::identity();
        for k in (0..n - 1).rev() {
            let mut f = Mat4::kron(&locals[k + 1].0, &locals[k + 1].1);
            if k + 1 < n - 1 {
                f = bases[k + 1] * f;
            }
            suffix[k] = suffix[k + 1] * f;
        }
        // Prefix C_k grows incrementally with the freshly updated factors.
        let mut c = Mat4::identity();
        let mut last_g = Mat4::identity();
        for k in 0..n {
            // G_k = C_k T^dag A_k where W = A_k L_k C_k; A_k includes the
            // basis gate between L_k and L_{k+1}.
            let a = if k < n - 1 {
                suffix[k] * bases[k]
            } else {
                suffix[k]
            };
            let g = c * *t_dag * a;
            // Update u then v with fresh environments; iterating the pair a
            // few times converges the local subproblem before moving on,
            // which measurably speeds up the global tail.
            for _ in 0..3 {
                let e_u = env_u(&g, &locals[k].1);
                locals[k].0 = max_trace_unitary(&e_u);
                let e_v = env_v(&g, &locals[k].0);
                locals[k].1 = max_trace_unitary(&e_v);
            }
            if k + 1 < n {
                c = Mat4::kron(&locals[k].0, &locals[k].1) * c;
                c = bases[k] * c;
            } else {
                last_g = g;
            }
        }
        // tr(T^dag W) = tr(K_{n-1} G_{n-1}) by cyclicity — no need to
        // rebuild the full ansatz just to measure progress.
        let cur = (Mat4::kron(&locals[n - 1].0, &locals[n - 1].1) * last_g)
            .trace()
            .abs();
        if 4.0 - cur < config.target_residual {
            prev = cur;
            break;
        }
        if cur - prev < config.stall_tol {
            stalled += 1;
            // Near convergence (residual within ~1e-5 of the target) the
            // alternating sweeps can creep in steps below `stall_tol` yet
            // still close the gap; give those tails extra patience so the
            // decision procedure does not misclassify a decomposable
            // target on an unlucky start.
            let patience = if 4.0 - cur < 1e-5 {
                4 * config.stall_sweeps
            } else {
                config.stall_sweeps
            };
            if stalled >= patience {
                prev = prev.max(cur);
                break;
            }
        } else {
            stalled = 0;
        }
        prev = prev.max(cur);
    }
    prev / 4.0
}

/// Runs the optimizer from `restarts` random starting points, returning the
/// best result; stops early when `target_overlap` is reached.
///
/// Allocates a fresh [`Workspace`] per call; hot callers should hold one and
/// use [`optimize_with_restarts_ws`] instead.
pub fn optimize_with_restarts<R: Rng + ?Sized>(
    target: &Mat4,
    bases: &[Mat4],
    restarts: usize,
    target_overlap: f64,
    config: &OptimizerConfig,
    rng: &mut R,
) -> RunResult {
    let mut ws = Workspace::new();
    optimize_with_restarts_ws(
        target,
        bases,
        restarts,
        target_overlap,
        config,
        rng,
        &mut ws,
    )
}

/// [`optimize_with_restarts`] with caller-owned scratch: every restart and
/// polish kick reuses the workspace buffers, so after the first restart the
/// search performs no allocations (debug-asserted via [`Workspace::grows`]).
#[allow(clippy::too_many_arguments)] // same signature as optimize_with_restarts plus the scratch
pub fn optimize_with_restarts_ws<R: Rng + ?Sized>(
    target: &Mat4,
    bases: &[Mat4],
    restarts: usize,
    target_overlap: f64,
    config: &OptimizerConfig,
    rng: &mut R,
    ws: &mut Workspace,
) -> RunResult {
    let n = bases.len() + 1;
    ws.prepare(n);
    let t_dag = target.adjoint();
    let mut best_overlap = f64::NEG_INFINITY;
    let mut warm_grows: Option<usize> = None;
    for attempt in 0..restarts.max(1) {
        for pair in ws.cand.iter_mut() {
            *pair = if attempt == 0 {
                // First attempt starts from identity locals: cheap and
                // often already optimal for structured targets.
                (Mat2::identity(), Mat2::identity())
            } else {
                (haar_su2(rng), haar_su2(rng))
            };
        }
        let overlap = optimize_slice(&t_dag, bases, &mut ws.cand, &mut ws.suffix, config);
        match warm_grows {
            None => warm_grows = Some(ws.grows),
            Some(warm) => debug_assert_eq!(
                ws.grows, warm,
                "optimizer buffers grew after the warm-up restart"
            ),
        }
        if overlap > best_overlap {
            best_overlap = overlap;
            ws.best.copy_from_slice(&ws.cand);
        }
        if best_overlap >= target_overlap {
            break;
        }
    }
    // Polish phase: coordinate ascent on the local pairs has spurious
    // "ping-pong" fixed points a hair away from the optimum (each single
    // update is exactly optimal yet the joint step is stuck), so a run
    // can plateau at residual ~1e-7 on a decomposable target no matter
    // how many fresh restarts are tried. Residual-scaled random kicks
    // followed by re-optimization hop off the ridge; each round shrinks
    // the residual by roughly an order of magnitude. Runs with a large
    // residual are genuine rejections, not ridges, and are returned
    // untouched so the decision procedure stays cheap.
    let mut residual = 4.0 * (1.0 - best_overlap);
    if residual < POLISH_THRESHOLD {
        for _round in 0..POLISH_ROUNDS {
            if residual <= config.target_residual {
                break;
            }
            let mag = (3.0 * residual.sqrt()).clamp(1e-8, 3e-2);
            for _trial in 0..POLISH_TRIALS {
                // Kick the best locals into the reusable candidate buffer —
                // no per-kick Vec is built.
                for (slot, (u, v)) in ws.cand.iter_mut().zip(ws.best.iter()) {
                    *slot = (small_rotation(rng, mag) * *u, small_rotation(rng, mag) * *v);
                }
                let overlap = optimize_slice(&t_dag, bases, &mut ws.cand, &mut ws.suffix, config);
                debug_assert_eq!(
                    ws.grows,
                    warm_grows.unwrap_or(0),
                    "polish kicks must not grow optimizer buffers"
                );
                if overlap > best_overlap {
                    best_overlap = overlap;
                    ws.best.copy_from_slice(&ws.cand);
                }
            }
            let polished = 4.0 * (1.0 - best_overlap);
            if polished >= residual {
                break;
            }
            residual = polished;
        }
    }
    RunResult {
        locals: ws.best.clone(),
        overlap: best_overlap,
    }
}

/// Residual below which a non-converged run is treated as sitting on a
/// ping-pong ridge worth polishing rather than as a genuine rejection.
const POLISH_THRESHOLD: f64 = 1e-4;
/// Kick-and-reoptimize rounds in the polish phase.
const POLISH_ROUNDS: usize = 8;
/// Random kicks tried per polish round.
const POLISH_TRIALS: usize = 4;

/// A random unitary within distance ~`mag` of the identity: a Haar
/// rotation blended into the identity and projected back onto U(2).
fn small_rotation<R: Rng + ?Sized>(rng: &mut R, mag: f64) -> Mat2 {
    let h = haar_su2(rng);
    let id = Mat2::identity();
    let mut m = Mat2::zero();
    for r in 0..2 {
        for c in 0..2 {
            m[(r, c)] =
                id.at(r, c) * Complex64::real(1.0 - mag) + h.at(r, c) * Complex64::real(mag);
        }
    }
    max_trace_unitary(&m.adjoint())
}

/// `Re tr(T^dag W)` — the raw objective maximized by the sweeps. At
/// convergence it equals `|tr|` because the phase is absorbed into the
/// local factors.
fn objective(t_dag: &Mat4, locals: &[(Mat2, Mat2)], bases: &[Mat4]) -> f64 {
    let w = build_ansatz(locals, bases);
    (*t_dag * w).trace().abs()
}

/// Environment of `u` in `tr((u (x) v) G)`: returns `E` with the property
/// `tr((u (x) v) G) = tr(u E)`.
fn env_u(g: &Mat4, v: &Mat2) -> Mat2 {
    let mut e = Mat2::zero();
    for i in 0..2 {
        for j in 0..2 {
            let mut acc = Complex64::ZERO;
            for k in 0..2 {
                for l in 0..2 {
                    acc += v.at(k, l) * g.at(2 * j + l, 2 * i + k);
                }
            }
            e[(j, i)] = acc;
        }
    }
    e
}

/// Environment of `v` in `tr((u (x) v) G)`.
fn env_v(g: &Mat4, u: &Mat2) -> Mat2 {
    let mut e = Mat2::zero();
    for k in 0..2 {
        for l in 0..2 {
            let mut acc = Complex64::ZERO;
            for i in 0..2 {
                for j in 0..2 {
                    acc += u.at(i, j) * g.at(2 * j + l, 2 * i + k);
                }
            }
            e[(l, k)] = acc;
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsb_math::haar_su2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn environments_linearize_the_trace() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = nsb_math::haar_u4(&mut rng);
        let u = haar_su2(&mut rng);
        let v = haar_su2(&mut rng);
        let direct = (Mat4::kron(&u, &v) * g).trace();
        let via_u = {
            let e = env_u(&g, &v);
            (u * e).trace()
        };
        let via_v = {
            let e = env_v(&g, &u);
            (v * e).trace()
        };
        assert!((direct - via_u).abs() < 1e-10);
        assert!((direct - via_v).abs() < 1e-10);
    }

    #[test]
    fn recovers_local_target_with_zero_layers() {
        let mut rng = StdRng::seed_from_u64(4);
        let target = Mat4::kron(&haar_su2(&mut rng), &haar_su2(&mut rng));
        let run = optimize_with_restarts(
            &target,
            &[],
            4,
            1.0 - 1e-12,
            &OptimizerConfig::default(),
            &mut rng,
        );
        assert!(run.overlap > 1.0 - 1e-10, "overlap {}", run.overlap);
    }

    #[test]
    fn recovers_dressed_basis_with_one_layer() {
        let mut rng = StdRng::seed_from_u64(5);
        let b = Mat4::sqrt_iswap();
        let dress = Mat4::kron(&haar_su2(&mut rng), &haar_su2(&mut rng));
        let target = dress * b * Mat4::kron(&haar_su2(&mut rng), &haar_su2(&mut rng));
        let run = optimize_with_restarts(
            &target,
            &[b],
            6,
            1.0 - 1e-12,
            &OptimizerConfig::default(),
            &mut rng,
        );
        assert!(run.overlap > 1.0 - 1e-9, "overlap {}", run.overlap);
    }

    #[test]
    fn reused_workspace_matches_fresh_workspace() {
        let b = Mat4::sqrt_iswap();
        let mut rng = StdRng::seed_from_u64(7);
        let dress = Mat4::kron(&haar_su2(&mut rng), &haar_su2(&mut rng));
        let target = dress * b * Mat4::kron(&haar_su2(&mut rng), &haar_su2(&mut rng));
        let cfg = OptimizerConfig::default();
        let mut ws = Workspace::new();
        // Warm the workspace on an unrelated problem (different size).
        let mut warm_rng = StdRng::seed_from_u64(8);
        let _ = optimize_with_restarts_ws(
            &Mat4::swap(),
            &[b, b, b],
            2,
            1.0 - 1e-12,
            &cfg,
            &mut warm_rng,
            &mut ws,
        );
        let mut rng_a = StdRng::seed_from_u64(9);
        let reused =
            optimize_with_restarts_ws(&target, &[b], 4, 1.0 - 1e-12, &cfg, &mut rng_a, &mut ws);
        let mut rng_b = StdRng::seed_from_u64(9);
        let fresh = optimize_with_restarts(&target, &[b], 4, 1.0 - 1e-12, &cfg, &mut rng_b);
        // Same rng seed + same code path => bit-identical outcome, warm or
        // cold buffers.
        assert_eq!(reused.overlap.to_bits(), fresh.overlap.to_bits());
        assert_eq!(reused.locals.len(), fresh.locals.len());
        for ((ru, rv), (fu, fv)) in reused.locals.iter().zip(&fresh.locals) {
            assert!(ru.approx_eq(fu, 0.0) && rv.approx_eq(fv, 0.0));
        }
    }

    #[test]
    fn workspace_stops_growing_after_warmup() {
        let b = Mat4::cnot();
        let cfg = OptimizerConfig::default();
        let mut ws = Workspace::new();
        let mut rng = StdRng::seed_from_u64(14);
        let _ = optimize_with_restarts_ws(
            &Mat4::swap(),
            &[b, b, b],
            3,
            1.0 - 1e-12,
            &cfg,
            &mut rng,
            &mut ws,
        );
        let grows_after_first = ws.grows();
        for seed in 15..18 {
            let mut rng = StdRng::seed_from_u64(seed);
            let _ = optimize_with_restarts_ws(
                &Mat4::swap(),
                &[b, b, b],
                3,
                1.0 - 1e-12,
                &cfg,
                &mut rng,
                &mut ws,
            );
        }
        assert_eq!(
            ws.grows(),
            grows_after_first,
            "same-size searches must not grow the workspace again"
        );
    }

    #[test]
    fn monotone_progress_on_hard_target() {
        // 2 layers of CNOT cannot make SWAP: overlap must stay below 1 but
        // the optimizer should still do clearly better than a random start.
        let mut rng = StdRng::seed_from_u64(6);
        let run = optimize_with_restarts(
            &Mat4::swap(),
            &[Mat4::cnot(), Mat4::cnot()],
            6,
            1.0 - 1e-12,
            &OptimizerConfig::default(),
            &mut rng,
        );
        assert!(run.overlap < 1.0 - 1e-3, "SWAP from 2 CNOTs is impossible");
        assert!(run.overlap > 0.5, "optimizer made no progress");
    }
}
