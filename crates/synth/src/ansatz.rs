//! The layered two-qubit synthesis ansatz.
//!
//! A target gate `T` is synthesized as alternating layers of local (1Q (x)
//! 1Q) unitaries and fixed entangling basis gates:
//!
//! ```text
//! W = (u_L (x) v_L) B_L (u_{L-1} (x) v_{L-1}) ... B_1 (u_0 (x) v_0)
//! ```
//!
//! where the `B_i` are the hardware basis gates (all equal for a single
//! basis gate, or per-layer for mixed-basis synthesis).

use nsb_math::{Complex64, Mat2, Mat4};

/// A synthesized two-qubit circuit: the local unitaries surrounding `L`
/// entangling layers, together with quality metrics.
#[derive(Clone, Debug)]
pub struct Synthesized2Q {
    /// Local pairs `(u_k, v_k)`, length `layers + 1`, applied first-to-last.
    pub locals: Vec<(Mat2, Mat2)>,
    /// Number of entangling layers `L`.
    pub layers: usize,
    /// Normalized trace overlap `|tr(T^dag W)| / 4` achieved.
    pub trace_overlap: f64,
    /// Decomposition error `1 - average gate fidelity`.
    pub error: f64,
    /// Global phase `phi` such that `T ~ e^{i phi} W`.
    pub phase: f64,
}

impl Synthesized2Q {
    /// Rebuilds the synthesized unitary from the stored locals and the
    /// given per-layer basis gates.
    ///
    /// # Panics
    ///
    /// Panics when `bases.len() != self.layers`.
    pub fn unitary(&self, bases: &[Mat4]) -> Mat4 {
        assert_eq!(bases.len(), self.layers, "basis count mismatch");
        build_ansatz(&self.locals, bases)
    }

    /// Rebuilds the unitary including the global phase, so the result is
    /// directly comparable to the target with `approx_eq`.
    pub fn unitary_with_phase(&self, bases: &[Mat4]) -> Mat4 {
        self.unitary(bases).scale(Complex64::cis(self.phase))
    }
}

/// Multiplies out the ansatz `(u_L (x) v_L) B_L ... B_1 (u_0 (x) v_0)`.
///
/// # Panics
///
/// Panics when `locals.len() != bases.len() + 1`.
pub fn build_ansatz(locals: &[(Mat2, Mat2)], bases: &[Mat4]) -> Mat4 {
    assert_eq!(locals.len(), bases.len() + 1, "ansatz shape mismatch");
    let mut w = Mat4::kron(&locals[0].0, &locals[0].1);
    for (k, b) in bases.iter().enumerate() {
        w = *b * w;
        let l = Mat4::kron(&locals[k + 1].0, &locals[k + 1].1);
        w = l * w;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsb_math::haar_su2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_layer_ansatz_is_local() {
        let mut rng = StdRng::seed_from_u64(1);
        let locals = vec![(haar_su2(&mut rng), haar_su2(&mut rng))];
        let w = build_ansatz(&locals, &[]);
        assert!(w.kron_factor(1e-9).is_some());
    }

    #[test]
    fn ansatz_is_unitary() {
        let mut rng = StdRng::seed_from_u64(2);
        let locals: Vec<_> = (0..4)
            .map(|_| (haar_su2(&mut rng), haar_su2(&mut rng)))
            .collect();
        let bases = vec![Mat4::cnot(), Mat4::sqrt_iswap(), Mat4::b_gate()];
        let w = build_ansatz(&locals, &bases);
        assert!(w.is_unitary(1e-11));
    }

    #[test]
    fn identity_locals_reproduce_basis_product() {
        let locals = vec![
            (Mat2::identity(), Mat2::identity()),
            (Mat2::identity(), Mat2::identity()),
        ];
        let w = build_ansatz(&locals, &[Mat4::cnot()]);
        assert!(w.approx_eq(&Mat4::cnot(), 1e-12));
    }
}
