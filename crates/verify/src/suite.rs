//! The pass-style verifier framework: the [`Verifier`] trait and the
//! [`VerifierSuite`] that runs a battery of checks over one target.

use crate::checks::{
    BasisLegality, ConnectivityLegality, ScheduleSanity, UnitaryEquivalence, VerifyConfig,
    WeylCanonicality,
};
use crate::report::VerifyReport;
use crate::target::VerifyTarget;

/// One static check over a compiled program.
///
/// A verifier never mutates the target and never stops early: it reports
/// *every* violation it finds so a single run gives the full picture. It
/// must be `Send + Sync` because the compile service runs suites from
/// worker threads.
pub trait Verifier: Send + Sync {
    /// Stable name used in reports and diagnostics.
    fn name(&self) -> &'static str;
    /// Examines the target and appends violations (or a skip record) to
    /// the report.
    fn verify(&self, target: &VerifyTarget, config: &VerifyConfig, report: &mut VerifyReport);
}

/// An ordered battery of [`Verifier`]s sharing one [`VerifyConfig`].
pub struct VerifierSuite {
    config: VerifyConfig,
    verifiers: Vec<Box<dyn Verifier>>,
}

impl Default for VerifierSuite {
    fn default() -> Self {
        VerifierSuite::standard()
    }
}

impl VerifierSuite {
    /// The full battery: basis legality, connectivity, Weyl canonicality,
    /// schedule sanity and unitary equivalence.
    pub fn standard() -> Self {
        let mut suite = VerifierSuite::structural();
        suite.push(UnitaryEquivalence);
        suite
    }

    /// The four purely structural checks (no statevector simulation) —
    /// cheap enough to run on every compilation of any size.
    pub fn structural() -> Self {
        let mut suite = VerifierSuite::empty();
        suite.push(BasisLegality);
        suite.push(ConnectivityLegality);
        suite.push(WeylCanonicality);
        suite.push(ScheduleSanity);
        suite
    }

    /// A suite with no checks; build it up with [`VerifierSuite::push`].
    pub fn empty() -> Self {
        VerifierSuite {
            config: VerifyConfig::default(),
            verifiers: Vec::new(),
        }
    }

    /// Replaces the shared configuration.
    pub fn with_config(mut self, config: VerifyConfig) -> Self {
        self.config = config;
        self
    }

    /// The shared configuration.
    pub fn config(&self) -> &VerifyConfig {
        &self.config
    }

    /// Appends a check; checks run in insertion order.
    pub fn push<V: Verifier + 'static>(&mut self, verifier: V) -> &mut Self {
        self.verifiers.push(Box::new(verifier));
        self
    }

    /// Number of registered checks.
    pub fn len(&self) -> usize {
        self.verifiers.len()
    }

    /// True when no checks are registered.
    pub fn is_empty(&self) -> bool {
        self.verifiers.is_empty()
    }

    /// Runs every check over the target and collects one report.
    pub fn run(&self, target: &VerifyTarget) -> VerifyReport {
        let mut report = VerifyReport::default();
        for v in &self.verifiers {
            report.checks_run.push(v.name());
            v.verify(target, &self.config, &mut report);
        }
        report
    }
}
