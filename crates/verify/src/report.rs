//! Violations, reports and the verification level switch.

use std::fmt;

/// The kind of invariant a check found broken.
///
/// Each [`Verifier`](crate::Verifier) in the standard suite reports one or
/// two kinds, so a report can be asserted on precisely in tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A two-qubit operation's unitary (or duration, or operand order) does
    /// not match the calibrated basis gate of the edge it acts on, or a
    /// local operation is not unitary.
    IllegalBasisGate,
    /// A two-qubit operation acts on a pair of qubits that is not coupled
    /// in the device topology.
    UncoupledPair,
    /// An operation addresses a qubit outside the device register.
    QubitOutOfRange,
    /// A two-qubit block's Cartan coordinate does not lie at the edge's
    /// calibrated canonical-chamber point (or is outside the chamber).
    NonCanonicalWeyl,
    /// The reported schedule disagrees with the one recomputed from the
    /// operation list (counts, busy times, duration or windows).
    ScheduleInconsistent,
    /// A qubit's active window exceeds the configured coherence budget.
    CoherenceExceeded,
    /// The lowered program is not unitarily equivalent to its synthesis
    /// source within tolerance.
    UnitaryMismatch,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::IllegalBasisGate => "illegal-basis-gate",
            ViolationKind::UncoupledPair => "uncoupled-pair",
            ViolationKind::QubitOutOfRange => "qubit-out-of-range",
            ViolationKind::NonCanonicalWeyl => "non-canonical-weyl",
            ViolationKind::ScheduleInconsistent => "schedule-inconsistent",
            ViolationKind::CoherenceExceeded => "coherence-exceeded",
            ViolationKind::UnitaryMismatch => "unitary-mismatch",
        };
        write!(f, "{s}")
    }
}

/// One broken invariant, located as precisely as the check allows.
#[derive(Clone, Debug)]
pub struct Violation {
    /// What was broken.
    pub kind: ViolationKind,
    /// The check that found it (see [`Verifier::name`](crate::Verifier::name)).
    pub check: &'static str,
    /// Index into the verified operation list, when the violation is
    /// attributable to a single operation.
    pub op_index: Option<usize>,
    /// Qubits involved, when attributable.
    pub qubits: Vec<usize>,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}/{}]", self.check, self.kind)?;
        if let Some(i) = self.op_index {
            write!(f, " op {i}")?;
        }
        if !self.qubits.is_empty() {
            let qs: Vec<String> = self.qubits.iter().map(|q| format!("q{q}")).collect();
            write!(f, " on {}", qs.join(","))?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The outcome of running a [`VerifierSuite`](crate::VerifierSuite).
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Names of the checks that ran, in order.
    pub checks_run: Vec<&'static str>,
    /// All violations found, in check order.
    pub violations: Vec<Violation>,
    /// Checks that were skipped (with the reason), e.g. unitary
    /// equivalence on a device too large to simulate.
    pub skipped: Vec<(&'static str, String)>,
}

impl VerifyReport {
    /// True when no check reported a violation.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violations of one kind.
    pub fn count(&self, kind: ViolationKind) -> usize {
        self.violations.iter().filter(|v| v.kind == kind).count()
    }

    /// True when at least one violation of `kind` was reported.
    pub fn has(&self, kind: ViolationKind) -> bool {
        self.violations.iter().any(|v| v.kind == kind)
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "verification: {} checks, {} violations",
            self.checks_run.len(),
            self.violations.len()
        )?;
        for v in &self.violations {
            write!(f, "\n  {v}")?;
        }
        for (name, why) in &self.skipped {
            write!(f, "\n  [{name}] skipped: {why}")?;
        }
        Ok(())
    }
}

/// When the pipeline runs its inter-pass verification.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VerifyLevel {
    /// Never verify.
    Off,
    /// Verify only in builds with debug assertions (the default): tests
    /// and debug builds pay the cost, release traffic does not.
    #[default]
    Debug,
    /// Always verify, including release builds — the mode a production
    /// service should run so no unverified circuit is ever returned.
    Full,
}

impl VerifyLevel {
    /// Whether verification actually runs in the current build.
    pub fn is_enabled(self) -> bool {
        match self {
            VerifyLevel::Off => false,
            VerifyLevel::Debug => cfg!(debug_assertions),
            VerifyLevel::Full => true,
        }
    }

    /// Parses a level name: `off`, `debug` or `full` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Some(VerifyLevel::Off),
            "debug" => Some(VerifyLevel::Debug),
            "full" => Some(VerifyLevel::Full),
            _ => None,
        }
    }

    /// The level set through the `NSB_VERIFY` environment variable, or
    /// the default ([`VerifyLevel::Debug`]) when unset or unrecognized.
    /// Read once per process; pipelines and the compile service use this
    /// as their starting level, so CI can force `NSB_VERIFY=full` across
    /// an entire (release) test run.
    pub fn from_env() -> Self {
        use std::sync::OnceLock;
        static LEVEL: OnceLock<VerifyLevel> = OnceLock::new();
        *LEVEL.get_or_init(|| {
            std::env::var("NSB_VERIFY")
                .ok()
                .and_then(|s| Self::parse(&s))
                .unwrap_or_default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(kind: ViolationKind) -> Violation {
        Violation {
            kind,
            check: "test",
            op_index: Some(3),
            qubits: vec![0, 1],
            message: "broken".into(),
        }
    }

    #[test]
    fn report_counts_and_display() {
        let mut r = VerifyReport::default();
        assert!(r.is_clean());
        r.checks_run.push("a");
        r.violations.push(v(ViolationKind::UncoupledPair));
        r.violations.push(v(ViolationKind::UncoupledPair));
        r.violations.push(v(ViolationKind::UnitaryMismatch));
        assert!(!r.is_clean());
        assert_eq!(r.count(ViolationKind::UncoupledPair), 2);
        assert!(r.has(ViolationKind::UnitaryMismatch));
        assert!(!r.has(ViolationKind::IllegalBasisGate));
        let text = r.to_string();
        assert!(text.contains("3 violations"));
        assert!(text.contains("uncoupled-pair"));
        assert!(text.contains("op 3 on q0,q1"));
    }

    #[test]
    fn level_gating() {
        assert!(!VerifyLevel::Off.is_enabled());
        assert!(VerifyLevel::Full.is_enabled());
        assert_eq!(VerifyLevel::Debug.is_enabled(), cfg!(debug_assertions));
        assert_eq!(VerifyLevel::default(), VerifyLevel::Debug);
    }

    #[test]
    fn level_parsing() {
        assert_eq!(VerifyLevel::parse("off"), Some(VerifyLevel::Off));
        assert_eq!(VerifyLevel::parse("Debug"), Some(VerifyLevel::Debug));
        assert_eq!(VerifyLevel::parse("FULL"), Some(VerifyLevel::Full));
        assert_eq!(VerifyLevel::parse("sometimes"), None);
    }
}
