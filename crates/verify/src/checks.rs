//! The standard battery of static checks.
//!
//! Each check is a [`Verifier`] that re-derives one invariant from first
//! principles — device calibration tables, the Weyl chamber geometry, an
//! independent schedule recomputation, statevector simulation — and reports
//! every place the compiled program breaks it.

use crate::report::{VerifyReport, Violation, ViolationKind};
use crate::suite::Verifier;
use crate::target::{ScheduleFacts, VerifyOp, VerifyTarget};
use nsb_circuit::{Circuit, Gate, StateVector};
use nsb_weyl::kak_vector;

/// Tolerances and limits shared by all checks.
#[derive(Clone, Copy, Debug)]
pub struct VerifyConfig {
    /// Element-wise tolerance for unitarity and gate-matrix comparisons.
    pub unitary_tol: f64,
    /// Tolerance for Cartan-coordinate class comparisons.
    pub coord_tol: f64,
    /// Absolute tolerance (ns) for schedule times and durations.
    pub schedule_tol: f64,
    /// Maximum tolerated probe-state infidelity `1 - |<expected|actual>|`
    /// for the unitary-equivalence check. Basis gates are characterized
    /// through a simulated tomography noise model, so exact equivalence is
    /// not expected; the default admits that calibration noise.
    pub overlap_tol: f64,
    /// Largest register the equivalence check will simulate; bigger
    /// targets skip the check (recorded in the report).
    pub max_sim_qubits: usize,
    /// Fraction of the device coherence time a qubit's active window may
    /// occupy before the schedule check flags it.
    pub coherence_budget: f64,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            unitary_tol: 1e-6,
            coord_tol: 1e-6,
            schedule_tol: 1e-6,
            overlap_tol: 1e-2,
            max_sim_qubits: 12,
            coherence_budget: 1.0,
        }
    }
}

fn violation(
    check: &'static str,
    kind: ViolationKind,
    op_index: Option<usize>,
    qubits: Vec<usize>,
    message: String,
) -> Violation {
    Violation {
        kind,
        check,
        op_index,
        qubits,
        message,
    }
}

/// Check 1: every operation applies a gate that is legal for its wire(s) —
/// locals must be unitary, two-qubit ops must apply exactly the calibrated
/// basis gate of their edge, in the calibrated tensor order, with the
/// calibrated duration.
pub struct BasisLegality;

impl Verifier for BasisLegality {
    fn name(&self) -> &'static str {
        "basis-legality"
    }

    fn verify(&self, target: &VerifyTarget, config: &VerifyConfig, report: &mut VerifyReport) {
        let topo = target.device.topology();
        for (i, op) in target.ops.iter().enumerate() {
            match op {
                VerifyOp::Local { qubit, unitary } => {
                    if !unitary.is_unitary(config.unitary_tol) {
                        report.violations.push(violation(
                            self.name(),
                            ViolationKind::IllegalBasisGate,
                            Some(i),
                            vec![*qubit],
                            "local gate is not unitary".into(),
                        ));
                    }
                }
                VerifyOp::TwoQubit {
                    qubits,
                    duration,
                    unitary,
                    ..
                } => {
                    let Some(edge) = topo.edge_index(qubits.0, qubits.1) else {
                        // Connectivity check reports uncoupled pairs.
                        continue;
                    };
                    let cal = &target.device.edges()[edge];
                    let basis = cal.basis(target.strategy);
                    if *qubits != cal.gate_order {
                        report.violations.push(violation(
                            self.name(),
                            ViolationKind::IllegalBasisGate,
                            Some(i),
                            vec![qubits.0, qubits.1],
                            format!(
                                "operands ({},{}) not in calibrated tensor order ({},{})",
                                qubits.0, qubits.1, cal.gate_order.0, cal.gate_order.1
                            ),
                        ));
                        continue;
                    }
                    if (*duration - basis.duration).abs() > config.schedule_tol {
                        report.violations.push(violation(
                            self.name(),
                            ViolationKind::IllegalBasisGate,
                            Some(i),
                            vec![qubits.0, qubits.1],
                            format!(
                                "duration {duration} ns differs from calibrated {} ns",
                                basis.duration
                            ),
                        ));
                    }
                    if !unitary.approx_eq_up_to_phase(&basis.gate, config.unitary_tol) {
                        report.violations.push(violation(
                            self.name(),
                            ViolationKind::IllegalBasisGate,
                            Some(i),
                            vec![qubits.0, qubits.1],
                            format!(
                                "gate is not the calibrated {} basis gate of this edge \
                                 (phase distance {:.3e})",
                                target.strategy,
                                unitary.phase_distance(&basis.gate)
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Check 2: every operation addresses qubits inside the register, and
/// every two-qubit operation — in the ops and in the routed source — acts
/// on a coupled pair of the device topology.
pub struct ConnectivityLegality;

impl Verifier for ConnectivityLegality {
    fn name(&self) -> &'static str {
        "connectivity-legality"
    }

    fn verify(&self, target: &VerifyTarget, _config: &VerifyConfig, report: &mut VerifyReport) {
        let topo = target.device.topology();
        let n = topo.n_qubits();
        for (i, op) in target.ops.iter().enumerate() {
            let qs = op.qubits();
            if let Some(&q) = qs.iter().find(|&&q| q >= n) {
                report.violations.push(violation(
                    self.name(),
                    ViolationKind::QubitOutOfRange,
                    Some(i),
                    qs.clone(),
                    format!("qubit {q} outside the {n}-qubit register"),
                ));
                continue;
            }
            if let VerifyOp::TwoQubit { qubits, .. } = op {
                if qubits.0 == qubits.1 || !topo.are_adjacent(qubits.0, qubits.1) {
                    report.violations.push(violation(
                        self.name(),
                        ViolationKind::UncoupledPair,
                        Some(i),
                        vec![qubits.0, qubits.1],
                        format!("qubits {},{} are not coupled", qubits.0, qubits.1),
                    ));
                }
            }
        }
        if let Some(source) = target.source {
            for (i, op) in source.ops().iter().enumerate() {
                if op.gate.arity() == 2 {
                    let (a, b) = (op.qubits[0], op.qubits[1]);
                    if a >= n || b >= n || a == b || !topo.are_adjacent(a, b) {
                        report.violations.push(violation(
                            self.name(),
                            ViolationKind::UncoupledPair,
                            Some(i),
                            vec![a, b],
                            format!("routed source op {i} acts on uncoupled pair {a},{b}"),
                        ));
                    }
                }
            }
        }
    }
}

/// Check 3: every two-qubit block's Cartan coordinate is canonical and in
/// the calibrated basis gate's local-equivalence class — a block whose
/// class differs from the edge's basis could never have been produced by a
/// legal lowering, and a claimed coordinate outside the Weyl chamber means
/// the producer's bookkeeping is broken.
pub struct WeylCanonicality;

impl Verifier for WeylCanonicality {
    fn name(&self) -> &'static str {
        "weyl-canonicality"
    }

    fn verify(&self, target: &VerifyTarget, config: &VerifyConfig, report: &mut VerifyReport) {
        let topo = target.device.topology();
        for (i, op) in target.ops.iter().enumerate() {
            let VerifyOp::TwoQubit {
                qubits,
                unitary,
                coord,
                ..
            } = op
            else {
                continue;
            };
            if !unitary.is_unitary(config.unitary_tol) {
                report.violations.push(violation(
                    self.name(),
                    ViolationKind::NonCanonicalWeyl,
                    Some(i),
                    vec![qubits.0, qubits.1],
                    "two-qubit block is not unitary; no Cartan coordinate exists".into(),
                ));
                continue;
            }
            let actual = kak_vector(unitary);
            if let Some(claimed) = coord {
                if !claimed.in_chamber(config.coord_tol) {
                    report.violations.push(violation(
                        self.name(),
                        ViolationKind::NonCanonicalWeyl,
                        Some(i),
                        vec![qubits.0, qubits.1],
                        format!("claimed coordinate {claimed} lies outside the Weyl chamber"),
                    ));
                } else if !claimed.class_eq(actual, config.coord_tol) {
                    report.violations.push(violation(
                        self.name(),
                        ViolationKind::NonCanonicalWeyl,
                        Some(i),
                        vec![qubits.0, qubits.1],
                        format!("claimed coordinate {claimed} differs from recomputed {actual}"),
                    ));
                }
            }
            if let Some(edge) = topo.edge_index(qubits.0, qubits.1) {
                let basis = target.device.edges()[edge].basis(target.strategy);
                if !actual.class_eq(basis.coord, config.coord_tol) {
                    report.violations.push(violation(
                        self.name(),
                        ViolationKind::NonCanonicalWeyl,
                        Some(i),
                        vec![qubits.0, qubits.1],
                        format!(
                            "block class {actual} differs from the edge's calibrated \
                             basis class {}",
                            basis.coord
                        ),
                    ));
                }
            }
        }
    }
}

/// Check 4: the claimed schedule is consistent with an independent
/// ASAP/ALAP recomputation from the operation list, its times are sane
/// (non-negative, ordered, within the total duration), and every qubit's
/// active window fits inside the coherence budget.
pub struct ScheduleSanity;

impl ScheduleSanity {
    /// Recomputes schedule facts from the op list: forward ASAP pass for
    /// end times, backward ALAP pass for start slack — the same contract
    /// the compiler's scheduler documents, derived independently here.
    pub fn recompute(ops: &[VerifyOp], n_qubits: usize, t_1q: f64) -> ScheduleFacts {
        let mut avail = vec![0.0f64; n_qubits];
        let mut t_end: Vec<Option<f64>> = vec![None; n_qubits];
        let mut busy = vec![0.0f64; n_qubits];
        let mut entangler_count = 0;
        let mut local_count = 0;
        let mut duration = 0.0f64;
        for op in ops {
            let dur = op.duration(t_1q);
            match op {
                VerifyOp::Local { .. } => local_count += 1,
                VerifyOp::TwoQubit { .. } => entangler_count += 1,
            }
            let qs = op.qubits();
            if qs.iter().any(|&q| q >= n_qubits) {
                // Out-of-range ops are reported by the connectivity check;
                // skip them here so indexing stays safe.
                continue;
            }
            let start = qs.iter().map(|&q| avail[q]).fold(0.0f64, f64::max);
            let end = start + dur;
            for &q in &qs {
                avail[q] = end;
                t_end[q] = Some(end);
                busy[q] += dur;
            }
            duration = duration.max(end);
        }
        let mut avail_rev = vec![0.0f64; n_qubits];
        let mut t_start: Vec<Option<f64>> = vec![None; n_qubits];
        for op in ops.iter().rev() {
            let dur = op.duration(t_1q);
            let qs = op.qubits();
            if qs.iter().any(|&q| q >= n_qubits) {
                continue;
            }
            let start_rev = qs.iter().map(|&q| avail_rev[q]).fold(0.0f64, f64::max);
            let end_rev = start_rev + dur;
            for &q in &qs {
                avail_rev[q] = end_rev;
                t_start[q] = Some(duration - end_rev);
            }
        }
        let windows = (0..n_qubits)
            .map(|q| match (t_start[q], t_end[q]) {
                (Some(ti), Some(tf)) => Some((ti, tf)),
                _ => None,
            })
            .collect();
        ScheduleFacts {
            duration,
            windows,
            busy,
            entangler_count,
            local_count,
        }
    }
}

impl Verifier for ScheduleSanity {
    fn name(&self) -> &'static str {
        "schedule-sanity"
    }

    fn verify(&self, target: &VerifyTarget, config: &VerifyConfig, report: &mut VerifyReport) {
        let n = target.device.topology().n_qubits();
        let t_1q = target.device.config().t_1q;
        let tol = config.schedule_tol;
        let recomputed = Self::recompute(&target.ops, n, t_1q);
        let push = |report: &mut VerifyReport, kind, qubits: Vec<usize>, message: String| {
            report
                .violations
                .push(violation("schedule-sanity", kind, None, qubits, message));
        };
        // Intrinsic sanity and coherence budget on the effective facts
        // (the claimed schedule when provided, otherwise the recomputation).
        let facts = target.schedule.as_ref().unwrap_or(&recomputed);
        let budget = config.coherence_budget * target.device.config().coherence_time;
        for q in 0..facts.windows.len().min(facts.busy.len()) {
            let busy = facts.busy[q];
            if busy < -tol {
                push(
                    report,
                    ViolationKind::ScheduleInconsistent,
                    vec![q],
                    format!("negative busy time {busy} ns"),
                );
            }
            let Some((ti, tf)) = facts.windows[q] else {
                if busy > tol {
                    push(
                        report,
                        ViolationKind::ScheduleInconsistent,
                        vec![q],
                        format!("busy for {busy} ns but has no active window"),
                    );
                }
                continue;
            };
            // A window pairs an ALAP start with an ASAP end, so `ti > tf`
            // is legal for a qubit with slack (busy time then dominates);
            // both endpoints must still lie inside [0, duration].
            if ti < -tol || tf < -tol || ti > facts.duration + tol || tf > facts.duration + tol {
                push(
                    report,
                    ViolationKind::ScheduleInconsistent,
                    vec![q],
                    format!(
                        "window [{ti}, {tf}] ns extends outside the total \
                         duration {} ns",
                        facts.duration
                    ),
                );
            }
            let window_length = (tf - ti).max(busy);
            if window_length > budget + tol {
                push(
                    report,
                    ViolationKind::CoherenceExceeded,
                    vec![q],
                    format!(
                        "active window {window_length} ns exceeds the coherence \
                         budget {budget} ns"
                    ),
                );
            }
        }
        // Consistency of the claimed schedule against the recomputation.
        let Some(claimed) = &target.schedule else {
            return;
        };
        if claimed.entangler_count != recomputed.entangler_count
            || claimed.local_count != recomputed.local_count
        {
            push(
                report,
                ViolationKind::ScheduleInconsistent,
                Vec::new(),
                format!(
                    "claimed {} entanglers / {} locals, ops contain {} / {}",
                    claimed.entangler_count,
                    claimed.local_count,
                    recomputed.entangler_count,
                    recomputed.local_count
                ),
            );
        }
        if (claimed.duration - recomputed.duration).abs() > tol {
            push(
                report,
                ViolationKind::ScheduleInconsistent,
                Vec::new(),
                format!(
                    "claimed duration {} ns, recomputed {} ns",
                    claimed.duration, recomputed.duration
                ),
            );
        }
        if claimed.windows.len() != recomputed.windows.len() {
            push(
                report,
                ViolationKind::ScheduleInconsistent,
                Vec::new(),
                format!(
                    "claimed schedule covers {} qubits, device has {}",
                    claimed.windows.len(),
                    recomputed.windows.len()
                ),
            );
            return;
        }
        for q in 0..n {
            if (claimed.busy[q] - recomputed.busy[q]).abs() > tol {
                push(
                    report,
                    ViolationKind::ScheduleInconsistent,
                    vec![q],
                    format!(
                        "claimed busy {} ns, recomputed {} ns",
                        claimed.busy[q], recomputed.busy[q]
                    ),
                );
            }
            match (claimed.windows[q], recomputed.windows[q]) {
                (None, None) => {}
                (Some((ci, cf)), Some((ri, rf))) => {
                    if (ci - ri).abs() > tol || (cf - rf).abs() > tol {
                        push(
                            report,
                            ViolationKind::ScheduleInconsistent,
                            vec![q],
                            format!("claimed window [{ci}, {cf}] ns, recomputed [{ri}, {rf}] ns"),
                        );
                    }
                }
                (c, r) => {
                    push(
                        report,
                        ViolationKind::ScheduleInconsistent,
                        vec![q],
                        format!("claimed window {c:?}, recomputed {r:?}"),
                    );
                }
            }
        }
    }
}

/// Check 5: the operation list is unitarily equivalent to the routed
/// source circuit, established by statevector simulation over a fixed
/// family of probe states (skipped — and recorded as skipped — when no
/// source is attached or the register is too large to simulate).
pub struct UnitaryEquivalence;

impl UnitaryEquivalence {
    /// A small, fixed family of state-preparation circuits exercising
    /// basis states, superpositions and phases.
    fn probe_circuits(n: usize) -> Vec<Circuit> {
        let mut probes = Vec::new();
        probes.push(Circuit::new(n)); // |0...0>
        let mut ones = Circuit::new(n);
        for q in 0..n {
            ones.push(Gate::X, &[q]);
        }
        probes.push(ones);
        let mut plus = Circuit::new(n);
        for q in 0..n {
            plus.push(Gate::H, &[q]);
            if q % 2 == 0 {
                plus.push(Gate::T, &[q]);
            }
        }
        probes.push(plus);
        let mut mixed = Circuit::new(n);
        for q in 0..n {
            match q % 3 {
                0 => {
                    mixed.push(Gate::H, &[q]);
                }
                1 => {
                    mixed.push(Gate::X, &[q]);
                }
                _ => {
                    mixed.push(Gate::H, &[q]);
                    mixed.push(Gate::S, &[q]);
                }
            }
        }
        probes.push(mixed);
        probes
    }
}

impl Verifier for UnitaryEquivalence {
    fn name(&self) -> &'static str {
        "unitary-equivalence"
    }

    fn verify(&self, target: &VerifyTarget, config: &VerifyConfig, report: &mut VerifyReport) {
        let Some(source) = target.source else {
            report
                .skipped
                .push((self.name(), "no source circuit attached".into()));
            return;
        };
        let n = target.device.topology().n_qubits();
        if n > config.max_sim_qubits {
            report.skipped.push((
                self.name(),
                format!(
                    "{n}-qubit register exceeds the {}-qubit simulation limit",
                    { config.max_sim_qubits }
                ),
            ));
            return;
        }
        if source.n_qubits() != n
            || target.ops.iter().any(|op| {
                let qs = op.qubits();
                qs.iter().any(|&q| q >= n) || (qs.len() == 2 && qs[0] == qs[1])
            })
        {
            report.skipped.push((
                self.name(),
                "register mismatch or malformed ops (reported by other checks)".into(),
            ));
            return;
        }
        let mut compiled = Circuit::new(n);
        for op in &target.ops {
            match op {
                VerifyOp::Local { qubit, unitary } => {
                    compiled.push(Gate::Unitary1(*unitary), &[*qubit]);
                }
                VerifyOp::TwoQubit {
                    qubits, unitary, ..
                } => {
                    compiled.push(Gate::Unitary2(Box::new(*unitary)), &[qubits.0, qubits.1]);
                }
            }
        }
        let mut min_overlap = f64::INFINITY;
        for probe in Self::probe_circuits(n) {
            let mut expected = StateVector::zero(n);
            expected.apply_circuit(&probe);
            expected.apply_circuit(source);
            let mut actual = StateVector::zero(n);
            actual.apply_circuit(&probe);
            actual.apply_circuit(&compiled);
            min_overlap = min_overlap.min(expected.overlap(&actual));
        }
        if min_overlap < 1.0 - config.overlap_tol {
            report.violations.push(violation(
                self.name(),
                ViolationKind::UnitaryMismatch,
                None,
                Vec::new(),
                format!(
                    "minimum probe-state overlap {min_overlap:.6} below the \
                     {:.6} floor",
                    1.0 - config.overlap_tol
                ),
            ));
        }
    }
}
