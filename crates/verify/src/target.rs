//! The verifier's view of a compiled program.
//!
//! `nsb-verify` deliberately does not depend on `nsb-compiler`: it defines
//! its own minimal operation view ([`VerifyOp`]) and schedule summary
//! ([`ScheduleFacts`]) so the checks re-derive every property from first
//! principles instead of trusting compiler internals. The compiler converts
//! its lowered IR into this view at the verification boundary.

use nsb_circuit::Circuit;
use nsb_device::{BasisStrategy, Device};
use nsb_math::{Mat2, Mat4};
use nsb_weyl::WeylCoord;

/// One hardware-level operation as seen by the verifier.
// The Mat4 payload dominates the size, but these ops are built in bulk at
// the verification boundary and iterated once — boxing would trade one
// predictable inline copy for a per-op allocation.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum VerifyOp {
    /// A merged single-qubit gate.
    Local {
        /// Physical qubit.
        qubit: usize,
        /// The gate's unitary.
        unitary: Mat2,
    },
    /// A native two-qubit (basis-gate) application.
    TwoQubit {
        /// Physical qubits in the calibrated tensor order of the edge.
        qubits: (usize, usize),
        /// Entangling pulse duration (ns).
        duration: f64,
        /// The applied unitary.
        unitary: Mat4,
        /// The Cartan coordinate the producer claims for this block, if it
        /// tracked one; checked against the canonical chamber and against
        /// the coordinate recomputed from `unitary`.
        coord: Option<WeylCoord>,
    },
}

impl VerifyOp {
    /// Qubits the operation acts on.
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            VerifyOp::Local { qubit, .. } => vec![*qubit],
            VerifyOp::TwoQubit { qubits, .. } => vec![qubits.0, qubits.1],
        }
    }

    /// Duration of the operation given the device's local-gate time.
    pub fn duration(&self, t_1q: f64) -> f64 {
        match self {
            VerifyOp::Local { .. } => t_1q,
            VerifyOp::TwoQubit { duration, .. } => *duration,
        }
    }
}

/// Claimed schedule properties of a compiled program, to be validated
/// against an independent recomputation from the operation list.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleFacts {
    /// Total circuit duration (ns).
    pub duration: f64,
    /// Per-qubit active windows `(t_i, t_f)`; `None` for idle qubits.
    pub windows: Vec<Option<(f64, f64)>>,
    /// Per-qubit total busy time (ns).
    pub busy: Vec<f64>,
    /// Number of two-qubit (entangler) applications.
    pub entangler_count: usize,
    /// Number of merged local gates.
    pub local_count: usize,
}

/// Everything a [`Verifier`](crate::Verifier) may inspect.
pub struct VerifyTarget<'a> {
    /// The calibrated device the program claims to run on.
    pub device: &'a Device,
    /// The basis-gate strategy the program was lowered for.
    pub strategy: BasisStrategy,
    /// The hardware-level operation list.
    pub ops: Vec<VerifyOp>,
    /// The routed (physical-register) source circuit the ops should be
    /// unitarily equivalent to, when available.
    pub source: Option<&'a Circuit>,
    /// The schedule the producer claims for the ops, when available.
    pub schedule: Option<ScheduleFacts>,
}

impl<'a> VerifyTarget<'a> {
    /// A target with no source circuit and no claimed schedule; checks that
    /// need them are skipped (and say so in the report).
    pub fn new(device: &'a Device, strategy: BasisStrategy, ops: Vec<VerifyOp>) -> Self {
        VerifyTarget {
            device,
            strategy,
            ops,
            source: None,
            schedule: None,
        }
    }

    /// Attaches the routed source circuit, enabling the unitary-equivalence
    /// check.
    pub fn with_source(mut self, source: &'a Circuit) -> Self {
        self.source = Some(source);
        self
    }

    /// Attaches the producer's claimed schedule, enabling the
    /// schedule-consistency half of the schedule-sanity check.
    pub fn with_schedule(mut self, schedule: ScheduleFacts) -> Self {
        self.schedule = Some(schedule);
        self
    }
}
