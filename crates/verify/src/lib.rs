//! Static circuit-IR verification for the nonstandard-basis toolchain.
//!
//! The compiler's premise — each edge gets its *own* basis gate — means a
//! lowered program is correct only if every gate on every wire is legal for
//! that wire's calibration, routing respected the coupling map, each
//! two-qubit block stayed in its calibrated Weyl class, the schedule adds
//! up, and the whole program is still unitarily equivalent to its source.
//! This crate re-derives each of those invariants from first principles and
//! reports every violation, instead of trusting the pipeline that produced
//! the program.
//!
//! The design is deliberately pass-like: a [`Verifier`] is one check, a
//! [`VerifierSuite`] is an ordered battery of them, and a [`VerifyTarget`]
//! is the program under inspection expressed in the verifier's own minimal
//! IR ([`VerifyOp`]) so no compiler internals are trusted. The compiler
//! converts its lowered output at the verification boundary and runs the
//! suite between passes; the compile service surfaces violation counts in
//! its metrics.
//!
//! # Examples
//!
//! ```
//! use nsb_verify::{VerifierSuite, VerifyTarget, VerifyOp, ViolationKind};
//! use nsb_device::{BasisStrategy, Device, DeviceConfig};
//!
//! let device = Device::build(2, 1, DeviceConfig::fast_test()).expect("device");
//! let basis = device.edges()[0].basis(BasisStrategy::Criterion2);
//! let ops = vec![VerifyOp::TwoQubit {
//!     qubits: device.edges()[0].gate_order,
//!     duration: basis.duration,
//!     unitary: basis.gate,
//!     coord: Some(basis.coord),
//! }];
//! let suite = VerifierSuite::standard();
//! let report = suite.run(&VerifyTarget::new(&device, BasisStrategy::Criterion2, ops));
//! assert!(report.is_clean(), "{report}");
//! assert!(!report.has(ViolationKind::IllegalBasisGate));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checks;
mod report;
mod suite;
mod target;

pub use checks::{
    BasisLegality, ConnectivityLegality, ScheduleSanity, UnitaryEquivalence, VerifyConfig,
    WeylCanonicality,
};
pub use report::{VerifyLevel, VerifyReport, Violation, ViolationKind};
pub use suite::{Verifier, VerifierSuite};
pub use target::{ScheduleFacts, VerifyOp, VerifyTarget};
