//! Hand-built bad circuits, one per check: each is rejected with exactly
//! the violation kind the check documents, and the corresponding good
//! circuit passes the same check.

use nsb_circuit::{generators, Circuit, Gate};
use nsb_compiler::{to_schedule_facts, to_verify_ops, Transpiler, VerifyLevel};
use nsb_device::{BasisStrategy, Device, DeviceConfig};
use nsb_math::Mat2;
use nsb_verify::{
    ScheduleFacts, ScheduleSanity, VerifierSuite, VerifyConfig, VerifyOp, VerifyTarget,
    ViolationKind,
};
use nsb_weyl::WeylCoord;
use std::sync::OnceLock;

const STRATEGY: BasisStrategy = BasisStrategy::Criterion2;

fn device() -> &'static Device {
    static DEVICE: OnceLock<Device> = OnceLock::new();
    DEVICE.get_or_init(|| Device::build(3, 2, DeviceConfig::fast_test()).expect("test device"))
}

/// A two-qubit op applying exactly the calibrated basis gate of edge 0.
fn legal_op() -> VerifyOp {
    let cal = &device().edges()[0];
    let basis = cal.basis(STRATEGY);
    VerifyOp::TwoQubit {
        qubits: cal.gate_order,
        duration: basis.duration,
        unitary: basis.gate,
        coord: Some(basis.coord),
    }
}

/// Some pair of distinct qubits that is NOT coupled on the grid.
fn uncoupled_pair() -> (usize, usize) {
    let topo = device().topology();
    let n = topo.n_qubits();
    for a in 0..n {
        for b in (a + 1)..n {
            if !topo.are_adjacent(a, b) {
                return (a, b);
            }
        }
    }
    panic!("3x2 grid must contain a non-adjacent pair");
}

fn run_structural(ops: Vec<VerifyOp>) -> nsb_verify::VerifyReport {
    VerifierSuite::structural().run(&VerifyTarget::new(device(), STRATEGY, ops))
}

// ---- basis legality ------------------------------------------------------

#[test]
fn legal_basis_op_passes() {
    let report = run_structural(vec![legal_op()]);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn wrong_gate_on_edge_is_rejected() {
    let VerifyOp::TwoQubit {
        qubits, duration, ..
    } = legal_op()
    else {
        unreachable!()
    };
    // CNOT is not any edge's calibrated (nonstandard) basis gate.
    let op = VerifyOp::TwoQubit {
        qubits,
        duration,
        unitary: nsb_math::Mat4::cnot(),
        coord: None,
    };
    let report = run_structural(vec![op]);
    assert!(report.has(ViolationKind::IllegalBasisGate), "{report}");
}

#[test]
fn wrong_duration_is_rejected() {
    let VerifyOp::TwoQubit {
        qubits,
        duration,
        unitary,
        coord,
    } = legal_op()
    else {
        unreachable!()
    };
    let op = VerifyOp::TwoQubit {
        qubits,
        duration: duration + 5.0,
        unitary,
        coord,
    };
    let report = run_structural(vec![op]);
    assert!(report.has(ViolationKind::IllegalBasisGate), "{report}");
}

#[test]
fn reversed_operand_order_is_rejected() {
    let VerifyOp::TwoQubit {
        qubits,
        duration,
        unitary,
        coord,
    } = legal_op()
    else {
        unreachable!()
    };
    let op = VerifyOp::TwoQubit {
        qubits: (qubits.1, qubits.0),
        duration,
        unitary,
        coord,
    };
    let report = run_structural(vec![op]);
    assert!(report.has(ViolationKind::IllegalBasisGate), "{report}");
}

#[test]
fn non_unitary_local_is_rejected() {
    let op = VerifyOp::Local {
        qubit: 0,
        unitary: Mat2::h().scale(nsb_math::Complex64::real(0.5)),
    };
    let report = run_structural(vec![op]);
    assert!(report.has(ViolationKind::IllegalBasisGate), "{report}");
}

// ---- connectivity --------------------------------------------------------

#[test]
fn uncoupled_pair_in_ops_is_rejected() {
    let (a, b) = uncoupled_pair();
    let op = VerifyOp::TwoQubit {
        qubits: (a, b),
        duration: 10.0,
        unitary: nsb_math::Mat4::cnot(),
        coord: None,
    };
    let report = run_structural(vec![op]);
    assert!(report.has(ViolationKind::UncoupledPair), "{report}");
}

#[test]
fn uncoupled_pair_in_source_circuit_is_rejected() {
    // The post-routing checkpoint: a "routed" circuit that still holds a
    // two-qubit gate on an uncoupled pair must be caught before lowering.
    let (a, b) = uncoupled_pair();
    let n = device().topology().n_qubits();
    let mut source = Circuit::new(n);
    source.push(Gate::Cx, &[a, b]);
    let target = VerifyTarget::new(device(), STRATEGY, Vec::new()).with_source(&source);
    let report = VerifierSuite::structural().run(&target);
    assert!(report.has(ViolationKind::UncoupledPair), "{report}");
}

#[test]
fn out_of_range_qubit_is_rejected() {
    let op = VerifyOp::Local {
        qubit: device().topology().n_qubits() + 7,
        unitary: Mat2::h(),
    };
    let report = run_structural(vec![op]);
    assert!(report.has(ViolationKind::QubitOutOfRange), "{report}");
}

// ---- Weyl canonicality ----------------------------------------------------

#[test]
fn claimed_coord_outside_chamber_is_rejected() {
    let VerifyOp::TwoQubit {
        qubits,
        duration,
        unitary,
        ..
    } = legal_op()
    else {
        unreachable!()
    };
    // y > x violates the chamber ordering; no canonical point looks like
    // this, so the producer's bookkeeping must be broken.
    let bad = WeylCoord::new(0.1, 0.3, 0.05);
    assert!(!bad.in_chamber(1e-9));
    let op = VerifyOp::TwoQubit {
        qubits,
        duration,
        unitary,
        coord: Some(bad),
    };
    let report = run_structural(vec![op]);
    assert!(report.has(ViolationKind::NonCanonicalWeyl), "{report}");
}

#[test]
fn claimed_coord_of_wrong_class_is_rejected() {
    let VerifyOp::TwoQubit {
        qubits,
        duration,
        unitary,
        ..
    } = legal_op()
    else {
        unreachable!()
    };
    // Canonical (in-chamber) but the wrong class: the basis gate of an
    // edge is entangling, so it is never the identity.
    let op = VerifyOp::TwoQubit {
        qubits,
        duration,
        unitary,
        coord: Some(WeylCoord::IDENTITY),
    };
    let report = run_structural(vec![op]);
    assert!(report.has(ViolationKind::NonCanonicalWeyl), "{report}");
}

#[test]
fn block_class_differing_from_edge_basis_is_rejected() {
    let VerifyOp::TwoQubit {
        qubits, duration, ..
    } = legal_op()
    else {
        unreachable!()
    };
    // A SWAP block can never be one application of a supremacy-style
    // basis gate (calibration rejects SWAP-class bases).
    let op = VerifyOp::TwoQubit {
        qubits,
        duration,
        unitary: nsb_math::Mat4::swap(),
        coord: None,
    };
    let report = run_structural(vec![op]);
    assert!(report.has(ViolationKind::NonCanonicalWeyl), "{report}");
}

// ---- schedule sanity -------------------------------------------------------

#[test]
fn consistent_schedule_passes() {
    let ops = vec![legal_op(), legal_op()];
    let n = device().topology().n_qubits();
    let facts = ScheduleSanity::recompute(&ops, n, device().config().t_1q);
    let target = VerifyTarget::new(device(), STRATEGY, ops).with_schedule(facts);
    let report = VerifierSuite::structural().run(&target);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn overlapping_schedule_is_rejected() {
    // Two serial applications on the same edge claimed to run
    // concurrently: the claimed duration/windows say both start at t=0,
    // the recomputation proves they cannot.
    let ops = vec![legal_op(), legal_op()];
    let n = device().topology().n_qubits();
    let honest = ScheduleSanity::recompute(&ops, n, device().config().t_1q);
    let one_gate = honest.duration / 2.0;
    let mut windows = vec![None; n];
    let mut busy = vec![0.0; n];
    let cal_order = device().edges()[0].gate_order;
    for q in [cal_order.0, cal_order.1] {
        windows[q] = Some((0.0, one_gate));
        busy[q] = honest.busy[q];
    }
    let overlapping = ScheduleFacts {
        duration: one_gate,
        windows,
        busy,
        entangler_count: 2,
        local_count: 0,
    };
    let target = VerifyTarget::new(device(), STRATEGY, ops).with_schedule(overlapping);
    let report = VerifierSuite::structural().run(&target);
    assert!(report.has(ViolationKind::ScheduleInconsistent), "{report}");
}

#[test]
fn wrong_op_counts_are_rejected() {
    let ops = vec![legal_op()];
    let n = device().topology().n_qubits();
    let mut facts = ScheduleSanity::recompute(&ops, n, device().config().t_1q);
    facts.entangler_count = 3;
    let target = VerifyTarget::new(device(), STRATEGY, ops).with_schedule(facts);
    let report = VerifierSuite::structural().run(&target);
    assert!(report.has(ViolationKind::ScheduleInconsistent), "{report}");
}

#[test]
fn coherence_budget_violation_is_rejected() {
    let config = VerifyConfig {
        // One basis-gate application already exceeds this budget.
        coherence_budget: 1e-9,
        ..VerifyConfig::default()
    };
    let report = VerifierSuite::structural()
        .with_config(config)
        .run(&VerifyTarget::new(device(), STRATEGY, vec![legal_op()]));
    assert!(report.has(ViolationKind::CoherenceExceeded), "{report}");
}

// ---- unitary equivalence ----------------------------------------------------

#[test]
fn equivalent_program_passes_and_perturbed_program_fails() {
    let n = device().topology().n_qubits();
    let cal = &device().edges()[0];
    let basis = cal.basis(STRATEGY);

    // Source: exactly the basis gate, on the physical register.
    let mut source = Circuit::new(n);
    source.push(
        Gate::Unitary2(Box::new(basis.gate)),
        &[cal.gate_order.0, cal.gate_order.1],
    );

    let target = VerifyTarget::new(device(), STRATEGY, vec![legal_op()]).with_source(&source);
    let report = VerifierSuite::standard().run(&target);
    assert!(report.is_clean(), "{report}");

    // Perturbed: same program plus one stray (perfectly legal) X gate —
    // every structural check still passes, only equivalence can catch it.
    let perturbed_ops = vec![
        legal_op(),
        VerifyOp::Local {
            qubit: 0,
            unitary: Mat2::x(),
        },
    ];
    let target = VerifyTarget::new(device(), STRATEGY, perturbed_ops).with_source(&source);
    let report = VerifierSuite::standard().run(&target);
    assert!(report.has(ViolationKind::UnitaryMismatch), "{report}");
    assert_eq!(report.violations.len(), 1, "{report}");
}

#[test]
fn equivalence_skips_without_source_and_records_it() {
    let report =
        VerifierSuite::standard().run(&VerifyTarget::new(device(), STRATEGY, vec![legal_op()]));
    assert!(report.is_clean(), "{report}");
    assert!(
        report
            .skipped
            .iter()
            .any(|(name, _)| *name == "unitary-equivalence"),
        "{report}"
    );
}

// ---- whole-pipeline integration ---------------------------------------------

#[test]
fn transpiler_output_passes_full_verification() {
    for strategy in BasisStrategy::ALL {
        let compiled = Transpiler::new(device(), strategy)
            .with_verification(VerifyLevel::Full)
            .compile(&generators::qft(4, true))
            .expect("verified compile");
        // Re-verify the compiled artifact from outside the pipeline.
        let ops = to_verify_ops(&compiled.ops, device(), strategy);
        let target = VerifyTarget::new(device(), strategy, ops)
            .with_schedule(to_schedule_facts(&compiled.schedule));
        let report = VerifierSuite::standard().run(&target);
        assert!(report.is_clean(), "{strategy}: {report}");
    }
}
