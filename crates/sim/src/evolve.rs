//! Time evolution of the driven unit cell and extraction of the effective
//! two-qubit gate (paper Section VIII-B, step 4).
//!
//! The propagator is integrated with a Strang splitting exploiting the
//! structure `H(t) = H0 + s(t) N_c` with *diagonal* `N_c`:
//!
//! ```text
//! U(t+dt, t) ~ E0 D(s(t + dt/2)) E0,   E0 = exp(-i H0 dt/2)
//! ```
//!
//! `E0` is precomputed once, `D` is a diagonal phase, so each step costs a
//! diagonal scale plus one dense matmul (the two half-steps of consecutive
//! steps are merged). Local error is O(dt^3).
//!
//! The drive uses a flat-top envelope with `sin^2` rise/fall of
//! [`DriveParams::ramp`] ns: the rise is part of the shared prefix
//! evolution, and each sampled gate gets its own short fall segment, so a
//! gate of reported duration `t` corresponds to the pulse
//! `rise(ramp) + flat + fall(ramp)` ending at `t`.

use crate::hamiltonian::UnitCellHamiltonian;
use crate::params::DriveParams;
use crate::spectrum::DressedFrame;
use nsb_math::{expm_i_h_t, polar_unitary4, Complex64, DMat, Mat4};

/// Default integrator step (ns); chosen so accumulated phase error over a
/// few hundred ns is well below the decoherence scale.
pub const DEFAULT_DT: f64 = 0.01;

/// A snapshot of the evolving gate at one sample time.
#[derive(Clone, Debug)]
pub struct GateSnapshot {
    /// Entangling pulse duration (ns), including the envelope fall.
    pub t: f64,
    /// The effective two-qubit gate: rotating-frame projected propagator,
    /// polar-projected to the nearest unitary.
    pub gate: Mat4,
    /// Leakage out of the computational subspace,
    /// `1 - ||projection||_F^2 / 4`.
    pub leakage: f64,
}

/// Precomputed stepping machinery for one unit cell.
struct Stepper<'a> {
    h: &'a UnitCellHamiltonian,
    e_half: DMat,
    e_full: DMat,
    dt: f64,
}

impl<'a> Stepper<'a> {
    fn new(h: &'a UnitCellHamiltonian, dt: f64) -> Self {
        let e_half = expm_i_h_t(&h.h_static, dt / 2.0);
        let e_full = &e_half * &e_half;
        Stepper {
            h,
            e_half,
            e_full,
            dt,
        }
    }

    /// Advances `u` by `steps` Strang steps starting at time `*t`, with the
    /// drive strength given by `s_of_t`.
    fn advance(&self, t: &mut f64, u: DMat, steps: usize, s_of_t: impl Fn(f64) -> f64) -> DMat {
        if steps == 0 {
            return u;
        }
        let dim = u.rows();
        let dt = self.dt;
        let mut acc = &self.e_half * &u;
        for k in 0..steps {
            let tm = *t + (k as f64 + 0.5) * dt;
            let s = s_of_t(tm);
            for r in 0..dim {
                let nc = self.h.n_c[(r, r)].re;
                let phase = Complex64::cis(-s * nc * dt);
                for c in 0..dim {
                    acc[(r, c)] *= phase;
                }
            }
            if k + 1 < steps {
                acc = &self.e_full * &acc;
            } else {
                acc = &self.e_half * &acc;
            }
        }
        *t += steps as f64 * dt;
        acc
    }
}

/// Integrates the driven evolution and samples the effective gate every
/// `sample_every` ns up to `t_max` ns.
///
/// The gate is reported in the rotating frame of the dressed qubit
/// frequencies, so an undriven cell yields gates that stay near the
/// identity (up to residual ZZ).
pub fn evolve_and_sample(
    h: &UnitCellHamiltonian,
    frame: &DressedFrame,
    drive: &DriveParams,
    t_max: f64,
    sample_every: f64,
    dt: f64,
) -> Vec<GateSnapshot> {
    let stepper = Stepper::new(h, dt);
    let steps_per_sample = (sample_every / dt).round().max(1.0) as usize;
    let n_samples = (t_max / sample_every).round() as usize;
    let fall_steps = (drive.ramp / dt).round() as usize;
    let rise = |tm: f64| drive.delta * drive.rise_envelope(tm) * (drive.omega_d * tm).sin();
    let mut u = DMat::identity(h.dim);
    let mut snapshots = Vec::with_capacity(n_samples);
    let mut t = 0.0f64;
    for _ in 0..n_samples {
        u = stepper.advance(&mut t, u, steps_per_sample, rise);
        // Append the envelope fall: the pulse for THIS gate candidate ends
        // here, ramping the drive down over `ramp` ns, phase-continuous
        // with the shared flat-top prefix evolution.
        let gate_u = if fall_steps > 0 {
            let t_flat_end = t;
            let fall = |tm: f64| {
                let tau = tm - t_flat_end;
                let env = drive.rise_envelope(drive.ramp - tau);
                drive.delta * env * (drive.omega_d * tm).sin()
            };
            let mut t_local = t_flat_end;
            stepper.advance(&mut t_local, u.clone(), fall_steps, fall)
        } else {
            u.clone()
        };
        let total_t = t + if fall_steps > 0 { drive.ramp } else { 0.0 };
        snapshots.push(snapshot(frame, &gate_u, total_t));
    }
    snapshots
}

fn snapshot(frame: &DressedFrame, u: &DMat, t: f64) -> GateSnapshot {
    let raw = frame.project(u);
    let norm2 = raw.norm() * raw.norm();
    let leakage = (1.0 - norm2 / 4.0).max(0.0);
    // Rotating frame: remove the dressed single-qubit phase evolution.
    let e00 = frame.energies[0];
    let wa = frame.omega_a_dressed();
    let wb = frame.omega_b_dressed();
    let mut rotated = Mat4::zero();
    for i in 0..4 {
        let (na, nb) = ((i >> 1) & 1, i & 1);
        let phase = Complex64::cis((e00 + na as f64 * wa + nb as f64 * wb) * t);
        for j in 0..4 {
            rotated[(i, j)] = phase * raw.at(i, j);
        }
    }
    let gate = polar_unitary4(&rotated);
    GateSnapshot { t, gate, leakage }
}

/// Convenience wrapper: evolve with the default step size.
pub fn evolve_gate_trajectory(
    h: &UnitCellHamiltonian,
    frame: &DressedFrame,
    drive: &DriveParams,
    t_max: f64,
    sample_every: f64,
) -> Vec<GateSnapshot> {
    evolve_and_sample(h, frame, drive, t_max, sample_every, DEFAULT_DT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ghz, UnitCellParams};
    use crate::spectrum::zero_zz_bias;

    fn small_setup() -> (UnitCellHamiltonian, DressedFrame, UnitCellParams) {
        let (p, _) = zero_zz_bias(&UnitCellParams::default());
        let h = UnitCellHamiltonian::new(&p);
        let f = DressedFrame::from_hamiltonian(&h);
        (h, f, p)
    }

    #[test]
    fn undriven_evolution_stays_near_identity() {
        let (h, f, _p) = small_setup();
        let drive = DriveParams {
            delta: 0.0,
            omega_d: ghz(2.0),
            ramp: 0.0,
        };
        let snaps = evolve_and_sample(&h, &f, &drive, 10.0, 5.0, 0.02);
        for s in &snaps {
            assert!(s.leakage < 1e-6, "leakage {}", s.leakage);
            assert!(
                s.gate.approx_eq_up_to_phase(&Mat4::identity(), 1e-3),
                "gate at t={} drifted: {}",
                s.t,
                s.gate
            );
        }
    }

    #[test]
    fn propagator_samples_are_unitary() {
        let (h, f, p) = small_setup();
        let drive = DriveParams {
            delta: p.modulation_depth(0.02),
            omega_d: f.omega_b_dressed() - f.omega_a_dressed(),
            ramp: 1.0,
        };
        let snaps = evolve_and_sample(&h, &f, &drive, 8.0, 2.0, 0.02);
        assert_eq!(snaps.len(), 4);
        for s in &snaps {
            assert!(s.gate.is_unitary(1e-9));
            assert!(s.leakage >= 0.0 && s.leakage < 0.2);
        }
    }

    #[test]
    fn splitting_matches_brute_force_integration() {
        // Compare against direct midpoint exponentials of the full H(t),
        // using a rectangular pulse so both paths see the same drive.
        let (h, f, p) = small_setup();
        let drive = DriveParams {
            delta: p.modulation_depth(0.04),
            omega_d: f.omega_b_dressed() - f.omega_a_dressed(),
            ramp: 0.0,
        };
        let t_end = 2.0;
        let dt = 0.005;
        let snaps = evolve_and_sample(&h, &f, &drive, t_end, t_end, dt);
        let steps = (t_end / dt).round() as usize;
        let mut u = DMat::identity(h.dim);
        for k in 0..steps {
            let tm = (k as f64 + 0.5) * dt;
            let hm = h.at_time(drive.delta, drive.omega_d, tm);
            u = &expm_i_h_t(&hm, dt) * &u;
        }
        let brute = snapshot(&f, &u, t_end);
        assert!(
            snaps[0].gate.phase_distance(&brute.gate) < 1e-3,
            "splitting deviates: {}",
            snaps[0].gate.phase_distance(&brute.gate)
        );
    }

    #[test]
    fn ramp_reduces_leakage() {
        let (h, f, p) = small_setup();
        let omega_d = f.omega_b_dressed() - f.omega_a_dressed();
        let delta = p.modulation_depth(0.04);
        let rect = DriveParams {
            delta,
            omega_d,
            ramp: 0.0,
        };
        let smooth = DriveParams {
            delta,
            omega_d,
            ramp: 1.5,
        };
        let mean_leak = |d: &DriveParams| {
            let snaps = evolve_and_sample(&h, &f, d, 16.0, 2.0, 0.01);
            snaps.iter().map(|s| s.leakage).sum::<f64>() / snaps.len() as f64
        };
        let lr = mean_leak(&rect);
        let ls = mean_leak(&smooth);
        assert!(
            ls < lr * 0.9,
            "flat-top ramp should suppress leakage: rect {lr:.2e} vs smooth {ls:.2e}"
        );
    }

    #[test]
    fn drive_generates_entanglement_over_time() {
        let (h, f, p) = small_setup();
        let drive = DriveParams {
            delta: p.modulation_depth(0.04),
            omega_d: f.omega_b_dressed() - f.omega_a_dressed(),
            ramp: 1.5,
        };
        let snaps = evolve_and_sample(&h, &f, &drive, 30.0, 1.0, 0.01);
        let max_ep = snaps
            .iter()
            .map(|s| nsb_weyl::entangling_power(nsb_weyl::kak_vector(&s.gate)))
            .fold(0.0f64, f64::max);
        assert!(
            max_ep > 0.05,
            "strong drive should entangle within 30 ns, max ep {max_ep}"
        );
    }
}
