//! Time evolution of the driven unit cell and extraction of the effective
//! two-qubit gate (paper Section VIII-B, step 4).
//!
//! The propagator is integrated with a Strang splitting exploiting the
//! structure `H(t) = H0 + s(t) N_c` with *diagonal* `N_c`:
//!
//! ```text
//! U(t+dt, t) ~ E0 D(s(t + dt/2)) E0,   E0 = exp(-i H0 dt/2)
//! ```
//!
//! `E0` is precomputed once, `D` is a diagonal phase, so each step costs a
//! diagonal scale plus one dense matmul (the two half-steps of consecutive
//! steps are merged). Local error is O(dt^3).
//!
//! Only the projected gate `P^dagger U P` is ever observed, so the
//! integrator evolves the `dim x 4` block `Y = U P` (with `P` the dressed
//! computational basis columns) instead of the full propagator: each step's
//! matmul shrinks by `dim / 4`, and all step storage is preallocated and
//! ping-ponged via [`DMat::mul_into`] so the hot loop is allocation-free.
//!
//! The drive uses a flat-top envelope with `sin^2` rise/fall of
//! [`DriveParams::ramp`] ns: the rise is part of the shared prefix
//! evolution, and each sampled gate gets its own short fall segment, so a
//! gate of reported duration `t` corresponds to the pulse
//! `rise(ramp) + flat + fall(ramp)` ending at `t`.

use crate::hamiltonian::UnitCellHamiltonian;
use crate::params::DriveParams;
use crate::spectrum::DressedFrame;
use nsb_math::{expm_i_h_t, polar_unitary4, Complex64, DMat, Mat4};

/// Default integrator step (ns); chosen so accumulated phase error over a
/// few hundred ns is well below the decoherence scale.
pub const DEFAULT_DT: f64 = 0.01;

/// A snapshot of the evolving gate at one sample time.
#[derive(Clone, Debug)]
pub struct GateSnapshot {
    /// Entangling pulse duration (ns), including the envelope fall.
    pub t: f64,
    /// The effective two-qubit gate: rotating-frame projected propagator,
    /// polar-projected to the nearest unitary.
    pub gate: Mat4,
    /// Leakage out of the computational subspace,
    /// `1 - ||projection||_F^2 / 4`.
    pub leakage: f64,
}

/// Precomputed stepping machinery for one unit cell.
struct Stepper {
    e_half: DMat,
    e_full: DMat,
    dt: f64,
    /// Row -> index into `nc_values` for the diagonal drive operator.
    nc_index: Vec<usize>,
    /// The few distinct values on the `N_c` diagonal (one per coupler
    /// level), so per-step phases are computed once per value, not per row.
    nc_values: Vec<f64>,
}

impl Stepper {
    fn new(h: &UnitCellHamiltonian, dt: f64) -> Self {
        let e_half = expm_i_h_t(&h.h_static, dt / 2.0);
        let e_full = &e_half * &e_half;
        let mut nc_values: Vec<f64> = Vec::new();
        let mut nc_index = Vec::with_capacity(h.dim);
        for r in 0..h.dim {
            let nc = h.n_c[(r, r)].re;
            let idx = match nc_values.iter().position(|&v| v == nc) {
                Some(i) => i,
                None => {
                    nc_values.push(nc);
                    nc_values.len() - 1
                }
            };
            nc_index.push(idx);
        }
        Stepper {
            e_half,
            e_full,
            dt,
            nc_index,
            nc_values,
        }
    }

    /// Advances the block `u` in place by `steps` Strang steps starting at
    /// time `*t`, with the drive strength given by `s_of_t`.
    ///
    /// `u` may have any number of columns (the full propagator or a
    /// projected block); `scratch` must have the same shape. The step loop
    /// allocates nothing: matmuls ping-pong between `u` and `scratch`.
    fn advance(
        &self,
        t: &mut f64,
        u: &mut DMat,
        scratch: &mut DMat,
        phases: &mut [Complex64],
        steps: usize,
        s_of_t: impl Fn(f64) -> f64,
    ) {
        if steps == 0 {
            return;
        }
        assert_eq!(phases.len(), self.nc_values.len());
        let dt = self.dt;
        let cols = u.cols();
        self.e_half.mul_into(u, scratch);
        std::mem::swap(u, scratch);
        for k in 0..steps {
            let tm = *t + (k as f64 + 0.5) * dt;
            let s = s_of_t(tm);
            for (slot, &v) in phases.iter_mut().zip(&self.nc_values) {
                *slot = Complex64::cis(-s * v * dt);
            }
            for (r, &idx) in self.nc_index.iter().enumerate() {
                // Exact-zero coupling rows are a no-op phase; ±0.0 both
                // classify as Zero, matching the old `== 0.0` fast path.
                if self.nc_values[idx].classify() == std::num::FpCategory::Zero {
                    continue;
                }
                let phase = phases[idx];
                for c in 0..cols {
                    u[(r, c)] *= phase;
                }
            }
            let step_op = if k + 1 < steps {
                &self.e_full
            } else {
                &self.e_half
            };
            step_op.mul_into(u, scratch);
            std::mem::swap(u, scratch);
        }
        *t += steps as f64 * dt;
    }
}

/// Integrates the driven evolution and samples the effective gate every
/// `sample_every` ns up to `t_max` ns.
///
/// The gate is reported in the rotating frame of the dressed qubit
/// frequencies, so an undriven cell yields gates that stay near the
/// identity (up to residual ZZ).
pub fn evolve_and_sample(
    h: &UnitCellHamiltonian,
    frame: &DressedFrame,
    drive: &DriveParams,
    t_max: f64,
    sample_every: f64,
    dt: f64,
) -> Vec<GateSnapshot> {
    let stepper = Stepper::new(h, dt);
    let steps_per_sample = (sample_every / dt).round().max(1.0) as usize;
    let n_samples = (t_max / sample_every).round() as usize;
    let fall_steps = (drive.ramp / dt).round() as usize;
    let rise = |tm: f64| drive.delta * drive.rise_envelope(tm) * (drive.omega_d * tm).sin();
    // Evolve the projected block Y = U P; all step storage lives here and
    // is reused across samples.
    let mut y = frame.basis_columns();
    let mut scratch = DMat::zeros(h.dim, 4);
    let mut fall_y = DMat::zeros(h.dim, 4);
    let mut phases = vec![Complex64::ZERO; stepper.nc_values.len()];
    let mut snapshots = Vec::with_capacity(n_samples);
    let mut t = 0.0f64;
    for _ in 0..n_samples {
        stepper.advance(
            &mut t,
            &mut y,
            &mut scratch,
            &mut phases,
            steps_per_sample,
            rise,
        );
        let total_t = t + if fall_steps > 0 { drive.ramp } else { 0.0 };
        // Append the envelope fall: the pulse for THIS gate candidate ends
        // here, ramping the drive down over `ramp` ns, phase-continuous
        // with the shared flat-top prefix evolution.
        if fall_steps > 0 {
            let t_flat_end = t;
            let fall = |tm: f64| {
                let tau = tm - t_flat_end;
                let env = drive.rise_envelope(drive.ramp - tau);
                drive.delta * env * (drive.omega_d * tm).sin()
            };
            fall_y.copy_from(&y);
            let mut t_local = t_flat_end;
            stepper.advance(
                &mut t_local,
                &mut fall_y,
                &mut scratch,
                &mut phases,
                fall_steps,
                fall,
            );
            snapshots.push(snapshot_cols(frame, &fall_y, total_t));
        } else {
            snapshots.push(snapshot_cols(frame, &y, total_t));
        }
    }
    snapshots
}

fn snapshot_cols(frame: &DressedFrame, y: &DMat, t: f64) -> GateSnapshot {
    let raw = frame.project_cols(y);
    let norm2 = raw.norm() * raw.norm();
    let leakage = (1.0 - norm2 / 4.0).max(0.0);
    // Rotating frame: remove the dressed single-qubit phase evolution.
    let e00 = frame.energies[0];
    let wa = frame.omega_a_dressed();
    let wb = frame.omega_b_dressed();
    let mut rotated = Mat4::zero();
    for i in 0..4 {
        let (na, nb) = ((i >> 1) & 1, i & 1);
        let phase = Complex64::cis((e00 + na as f64 * wa + nb as f64 * wb) * t);
        for j in 0..4 {
            rotated[(i, j)] = phase * raw.at(i, j);
        }
    }
    let gate = polar_unitary4(&rotated);
    GateSnapshot { t, gate, leakage }
}

/// Convenience wrapper: evolve with the default step size.
pub fn evolve_gate_trajectory(
    h: &UnitCellHamiltonian,
    frame: &DressedFrame,
    drive: &DriveParams,
    t_max: f64,
    sample_every: f64,
) -> Vec<GateSnapshot> {
    evolve_and_sample(h, frame, drive, t_max, sample_every, DEFAULT_DT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ghz, UnitCellParams};
    use crate::spectrum::zero_zz_bias;

    fn small_setup() -> (UnitCellHamiltonian, DressedFrame, UnitCellParams) {
        let (p, _) = zero_zz_bias(&UnitCellParams::default());
        let h = UnitCellHamiltonian::new(&p);
        let f = DressedFrame::from_hamiltonian(&h);
        (h, f, p)
    }

    #[test]
    fn undriven_evolution_stays_near_identity() {
        let (h, f, _p) = small_setup();
        let drive = DriveParams {
            delta: 0.0,
            omega_d: ghz(2.0),
            ramp: 0.0,
        };
        let snaps = evolve_and_sample(&h, &f, &drive, 10.0, 5.0, 0.02);
        for s in &snaps {
            assert!(s.leakage < 1e-6, "leakage {}", s.leakage);
            assert!(
                s.gate.approx_eq_up_to_phase(&Mat4::identity(), 1e-3),
                "gate at t={} drifted: {}",
                s.t,
                s.gate
            );
        }
    }

    #[test]
    fn propagator_samples_are_unitary() {
        let (h, f, p) = small_setup();
        let drive = DriveParams {
            delta: p.modulation_depth(0.02),
            omega_d: f.omega_b_dressed() - f.omega_a_dressed(),
            ramp: 1.0,
        };
        let snaps = evolve_and_sample(&h, &f, &drive, 8.0, 2.0, 0.02);
        assert_eq!(snaps.len(), 4);
        for s in &snaps {
            assert!(s.gate.is_unitary(1e-9));
            assert!(s.leakage >= 0.0 && s.leakage < 0.2);
        }
    }

    #[test]
    fn splitting_matches_brute_force_integration() {
        // Compare against direct midpoint exponentials of the full H(t),
        // using a rectangular pulse so both paths see the same drive.
        let (h, f, p) = small_setup();
        let drive = DriveParams {
            delta: p.modulation_depth(0.04),
            omega_d: f.omega_b_dressed() - f.omega_a_dressed(),
            ramp: 0.0,
        };
        let t_end = 2.0;
        let dt = 0.005;
        let snaps = evolve_and_sample(&h, &f, &drive, t_end, t_end, dt);
        let steps = (t_end / dt).round() as usize;
        let mut u = DMat::identity(h.dim);
        for k in 0..steps {
            let tm = (k as f64 + 0.5) * dt;
            let hm = h.at_time(drive.delta, drive.omega_d, tm);
            u = &expm_i_h_t(&hm, dt) * &u;
        }
        let brute = snapshot_cols(&f, &(&u * &f.basis_columns()), t_end);
        assert!(
            snaps[0].gate.phase_distance(&brute.gate) < 1e-3,
            "splitting deviates: {}",
            snaps[0].gate.phase_distance(&brute.gate)
        );
    }

    #[test]
    fn ramp_reduces_leakage() {
        let (h, f, p) = small_setup();
        let omega_d = f.omega_b_dressed() - f.omega_a_dressed();
        let delta = p.modulation_depth(0.04);
        let rect = DriveParams {
            delta,
            omega_d,
            ramp: 0.0,
        };
        let smooth = DriveParams {
            delta,
            omega_d,
            ramp: 1.5,
        };
        let mean_leak = |d: &DriveParams| {
            let snaps = evolve_and_sample(&h, &f, d, 16.0, 2.0, 0.01);
            snaps.iter().map(|s| s.leakage).sum::<f64>() / snaps.len() as f64
        };
        let lr = mean_leak(&rect);
        let ls = mean_leak(&smooth);
        assert!(
            ls < lr * 0.9,
            "flat-top ramp should suppress leakage: rect {lr:.2e} vs smooth {ls:.2e}"
        );
    }

    #[test]
    fn drive_generates_entanglement_over_time() {
        let (h, f, p) = small_setup();
        let drive = DriveParams {
            delta: p.modulation_depth(0.04),
            omega_d: f.omega_b_dressed() - f.omega_a_dressed(),
            ramp: 1.5,
        };
        let snaps = evolve_and_sample(&h, &f, &drive, 30.0, 1.0, 0.01);
        let max_ep = snaps
            .iter()
            .map(|s| nsb_weyl::entangling_power(nsb_weyl::kak_vector(&s.gate)))
            .fold(0.0f64, f64::max);
        assert!(
            max_ep > 0.05,
            "strong drive should entangle within 30 ns, max ep {max_ep}"
        );
    }
}
