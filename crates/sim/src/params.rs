//! Physical parameters of the case-study entangling architecture: two
//! fixed-frequency, far-detuned transmons coupled through a flux-tunable
//! coupler (paper Section VIII-A, Appendix A; architecture of Petrescu et
//! al. [7] / Guinn et al. [43]).

/// Converts a frequency in GHz to an angular frequency in rad/ns.
pub fn ghz(f: f64) -> f64 {
    2.0 * std::f64::consts::PI * f
}

/// Parameters of one qubit-coupler-qubit unit cell.
///
/// All frequencies are angular (rad/ns); times are in ns. Qubit `a` is the
/// lower-frequency transmon, `b` the higher-frequency one; the two are
/// detuned by ~2 GHz so single-qubit control crosstalk is negligible and
/// decoherence dominates the error budget.
#[derive(Clone, Copy, Debug)]
pub struct UnitCellParams {
    /// Qubit a frequency.
    pub omega_a: f64,
    /// Qubit b frequency.
    pub omega_b: f64,
    /// Qubit a anharmonicity (negative for transmons).
    pub alpha_a: f64,
    /// Qubit b anharmonicity.
    pub alpha_b: f64,
    /// Coupler DC bias frequency (tuned to the zero-ZZ point).
    pub omega_c: f64,
    /// Coupler anharmonicity (positive for the generalized flux qubit,
    /// balancing the transmons' negative anharmonicity to create the
    /// zero-ZZ bias point).
    pub alpha_c: f64,
    /// Direct qubit-qubit capacitive coupling.
    pub g_ab: f64,
    /// Qubit b to coupler coupling.
    pub g_bc: f64,
    /// Coupler to qubit a coupling.
    pub g_ca: f64,
    /// Flux-to-frequency drive transfer: the coupler-frequency modulation
    /// depth per unit of drive amplitude `xi` (in units of Phi_0):
    /// `delta = drive_transfer * xi`.
    pub drive_transfer: f64,
    /// Number of levels retained per mode in simulation (3 captures the
    /// leakage and anharmonicity physics; 2 is available for fast tests).
    pub levels: usize,
}

impl Default for UnitCellParams {
    fn default() -> Self {
        UnitCellParams {
            omega_a: ghz(4.3),
            omega_b: ghz(6.3),
            alpha_a: ghz(-0.25),
            alpha_b: ghz(-0.25),
            omega_c: ghz(5.30),
            alpha_c: ghz(0.60),
            g_ab: ghz(0.012),
            g_bc: ghz(0.40),
            g_ca: ghz(0.40),
            drive_transfer: ghz(3.9),
            levels: 3,
        }
    }
}

impl UnitCellParams {
    /// Builds a unit cell for the given bare qubit frequencies (GHz),
    /// keeping the default anharmonicities and couplings. The coupler
    /// starts midway between the qubits; call the zero-ZZ search to bias
    /// it properly.
    pub fn with_qubit_frequencies(f_a_ghz: f64, f_b_ghz: f64) -> Self {
        let (lo, hi) = if f_a_ghz <= f_b_ghz {
            (f_a_ghz, f_b_ghz)
        } else {
            (f_b_ghz, f_a_ghz)
        };
        UnitCellParams {
            omega_a: ghz(lo),
            omega_b: ghz(hi),
            omega_c: ghz((lo + hi) / 2.0),
            ..UnitCellParams::default()
        }
    }

    /// Hilbert-space dimension (`levels^3`).
    pub fn dim(&self) -> usize {
        self.levels.pow(3)
    }

    /// Qubit-qubit detuning `|omega_b - omega_a|`.
    pub fn detuning(&self) -> f64 {
        (self.omega_b - self.omega_a).abs()
    }

    /// Coupler modulation depth for a drive amplitude `xi` (in Phi_0).
    pub fn modulation_depth(&self, xi: f64) -> f64 {
        self.drive_transfer * xi
    }
}

/// The entangling drive applied to the coupler:
/// `omega_c(t) = omega_c + delta * env(t) * sin(omega_d * t)`.
///
/// The envelope is flat-top with a `sin^2` rise of `ramp` ns and a matching
/// fall — the "flat top with a short rise time" option the paper describes
/// for ~10 ns gates. Setting `ramp = 0` recovers the hard rectangular
/// pulse, at the price of extra non-adiabatic coupler leakage.
#[derive(Clone, Copy, Debug)]
pub struct DriveParams {
    /// Modulation depth `delta` (rad/ns).
    pub delta: f64,
    /// Drive angular frequency `omega_d` (rad/ns).
    pub omega_d: f64,
    /// Rise/fall time of the flat-top envelope (ns).
    pub ramp: f64,
}

impl DriveParams {
    /// Envelope value during the rise (and mirrored during the fall).
    pub fn rise_envelope(&self, t: f64) -> f64 {
        if self.ramp <= 0.0 || t >= self.ramp {
            1.0
        } else if t <= 0.0 {
            0.0
        } else {
            let s = (std::f64::consts::FRAC_PI_2 * t / self.ramp).sin();
            s * s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_far_detuned() {
        let p = UnitCellParams::default();
        assert!((p.detuning() - ghz(2.0)).abs() < 1e-9);
        assert!(p.alpha_a < 0.0 && p.alpha_c > 0.0);
        assert_eq!(p.dim(), 27);
    }

    #[test]
    fn frequency_constructor_orders_qubits() {
        let p = UnitCellParams::with_qubit_frequencies(6.1, 4.2);
        assert!(p.omega_a < p.omega_b);
        assert!((p.omega_c - ghz(5.15)).abs() < 1e-9);
    }

    #[test]
    fn modulation_scales_linearly() {
        let p = UnitCellParams::default();
        let d1 = p.modulation_depth(0.005);
        let d2 = p.modulation_depth(0.04);
        assert!((d2 / d1 - 8.0).abs() < 1e-12);
    }
}
