//! # nsb-sim
//!
//! Pulse-level simulator of the case-study entangling architecture from
//! *Let Each Quantum Bit Choose Its Basis Gates* (MICRO 2022): two
//! fixed-frequency, far-detuned transmons coupled by a flux-tunable coupler
//! (Appendix A Hamiltonian), AC-modulated at the qubit difference frequency
//! to generate parametric iSWAP-like interactions.
//!
//! The simulation protocol follows Section VIII-B:
//!
//! 1. assemble the three-mode Hamiltonian ([`UnitCellHamiltonian`]);
//! 2. bias the coupler to the zero-ZZ point ([`zero_zz_bias`]);
//! 3. calibrate the drive frequency for maximal population swapping
//!    ([`PreparedCell::calibrate_drive`]);
//! 4. evolve the propagator, project onto the dressed computational
//!    subspace, and plot the gate in the Weyl chamber
//!    ([`PreparedCell::trajectory`]).
//!
//! Weak drives (`xi <= 0.01 Phi_0`) yield standard XY trajectories; strong
//! drives (`xi ~ 0.04 Phi_0`) are ~8x faster and deviate into nonstandard
//! territory — exactly the trade the paper's compiler exploits.
//!
//! ```no_run
//! use nsb_sim::{PreparedCell, TrajectoryConfig, UnitCellParams};
//!
//! let cell = PreparedCell::prepare(&UnitCellParams::default());
//! let traj = cell.trajectory(0.04, &TrajectoryConfig::default());
//! println!("first PE at {:?} ns", traj.first_perfect_entangler().map(|p| p.duration));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod evolve;
mod hamiltonian;
mod params;
mod spectrum;
mod trajectory;

pub use evolve::{evolve_and_sample, evolve_gate_trajectory, GateSnapshot, DEFAULT_DT};
pub use hamiltonian::{destroy, UnitCellHamiltonian};
pub use params::{ghz, DriveParams, UnitCellParams};
pub use spectrum::{static_zz_at, zero_zz_bias, DressedFrame};
pub use trajectory::{
    max_entangling_power, trajectory_speed, CartanTrajectory, PreparedCell, TrajectoryConfig,
    TrajectoryPoint,
};
