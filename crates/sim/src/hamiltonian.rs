//! Construction of the three-mode Hamiltonian of Appendix A:
//!
//! ```text
//! H(t) = H_a + H_b + H_c(t) + H_g
//! H_x  = omega_x x^dag x + alpha_x/2 x^dag x^dag x x
//! H_g  = -( g_ab a^dag b + g_bc b^dag c + g_ca c^dag a + h.c. )
//! H_c(t) has omega_c(t) = omega_c + delta sin(omega_d t)
//! ```
//!
//! Mode ordering is `(a, b, c)` with basis index `(n_a * L + n_b) * L + n_c`
//! for `L` levels per mode.

use crate::params::UnitCellParams;
use nsb_math::{Complex64, DMat};

/// Pre-assembled operator pieces of the unit-cell Hamiltonian, so the
/// time-dependent part is a cheap diagonal update.
#[derive(Clone, Debug)]
pub struct UnitCellHamiltonian {
    /// The static Hamiltonian at the DC bias point (drive off).
    pub h_static: DMat,
    /// Coupler number operator `c^dag c` (diagonal), the operator the
    /// drive modulates.
    pub n_c: DMat,
    /// Hilbert-space dimension.
    pub dim: usize,
    levels: usize,
}

impl UnitCellHamiltonian {
    /// Assembles the Hamiltonian pieces for the given parameters.
    pub fn new(params: &UnitCellParams) -> Self {
        let l = params.levels;
        let a = destroy(l);
        let ident = DMat::identity(l);
        // Mode embeddings: a (x) 1 (x) 1, 1 (x) b (x) 1, 1 (x) 1 (x) c.
        let op_a = a.kron(&ident).kron(&ident);
        let op_b = ident.kron(&a).kron(&ident);
        let op_c = ident.kron(&ident).kron(&a);
        let mode_h = |op: &DMat, omega: f64, alpha: f64| -> DMat {
            let n = &op.adjoint() * op;
            let n2 = &(&op.adjoint() * &op.adjoint()) * &(op * op);
            &n.scale(Complex64::real(omega)) + &n2.scale(Complex64::real(alpha / 2.0))
        };
        let mut h = mode_h(&op_a, params.omega_a, params.alpha_a);
        h = &h + &mode_h(&op_b, params.omega_b, params.alpha_b);
        h = &h + &mode_h(&op_c, params.omega_c, params.alpha_c);
        let couple = |x: &DMat, y: &DMat, g: f64| -> DMat {
            let xy = &x.adjoint() * y;
            let yx = &y.adjoint() * x;
            (&xy + &yx).scale(Complex64::real(-g))
        };
        h = &h + &couple(&op_a, &op_b, params.g_ab);
        h = &h + &couple(&op_b, &op_c, params.g_bc);
        h = &h + &couple(&op_c, &op_a, params.g_ca);
        let n_c = &op_c.adjoint() * &op_c;
        UnitCellHamiltonian {
            h_static: h,
            n_c,
            dim: l * l * l,
            levels: l,
        }
    }

    /// Levels per mode.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Index of the bare product state `|n_a, n_b, n_c>`.
    ///
    /// # Panics
    ///
    /// Panics when any occupation is out of range.
    pub fn bare_index(&self, n_a: usize, n_b: usize, n_c: usize) -> usize {
        assert!(n_a < self.levels && n_b < self.levels && n_c < self.levels);
        (n_a * self.levels + n_b) * self.levels + n_c
    }

    /// The Hamiltonian at time `t` under a drive, `H_static + delta
    /// sin(omega_d t) n_c`.
    pub fn at_time(&self, delta: f64, omega_d: f64, t: f64) -> DMat {
        let s = delta * (omega_d * t).sin();
        &self.h_static + &self.n_c.scale(Complex64::real(s))
    }
}

/// Bosonic annihilation operator truncated to `levels` levels.
pub fn destroy(levels: usize) -> DMat {
    let mut m = DMat::zeros(levels, levels);
    for n in 1..levels {
        m[(n - 1, n)] = Complex64::real((n as f64).sqrt());
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ghz;

    #[test]
    fn destroy_operator_algebra() {
        let a = destroy(3);
        let n = &a.adjoint() * &a;
        // n|1> = 1|1>, n|2> = 2|2>
        assert!((n[(1, 1)].re - 1.0).abs() < 1e-15);
        assert!((n[(2, 2)].re - 2.0).abs() < 1e-15);
        // [a, a^dag] = 1 on the non-truncated block.
        let comm = &(&a * &a.adjoint()) - &(&a.adjoint() * &a);
        assert!((comm[(0, 0)].re - 1.0).abs() < 1e-15);
        assert!((comm[(1, 1)].re - 1.0).abs() < 1e-15);
    }

    #[test]
    fn hamiltonian_is_hermitian() {
        let p = UnitCellParams::default();
        let h = UnitCellHamiltonian::new(&p);
        assert!(h.h_static.is_hermitian(1e-9));
        assert_eq!(h.h_static.rows(), 27);
        assert!(h.at_time(ghz(0.05), ghz(2.0), 0.37).is_hermitian(1e-9));
    }

    #[test]
    fn bare_energies_roughly_match_diagonal() {
        let p = UnitCellParams::default();
        let h = UnitCellHamiltonian::new(&p);
        let i100 = h.bare_index(1, 0, 0);
        let e = h.h_static[(i100, i100)].re;
        assert!((e - p.omega_a).abs() < 1e-9);
        let i010 = h.bare_index(0, 1, 0);
        assert!((h.h_static[(i010, i010)].re - p.omega_b).abs() < 1e-9);
        // Second excited state of a picks up the anharmonicity.
        let i200 = h.bare_index(2, 0, 0);
        assert!((h.h_static[(i200, i200)].re - (2.0 * p.omega_a + p.alpha_a)).abs() < 1e-9);
    }

    #[test]
    fn two_level_truncation_works() {
        let p = UnitCellParams {
            levels: 2,
            ..UnitCellParams::default()
        };
        let h = UnitCellHamiltonian::new(&p);
        assert_eq!(h.dim, 8);
        assert!(h.h_static.is_hermitian(1e-9));
    }
}
