//! Cartan trajectories: the time-ordered sequence of effective two-qubit
//! gates produced by an entangling pulse of increasing duration, plotted as
//! points in the Weyl chamber (paper Figures 2 and 5, Section VIII-B).

use crate::evolve::{evolve_and_sample, DEFAULT_DT};
use crate::hamiltonian::UnitCellHamiltonian;
use crate::params::{DriveParams, UnitCellParams};
use crate::spectrum::{zero_zz_bias, DressedFrame};
use nsb_math::Mat4;
use nsb_weyl::{entangling_power, kak_vector, WeylCoord};

/// One point on a Cartan trajectory.
#[derive(Clone, Debug)]
pub struct TrajectoryPoint {
    /// Entangling pulse duration (ns).
    pub duration: f64,
    /// The effective two-qubit gate at this duration.
    pub gate: Mat4,
    /// Cartan coordinates of the gate.
    pub coord: WeylCoord,
    /// Leakage out of the computational subspace.
    pub leakage: f64,
}

/// A simulated Cartan trajectory for one qubit pair at one drive amplitude.
#[derive(Clone, Debug)]
pub struct CartanTrajectory {
    /// Drive amplitude `xi` in units of Phi_0.
    pub xi: f64,
    /// Calibrated drive parameters used.
    pub drive: DriveParams,
    /// Sampled points in time order (1 ns spacing by default, matching the
    /// qubit-controller resolution assumed in the paper).
    pub points: Vec<TrajectoryPoint>,
}

impl CartanTrajectory {
    /// Coordinates of all points, in time order.
    pub fn coords(&self) -> Vec<WeylCoord> {
        self.points.iter().map(|p| p.coord).collect()
    }

    /// The first point whose gate is a perfect entangler, if any.
    pub fn first_perfect_entangler(&self) -> Option<&TrajectoryPoint> {
        self.points
            .iter()
            .find(|p| nsb_weyl::is_perfect_entangler(p.coord, 1e-9))
    }

    /// The point whose class is closest to the given target class.
    pub fn closest_to(&self, target: WeylCoord) -> Option<&TrajectoryPoint> {
        self.points.iter().min_by(|a, b| {
            a.coord
                .class_dist(target)
                .total_cmp(&b.coord.class_dist(target))
        })
    }

    /// Maximum leakage along the trajectory.
    pub fn max_leakage(&self) -> f64 {
        self.points.iter().map(|p| p.leakage).fold(0.0, f64::max)
    }
}

/// Configuration for trajectory simulation.
#[derive(Clone, Copy, Debug)]
pub struct TrajectoryConfig {
    /// Total pulse duration to sweep (ns).
    pub t_max: f64,
    /// Sample spacing (ns); 1 ns matches typical controller resolution.
    pub sample_every: f64,
    /// Integrator step (ns).
    pub dt: f64,
    /// Number of candidate drive frequencies scanned during calibration.
    pub drive_scan_points: usize,
    /// Probe duration for the drive-frequency scan (ns).
    pub drive_probe_t: f64,
    /// Flat-top envelope rise/fall time (ns).
    pub ramp: f64,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            t_max: 120.0,
            sample_every: 1.0,
            dt: DEFAULT_DT,
            drive_scan_points: 7,
            drive_probe_t: 40.0,
            ramp: 1.5,
        }
    }
}

/// A fully prepared unit cell: biased to zero ZZ, with its dressed frame.
#[derive(Clone, Debug)]
pub struct PreparedCell {
    /// Biased parameters.
    pub params: UnitCellParams,
    /// Residual static ZZ after biasing (rad/ns).
    pub residual_zz: f64,
    /// Assembled Hamiltonian at the bias point.
    pub hamiltonian: UnitCellHamiltonian,
    /// Dressed computational frame.
    pub frame: DressedFrame,
}

impl PreparedCell {
    /// Prepares a unit cell: zero-ZZ bias then dressed-frame analysis.
    pub fn prepare(params: &UnitCellParams) -> Self {
        let (biased, residual_zz) = zero_zz_bias(params);
        let hamiltonian = UnitCellHamiltonian::new(&biased);
        let frame = DressedFrame::from_hamiltonian(&hamiltonian);
        PreparedCell {
            params: biased,
            residual_zz,
            hamiltonian,
            frame,
        }
    }

    /// The naive drive frequency: the dressed qubit difference frequency.
    pub fn difference_frequency(&self) -> f64 {
        (self.frame.omega_b_dressed() - self.frame.omega_a_dressed()).abs()
    }

    /// Calibrates the entangling drive frequency for amplitude `xi` by
    /// scanning around the difference frequency and maximizing the
    /// population-swap amplitude `max_t |<10|U(t)|01>|` over a short probe
    /// (paper Section VI, step 1: coarse amplitude/frequency tuning).
    pub fn calibrate_drive(&self, xi: f64, config: &TrajectoryConfig) -> DriveParams {
        let delta = self.params.modulation_depth(xi);
        let w0 = self.difference_frequency();
        // Scan window widens with drive strength (AC-Stark-like shifts).
        let width = 0.02 * w0.max(1.0) * (1.0 + 40.0 * xi);
        let n = config.drive_scan_points.max(1);
        let mut best = (w0, -1.0f64);
        for k in 0..n {
            let w = if n == 1 {
                w0
            } else {
                w0 - width + 2.0 * width * k as f64 / (n - 1) as f64
            };
            let amp = self.swap_amplitude(delta, w, config);
            if amp > best.1 {
                best = (w, amp);
            }
        }
        DriveParams {
            delta,
            omega_d: best.0,
            ramp: config.ramp,
        }
    }

    fn swap_amplitude(&self, delta: f64, omega_d: f64, config: &TrajectoryConfig) -> f64 {
        let drive = DriveParams {
            delta,
            omega_d,
            ramp: config.ramp,
        };
        let snaps = evolve_and_sample(
            &self.hamiltonian,
            &self.frame,
            &drive,
            config.drive_probe_t,
            config.drive_probe_t / 20.0,
            config.dt * 2.0,
        );
        snaps
            .iter()
            .map(|s| s.gate.at(2, 1).abs().max(s.gate.at(1, 2).abs()))
            .fold(0.0, f64::max)
    }

    /// Simulates the Cartan trajectory at drive amplitude `xi`.
    pub fn trajectory(&self, xi: f64, config: &TrajectoryConfig) -> CartanTrajectory {
        let drive = self.calibrate_drive(xi, config);
        self.trajectory_with_drive(xi, drive, config)
    }

    /// Simulates the trajectory with explicitly given drive parameters
    /// (used by the retuning stage of the calibration protocol).
    pub fn trajectory_with_drive(
        &self,
        xi: f64,
        drive: DriveParams,
        config: &TrajectoryConfig,
    ) -> CartanTrajectory {
        let snaps = evolve_and_sample(
            &self.hamiltonian,
            &self.frame,
            &drive,
            config.t_max,
            config.sample_every,
            config.dt,
        );
        let points = snaps
            .into_iter()
            .map(|s| TrajectoryPoint {
                duration: s.t,
                coord: kak_vector(&s.gate),
                gate: s.gate,
                leakage: s.leakage,
            })
            .collect();
        CartanTrajectory { xi, drive, points }
    }
}

/// Average speed of a trajectory: mean Weyl-space arc length per ns over
/// the first `n` points (used for the Figure 5 speed-doubling check).
pub fn trajectory_speed(traj: &CartanTrajectory, n: usize) -> f64 {
    let pts = &traj.points[..n.min(traj.points.len())];
    if pts.len() < 2 {
        return 0.0;
    }
    let mut acc = 0.0;
    for w in pts.windows(2) {
        acc += w[0].coord.dist(w[1].coord);
    }
    acc / (pts[pts.len() - 1].duration - pts[0].duration)
}

/// Reaches for the maximum entangling power attained along the trajectory.
pub fn max_entangling_power(traj: &CartanTrajectory) -> f64 {
    traj.points
        .iter()
        .map(|p| entangling_power(p.coord))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> TrajectoryConfig {
        TrajectoryConfig {
            t_max: 30.0,
            sample_every: 1.0,
            dt: 0.02,
            drive_scan_points: 5,
            drive_probe_t: 20.0,
            ramp: 1.0,
        }
    }

    #[test]
    fn prepared_cell_has_small_residual_zz() {
        let cell = PreparedCell::prepare(&UnitCellParams::default());
        assert!(cell.residual_zz.abs() < crate::params::ghz(1e-4));
        assert!(cell.difference_frequency() > crate::params::ghz(1.5));
    }

    #[test]
    fn strong_drive_trajectory_reaches_entangling_region() {
        let cell = PreparedCell::prepare(&UnitCellParams::default());
        let traj = cell.trajectory(0.04, &fast_config());
        assert_eq!(traj.points.len(), 30);
        assert!(
            max_entangling_power(&traj) > 0.1,
            "max ep {}",
            max_entangling_power(&traj)
        );
        // Leakage stays small compared to decoherence scales.
        assert!(traj.max_leakage() < 0.05, "leakage {}", traj.max_leakage());
    }

    #[test]
    fn trajectory_speed_scales_with_amplitude() {
        let cell = PreparedCell::prepare(&UnitCellParams::default());
        let cfg = fast_config();
        let slow = cell.trajectory(0.01, &cfg);
        let fast = cell.trajectory(0.02, &cfg);
        let vs = trajectory_speed(&slow, 30);
        let vf = trajectory_speed(&fast, 30);
        let ratio = vf / vs;
        assert!(
            (1.4..=2.8).contains(&ratio),
            "speed ratio {ratio} (slow {vs}, fast {vf})"
        );
    }
}
