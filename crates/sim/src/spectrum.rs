//! Static (drive-off) spectral analysis: dressed states, static ZZ, and
//! the zero-ZZ coupler bias search (paper Section VIII-B, steps 1-2).

use crate::hamiltonian::UnitCellHamiltonian;
use crate::params::UnitCellParams;
use nsb_math::{eigh, Complex64, DMat};

/// Dressed computational frame of a unit cell: the four eigenstates
/// adiabatically connected to `|00>, |01>, |10>, |11>` (qubit order `a b`,
/// coupler in its ground state).
#[derive(Clone, Debug)]
pub struct DressedFrame {
    /// Dressed state vectors as columns, order `|00>, |01>, |10>, |11>`.
    pub states: [Vec<Complex64>; 4],
    /// Dressed energies in the same order.
    pub energies: [f64; 4],
    /// Hilbert-space dimension.
    pub dim: usize,
}

impl DressedFrame {
    /// Computes the dressed frame from the static Hamiltonian.
    ///
    /// # Panics
    ///
    /// Panics when the computational subspace cannot be identified
    /// (hybridization too strong); use
    /// [`DressedFrame::try_from_hamiltonian`] to handle that case.
    pub fn from_hamiltonian(h: &UnitCellHamiltonian) -> Self {
        DressedFrame::try_from_hamiltonian(h)
            // lint: allow(no-expect) — documented panicking variant; try_from_hamiltonian is the fallible API
            .expect("dressed state identification ambiguous: overlap below 0.5")
    }

    /// Fallible variant of [`DressedFrame::from_hamiltonian`]: returns
    /// `None` when some computational state has less than 50% overlap with
    /// every remaining eigenvector (e.g. coupler resonant with a qubit).
    pub fn try_from_hamiltonian(h: &UnitCellHamiltonian) -> Option<Self> {
        let e = eigh(&h.h_static);
        let dim = h.dim;
        let bare = [
            h.bare_index(0, 0, 0),
            h.bare_index(0, 1, 0),
            h.bare_index(1, 0, 0),
            h.bare_index(1, 1, 0),
        ];
        let mut used = vec![false; dim];
        let mut states: [Vec<Complex64>; 4] = Default::default();
        let mut energies = [0.0f64; 4];
        for (slot, &b) in bare.iter().enumerate() {
            // Find the eigenvector with maximal overlap with the bare state.
            let mut best = (0usize, -1.0f64);
            for (col, &taken) in used.iter().enumerate() {
                if taken {
                    continue;
                }
                let ov = e.vectors[(b, col)].norm_sqr();
                if ov > best.1 {
                    best = (col, ov);
                }
            }
            if best.1 <= 0.5 {
                return None;
            }
            used[best.0] = true;
            let mut v: Vec<Complex64> = (0..dim).map(|r| e.vectors[(r, best.0)]).collect();
            // Fix the phase so the bare component is real positive.
            let phase = v[b].arg();
            let rot = Complex64::cis(-phase);
            for z in &mut v {
                *z *= rot;
            }
            states[slot] = v;
            energies[slot] = e.values[best.0];
        }
        Some(DressedFrame {
            states,
            energies,
            dim,
        })
    }

    /// Dressed qubit-a frequency `E10 - E00`.
    pub fn omega_a_dressed(&self) -> f64 {
        self.energies[2] - self.energies[0]
    }

    /// Dressed qubit-b frequency `E01 - E00`.
    pub fn omega_b_dressed(&self) -> f64 {
        self.energies[1] - self.energies[0]
    }

    /// Static ZZ rate `zeta = E11 - E10 - E01 + E00` (rad/ns).
    pub fn static_zz(&self) -> f64 {
        self.energies[3] - self.energies[2] - self.energies[1] + self.energies[0]
    }

    /// Projects a full-space propagator onto the computational subspace,
    /// returning the raw (not yet unitary) 4x4 block.
    pub fn project(&self, u: &DMat) -> nsb_math::Mat4 {
        let mut m = nsb_math::Mat4::zero();
        for (j, ket) in self.states.iter().enumerate() {
            let col = u.mul_vec(ket);
            for (i, bra) in self.states.iter().enumerate() {
                let mut acc = Complex64::ZERO;
                for r in 0..self.dim {
                    acc += bra[r].conj() * col[r];
                }
                m[(i, j)] = acc;
            }
        }
        m
    }

    /// The dressed computational basis as a `dim x 4` column matrix `P`.
    ///
    /// Evolving the block `Y = U P` directly (instead of the full `dim x
    /// dim` propagator) cuts the per-step matmul cost by `dim / 4` while
    /// computing the exact same projected gate `P^T U P`.
    pub fn basis_columns(&self) -> DMat {
        let mut p = DMat::zeros(self.dim, 4);
        for (j, ket) in self.states.iter().enumerate() {
            for (r, z) in ket.iter().enumerate() {
                p[(r, j)] = *z;
            }
        }
        p
    }

    /// Projects an already-right-multiplied block `Y = U P` (`dim x 4`)
    /// onto the computational subspace: returns `P^dagger Y`.
    ///
    /// # Panics
    ///
    /// Panics when `y` is not `dim x 4`.
    pub fn project_cols(&self, y: &DMat) -> nsb_math::Mat4 {
        assert_eq!(y.rows(), self.dim, "block row mismatch");
        assert_eq!(y.cols(), 4, "block must have 4 columns");
        let mut m = nsb_math::Mat4::zero();
        for (i, bra) in self.states.iter().enumerate() {
            for j in 0..4 {
                let mut acc = Complex64::ZERO;
                for (r, b) in bra.iter().enumerate() {
                    acc += b.conj() * y[(r, j)];
                }
                m[(i, j)] = acc;
            }
        }
        m
    }
}

/// Static ZZ at a trial coupler bias (rad/ns); `NaN` when the
/// computational subspace cannot be identified at that bias.
pub fn static_zz_at(params: &UnitCellParams, omega_c: f64) -> f64 {
    let p = UnitCellParams { omega_c, ..*params };
    let h = UnitCellHamiltonian::new(&p);
    match DressedFrame::try_from_hamiltonian(&h) {
        Some(f) => f.static_zz(),
        None => f64::NAN,
    }
}

/// Searches for the coupler bias that zeroes the static ZZ between the two
/// qubits, scanning between the qubit frequencies and bisecting the first
/// sign change; falls back to the scan minimum of `|zeta|` when no crossing
/// exists in the window.
///
/// Returns the biased parameters and the residual ZZ there.
pub fn zero_zz_bias(params: &UnitCellParams) -> (UnitCellParams, f64) {
    let lo = params.omega_a + 0.12 * params.detuning();
    let hi = params.omega_b - 0.12 * params.detuning();
    let n = 120;
    // Scan; collect all sign-change brackets. Note that ZZ flips sign both
    // at genuine zeros and at *poles* (level-crossing resonances), so each
    // bracket is bisected and judged by the residual it actually reaches.
    let mut samples: Vec<(f64, f64)> = Vec::with_capacity(n + 1);
    for k in 0..=n {
        let w = lo + (hi - lo) * k as f64 / n as f64;
        let z = static_zz_at(params, w);
        if z.is_finite() {
            samples.push((w, z));
        }
    }
    let mut best = (params.omega_c, f64::INFINITY);
    for &(w, z) in &samples {
        if z.abs() < best.1.abs() {
            best = (w, z);
        }
    }
    for pair in samples.windows(2) {
        let ((mut a, mut za), (mut b, _zb)) = (pair[0], pair[1]);
        if pair[0].1.signum() == pair[1].1.signum() {
            continue;
        }
        for _ in 0..48 {
            let mid = (a + b) / 2.0;
            let zm = static_zz_at(params, mid);
            if !zm.is_finite() {
                break;
            }
            if zm.abs() < 1e-13 {
                a = mid;
                za = zm;
                break;
            }
            if za.signum() == zm.signum() {
                a = mid;
                za = zm;
            } else {
                b = mid;
            }
        }
        // A pole bracket converges to a large |zz|; a zero bracket to ~0.
        if za.abs() < best.1.abs() {
            best = (a, za);
        }
    }
    let tuned = UnitCellParams {
        omega_c: best.0,
        ..*params
    };
    (tuned, best.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ghz;

    #[test]
    fn dressed_frame_identifies_four_states() {
        let p = UnitCellParams::default();
        let h = UnitCellHamiltonian::new(&p);
        let f = DressedFrame::from_hamiltonian(&h);
        // Dressed frequencies near the bare ones (Lamb shift ~ g^2/Delta
        // is ~2pi*0.16 GHz at the default coupling).
        assert!((f.omega_a_dressed() - p.omega_a).abs() < ghz(0.35));
        assert!((f.omega_b_dressed() - p.omega_b).abs() < ghz(0.35));
        // States are normalized and mutually orthogonal.
        for i in 0..4 {
            let n: f64 = f.states[i].iter().map(|z| z.norm_sqr()).sum();
            assert!((n - 1.0).abs() < 1e-10);
            for j in (i + 1)..4 {
                let ov: Complex64 = f.states[i]
                    .iter()
                    .zip(&f.states[j])
                    .map(|(x, y)| x.conj() * *y)
                    .sum();
                assert!(ov.abs() < 1e-10);
            }
        }
    }

    #[test]
    fn projection_of_identity_is_identity() {
        let p = UnitCellParams::default();
        let h = UnitCellHamiltonian::new(&p);
        let f = DressedFrame::from_hamiltonian(&h);
        let m = f.project(&DMat::identity(h.dim));
        assert!(m.approx_eq(&nsb_math::Mat4::identity(), 1e-10));
    }

    #[test]
    fn block_projection_matches_full_projection() {
        let p = UnitCellParams::default();
        let h = UnitCellHamiltonian::new(&p);
        let f = DressedFrame::from_hamiltonian(&h);
        // A dense non-unitary test operator with deterministic entries.
        let u = DMat::from_vec(
            h.dim,
            h.dim,
            (0..h.dim * h.dim)
                .map(|k| Complex64::new((k as f64 * 0.13).sin(), (k as f64 * 0.07).cos()))
                .collect(),
        );
        let full = f.project(&u);
        let y = &u * &f.basis_columns();
        let block = f.project_cols(&y);
        assert!(block.approx_eq(&full, 1e-10));
    }

    #[test]
    fn zero_zz_bias_reduces_zz() {
        let p = UnitCellParams::default();
        let before = static_zz_at(&p, p.omega_c).abs();
        let (tuned, residual) = zero_zz_bias(&p);
        assert!(
            residual.abs() <= before + 1e-12,
            "residual {residual} vs before {before}"
        );
        // The tuned point should have tiny ZZ: well below 2 pi * 100 kHz.
        assert!(
            residual.abs() < ghz(1e-4),
            "residual ZZ too large: {} GHz",
            residual / ghz(1.0)
        );
        assert!(tuned.omega_c > p.omega_a && tuned.omega_c < p.omega_b);
    }
}
