//! Quick physics probe (not part of the library API).
use nsb_sim::*;
use nsb_weyl::{entangling_power, first_crossing, is_perfect_entangler, SelectionCriterion};

fn main() {
    let cell = PreparedCell::prepare(&UnitCellParams::default());
    println!(
        "residual ZZ: {:.3e} rad/ns ({:.2} kHz)",
        cell.residual_zz,
        cell.residual_zz / (2.0 * std::f64::consts::PI) * 1e6
    );
    println!(
        "dressed diff freq: {:.4} GHz",
        cell.difference_frequency() / (2.0 * std::f64::consts::PI)
    );
    for (xi, tmax) in [(0.005, 260.0), (0.01, 140.0), (0.04, 40.0)] {
        let cfg = TrajectoryConfig {
            t_max: tmax,
            ..Default::default()
        };
        let t0 = std::time::Instant::now();
        let traj = cell.trajectory(xi, &cfg);
        let coords = traj.coords();
        let pe = traj.first_perfect_entangler().map(|p| p.duration);
        let c1 = first_crossing(&coords, SelectionCriterion::SwapIn3, 1.0 / 6.0);
        let c2 = first_crossing(&coords, SelectionCriterion::SwapIn3CnotIn2, 1.0 / 6.0);
        let sq = traj.closest_to(nsb_weyl::WeylCoord::SQRT_ISWAP).unwrap();
        println!("xi={xi}: drive f={:.4} GHz  max_leak={:.2e}  firstPE={pe:?}  crit1@{:?}ns crit2@{:?}ns  closest-sqiSW: t={} dist={:.4} | elapsed {:.1}s",
            traj.drive.omega_d/(2.0*std::f64::consts::PI), traj.max_leakage(), c1, c2, sq.duration, sq.coord.class_dist(nsb_weyl::WeylCoord::SQRT_ISWAP), t0.elapsed().as_secs_f64());
        // print a few coords along the way
        for p in traj.points.iter().step_by((tmax as usize) / 10) {
            println!(
                "   t={:6.1}  coord={}  ep={:.4} leak={:.2e} PE={}",
                p.duration,
                p.coord,
                entangling_power(p.coord),
                p.leakage,
                is_perfect_entangler(p.coord, 1e-9)
            );
        }
    }
}
