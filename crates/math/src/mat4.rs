//! Fixed-size 4x4 complex matrices and standard two-qubit gates.

use crate::{Complex64, Mat2};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense 4x4 complex matrix, the workhorse type for two-qubit (2Q) gates.
///
/// Basis ordering is `|q1 q0>` little-endian-free: the row index is
/// `2 * a + b` for qubit states `|a b>`, matching the usual textbook
/// convention where `kron(A, B)` acts with `A` on the first qubit.
///
/// # Examples
///
/// ```
/// use nsb_math::Mat4;
/// let swap = Mat4::swap();
/// assert!((swap * swap).approx_eq(&Mat4::identity(), 1e-15));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mat4 {
    e: [[Complex64; 4]; 4],
}

impl Default for Mat4 {
    fn default() -> Self {
        Mat4::zero()
    }
}

impl Mat4 {
    /// Builds a matrix from a row-major array of entries.
    #[inline]
    pub const fn from_rows(e: [[Complex64; 4]; 4]) -> Self {
        Mat4 { e }
    }

    /// The zero matrix.
    #[inline]
    pub const fn zero() -> Self {
        Mat4 {
            e: [[Complex64::ZERO; 4]; 4],
        }
    }

    /// The identity matrix.
    pub fn identity() -> Self {
        let mut m = Mat4::zero();
        for i in 0..4 {
            m.e[i][i] = Complex64::ONE;
        }
        m
    }

    /// Kronecker product of two single-qubit operators: `a` acts on the
    /// first qubit, `b` on the second.
    pub fn kron(a: &Mat2, b: &Mat2) -> Mat4 {
        let mut m = Mat4::zero();
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    for l in 0..2 {
                        m.e[2 * i + k][2 * j + l] = a.at(i, j) * b.at(k, l);
                    }
                }
            }
        }
        m
    }

    /// CNOT with the first qubit as control.
    pub fn cnot() -> Mat4 {
        let mut m = Mat4::identity();
        m.e[2][2] = Complex64::ZERO;
        m.e[3][3] = Complex64::ZERO;
        m.e[2][3] = Complex64::ONE;
        m.e[3][2] = Complex64::ONE;
        m
    }

    /// Controlled-Z.
    pub fn cz() -> Mat4 {
        let mut m = Mat4::identity();
        m.e[3][3] = -Complex64::ONE;
        m
    }

    /// SWAP gate.
    pub fn swap() -> Mat4 {
        let mut m = Mat4::zero();
        m.e[0][0] = Complex64::ONE;
        m.e[1][2] = Complex64::ONE;
        m.e[2][1] = Complex64::ONE;
        m.e[3][3] = Complex64::ONE;
        m
    }

    /// iSWAP gate.
    pub fn iswap() -> Mat4 {
        let mut m = Mat4::zero();
        m.e[0][0] = Complex64::ONE;
        m.e[1][2] = Complex64::I;
        m.e[2][1] = Complex64::I;
        m.e[3][3] = Complex64::ONE;
        m
    }

    /// Square root of iSWAP.
    pub fn sqrt_iswap() -> Mat4 {
        let s = Complex64::real(std::f64::consts::FRAC_1_SQRT_2);
        let is = Complex64::imag(std::f64::consts::FRAC_1_SQRT_2);
        let mut m = Mat4::zero();
        m.e[0][0] = Complex64::ONE;
        m.e[1][1] = s;
        m.e[2][2] = s;
        m.e[1][2] = is;
        m.e[2][1] = is;
        m.e[3][3] = Complex64::ONE;
        m
    }

    /// Square root of SWAP.
    pub fn sqrt_swap() -> Mat4 {
        let p = Complex64::new(0.5, 0.5);
        let q = Complex64::new(0.5, -0.5);
        let mut m = Mat4::zero();
        m.e[0][0] = Complex64::ONE;
        m.e[1][1] = p;
        m.e[2][2] = p;
        m.e[1][2] = q;
        m.e[2][1] = q;
        m.e[3][3] = Complex64::ONE;
        m
    }

    /// Controlled phase gate `diag(1, 1, 1, e^{i lambda})`.
    pub fn cphase(lambda: f64) -> Mat4 {
        let mut m = Mat4::identity();
        m.e[3][3] = Complex64::cis(lambda);
        m
    }

    /// `exp(-i theta/2 Z (x) Z)` two-qubit ZZ rotation.
    pub fn rzz(theta: f64) -> Mat4 {
        let m = Complex64::cis(-theta / 2.0);
        let p = Complex64::cis(theta / 2.0);
        let mut out = Mat4::zero();
        out.e[0][0] = m;
        out.e[1][1] = p;
        out.e[2][2] = p;
        out.e[3][3] = m;
        out
    }

    /// The B gate, `canonical(1/2, 1/4, 0)`: synthesizes any 2Q gate in two
    /// layers (Zhang et al., PRL 93, 020502).
    pub fn b_gate() -> Mat4 {
        Mat4::canonical(0.5, 0.25, 0.0)
    }

    /// The canonical gate
    /// `exp(-i pi/2 (tx X(x)X + ty Y(x)Y + tz Z(x)Z))`
    /// whose Cartan coordinates are `(tx, ty, tz)`.
    ///
    /// The three terms commute, so the result is the product of three
    /// closed-form exponentials.
    pub fn canonical(tx: f64, ty: f64, tz: f64) -> Mat4 {
        let xx = Mat4::kron(&Mat2::x(), &Mat2::x());
        let yy = Mat4::kron(&Mat2::y(), &Mat2::y());
        let zz = Mat4::kron(&Mat2::z(), &Mat2::z());
        let term = |p: &Mat4, t: f64| -> Mat4 {
            let a = std::f64::consts::FRAC_PI_2 * t;
            let c = Complex64::real(a.cos());
            let s = Complex64::imag(-a.sin());
            Mat4::identity().scale(c) + p.scale(s)
        };
        term(&xx, tx) * term(&yy, ty) * term(&zz, tz)
    }

    /// Entry accessor used in hot loops.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> Complex64 {
        self.e[r][c]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat4 {
        let mut m = Mat4::zero();
        for r in 0..4 {
            for c in 0..4 {
                m.e[c][r] = self.e[r][c];
            }
        }
        m
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Mat4 {
        let mut m = Mat4::zero();
        for r in 0..4 {
            for c in 0..4 {
                m.e[c][r] = self.e[r][c].conj();
            }
        }
        m
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> Mat4 {
        let mut m = *self;
        for r in 0..4 {
            for c in 0..4 {
                m.e[r][c] = m.e[r][c].conj();
            }
        }
        m
    }

    /// Matrix trace.
    pub fn trace(&self) -> Complex64 {
        self.e[0][0] + self.e[1][1] + self.e[2][2] + self.e[3][3]
    }

    /// Determinant by cofactor expansion (exact for 4x4).
    pub fn det(&self) -> Complex64 {
        let m = &self.e;
        let det3 = |r: [usize; 3], c: [usize; 3]| -> Complex64 {
            m[r[0]][c[0]] * (m[r[1]][c[1]] * m[r[2]][c[2]] - m[r[1]][c[2]] * m[r[2]][c[1]])
                - m[r[0]][c[1]] * (m[r[1]][c[0]] * m[r[2]][c[2]] - m[r[1]][c[2]] * m[r[2]][c[0]])
                + m[r[0]][c[2]] * (m[r[1]][c[0]] * m[r[2]][c[1]] - m[r[1]][c[1]] * m[r[2]][c[0]])
        };
        let rows = [1, 2, 3];
        let cols = [[1, 2, 3], [0, 2, 3], [0, 1, 3], [0, 1, 2]];
        let mut acc = Complex64::ZERO;
        let mut sign = 1.0;
        for (j, c) in cols.iter().enumerate() {
            acc += m[0][j] * det3(rows, *c) * sign;
            sign = -sign;
        }
        acc
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: Complex64) -> Mat4 {
        let mut out = *self;
        for r in 0..4 {
            for c in 0..4 {
                out.e[r][c] *= k;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.e
            .iter()
            .flatten()
            .map(|z| z.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Maximum absolute column sum (induced 1-norm); used by the
    /// stack-allocated matrix exponential's scaling heuristic.
    pub fn one_norm(&self) -> f64 {
        let mut best = 0.0f64;
        for c in 0..4 {
            let s: f64 = (0..4).map(|r| self.e[r][c].abs()).sum();
            best = best.max(s);
        }
        best
    }

    /// Returns true when `self` is unitary within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        (*self * self.adjoint() - Mat4::identity()).norm() <= tol
    }

    /// Entry-wise comparison within `tol` (Frobenius norm of difference).
    pub fn approx_eq(&self, other: &Mat4, tol: f64) -> bool {
        (*self - *other).norm() <= tol
    }

    /// Comparison up to a global phase: minimizes the Frobenius distance
    /// over `e^{i phi}` and compares with `tol`.
    pub fn approx_eq_up_to_phase(&self, other: &Mat4, tol: f64) -> bool {
        self.phase_distance(other) <= tol
    }

    /// Frobenius distance minimized over a global phase.
    pub fn phase_distance(&self, other: &Mat4) -> f64 {
        let t = (self.adjoint() * *other).trace().abs();
        let d2 = self.norm().powi(2) + other.norm().powi(2) - 2.0 * t;
        d2.max(0.0).sqrt()
    }

    /// `|tr(self^dagger other)| / 4`, the normalized trace overlap.
    pub fn trace_overlap(&self, other: &Mat4) -> f64 {
        (self.adjoint() * *other).trace().abs() / 4.0
    }

    /// Average gate fidelity between two unitaries,
    /// `(|tr(U^dagger V)|^2 + d) / (d^2 + d)` with `d = 4`.
    pub fn average_gate_fidelity(&self, other: &Mat4) -> f64 {
        let t = (self.adjoint() * *other).trace().abs();
        (t * t + 4.0) / 20.0
    }

    /// Rescales a near-unitary matrix into SU(4) and returns the removed
    /// global phase `alpha` such that `self = e^{i alpha} su4`.
    pub fn to_su4(&self) -> (Mat4, f64) {
        let alpha = self.det().arg() / 4.0;
        (self.scale(Complex64::cis(-alpha)), alpha)
    }

    /// Attempts to factor `self` as `kron(a, b)` with unitary `a`, `b`.
    ///
    /// Returns `None` when `self` is not a tensor product within `tol`.
    /// Useful for splitting local (1Q (x) 1Q) operators produced by KAK
    /// decompositions.
    pub fn kron_factor(&self, tol: f64) -> Option<(Mat2, Mat2)> {
        // Find the largest block to pivot on.
        let (mut bi, mut bj, mut best) = (0usize, 0usize, -1.0f64);
        for i in 0..2 {
            for j in 0..2 {
                let mut blk = 0.0;
                for k in 0..2 {
                    for l in 0..2 {
                        blk += self.e[2 * i + k][2 * j + l].norm_sqr();
                    }
                }
                if blk > best {
                    best = blk;
                    bi = i;
                    bj = j;
                }
            }
        }
        if best <= tol * tol {
            return None;
        }
        // b is proportional to the pivot block; rescale it to Frobenius
        // norm sqrt(2), the norm of a 2x2 unitary. The leftover phase is
        // absorbed into `a` by the overlap formula below.
        let mut b = Mat2::zero();
        for k in 0..2 {
            for l in 0..2 {
                b[(k, l)] = self.e[2 * bi + k][2 * bj + l];
            }
        }
        let b = b.scale(Complex64::real(std::f64::consts::SQRT_2 / b.norm()));
        // a from overlaps with b.
        let mut a = Mat2::zero();
        for i in 0..2 {
            for j in 0..2 {
                let mut acc = Complex64::ZERO;
                for k in 0..2 {
                    for l in 0..2 {
                        acc += self.e[2 * i + k][2 * j + l] * b.at(k, l).conj();
                    }
                }
                a[(i, j)] = acc / 2.0;
            }
        }
        // Normalize a to be unitary-scaled correctly: rescale pair so that
        // kron(a, b) == self.
        let approx = Mat4::kron(&a, &b);
        if !approx.approx_eq(self, tol) {
            return None;
        }
        if !a.is_unitary(tol * 10.0) || !b.is_unitary(tol * 10.0) {
            return None;
        }
        Some((a, b))
    }
}

impl Index<(usize, usize)> for Mat4 {
    type Output = Complex64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        &self.e[r][c]
    }
}

impl IndexMut<(usize, usize)> for Mat4 {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        &mut self.e[r][c]
    }
}

impl Add for Mat4 {
    type Output = Mat4;
    fn add(self, rhs: Mat4) -> Mat4 {
        let mut out = Mat4::zero();
        for r in 0..4 {
            for c in 0..4 {
                out.e[r][c] = self.e[r][c] + rhs.e[r][c];
            }
        }
        out
    }
}

impl Sub for Mat4 {
    type Output = Mat4;
    fn sub(self, rhs: Mat4) -> Mat4 {
        let mut out = Mat4::zero();
        for r in 0..4 {
            for c in 0..4 {
                out.e[r][c] = self.e[r][c] - rhs.e[r][c];
            }
        }
        out
    }
}

impl Neg for Mat4 {
    type Output = Mat4;
    fn neg(self) -> Mat4 {
        self.scale(-Complex64::ONE)
    }
}

impl Mul for Mat4 {
    type Output = Mat4;
    fn mul(self, rhs: Mat4) -> Mat4 {
        let mut out = Mat4::zero();
        for r in 0..4 {
            for c in 0..4 {
                let mut acc = Complex64::ZERO;
                for k in 0..4 {
                    acc += self.e[r][k] * rhs.e[k][c];
                }
                out.e[r][c] = acc;
            }
        }
        out
    }
}

impl fmt::Display for Mat4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..4 {
            writeln!(
                f,
                "[{} {} {} {}]",
                self.e[r][0], self.e[r][1], self.e[r][2], self.e[r][3]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_gates_unitary() {
        for g in [
            Mat4::cnot(),
            Mat4::cz(),
            Mat4::swap(),
            Mat4::iswap(),
            Mat4::sqrt_iswap(),
            Mat4::sqrt_swap(),
            Mat4::b_gate(),
            Mat4::cphase(0.7),
            Mat4::rzz(-1.3),
            Mat4::canonical(0.3, 0.2, 0.1),
        ] {
            assert!(g.is_unitary(1e-12), "{g}");
        }
    }

    #[test]
    fn sqrt_gates_square_back() {
        assert!((Mat4::sqrt_iswap() * Mat4::sqrt_iswap()).approx_eq(&Mat4::iswap(), 1e-12));
        assert!((Mat4::sqrt_swap() * Mat4::sqrt_swap()).approx_eq(&Mat4::swap(), 1e-12));
    }

    #[test]
    fn kron_matches_direct() {
        let a = Mat2::u3(0.3, 0.8, -0.2);
        let b = Mat2::u3(1.1, -0.5, 0.9);
        let k = Mat4::kron(&a, &b);
        assert!(k.is_unitary(1e-12));
        // (a (x) b)(c (x) d) = (ac (x) bd)
        let c = Mat2::rx(0.4);
        let d = Mat2::ry(0.6);
        let lhs = k * Mat4::kron(&c, &d);
        let rhs = Mat4::kron(&(a * c), &(b * d));
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn kron_factor_round_trip() {
        let a = Mat2::u3(0.3, 0.8, -0.2);
        let b = Mat2::u3(2.1, -0.5, 0.9);
        let k = Mat4::kron(&a, &b);
        let (fa, fb) = k.kron_factor(1e-9).expect("factorable");
        assert!(Mat4::kron(&fa, &fb).approx_eq(&k, 1e-9));
    }

    #[test]
    fn kron_factor_rejects_entangling() {
        assert!(Mat4::cnot().kron_factor(1e-9).is_none());
    }

    #[test]
    fn canonical_special_points() {
        // canonical(0,0,0) = I.
        assert!(Mat4::canonical(0.0, 0.0, 0.0).approx_eq(&Mat4::identity(), 1e-12));
        // canonical(1/2,1/2,1/2) is SWAP up to global phase.
        // Note: phase_distance is sqrt-amplified near zero, so tolerances
        // here are 1e-7 (machine epsilon under the square root).
        let c = Mat4::canonical(0.5, 0.5, 0.5);
        assert!(c.approx_eq_up_to_phase(&Mat4::swap(), 1e-7));
        // canonical(1/2,1/2,0) = exp(-i pi/4 (XX+YY)) equals iSWAP^dagger up
        // to a global phase (our canonical gate uses the -i sign convention;
        // iSWAP and its adjoint share the Weyl chamber point (1/2,1/2,0)).
        let i = Mat4::canonical(0.5, 0.5, 0.0);
        assert!(i.approx_eq_up_to_phase(&Mat4::iswap().adjoint(), 1e-7));
    }

    #[test]
    fn det_of_known() {
        assert!((Mat4::cnot().det() + Complex64::ONE).abs() < 1e-12); // det = -1
        assert!((Mat4::swap().det() + Complex64::ONE).abs() < 1e-12);
        let u = Mat4::canonical(0.2, 0.1, 0.05);
        assert!((u.det().abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phase_distance_invariance() {
        let u = Mat4::canonical(0.3, 0.2, 0.1);
        let v = u.scale(Complex64::cis(1.234));
        assert!(u.phase_distance(&v) < 1e-12);
        assert!(u.approx_eq_up_to_phase(&v, 1e-10));
    }

    #[test]
    fn average_gate_fidelity_bounds() {
        let u = Mat4::cnot();
        assert!((u.average_gate_fidelity(&u) - 1.0).abs() < 1e-12);
        let v = Mat4::swap();
        let f = u.average_gate_fidelity(&v);
        assert!(f < 1.0 && f > 0.0);
    }
}
