//! Eigendecomposition of complex Hermitian matrices via the cyclic Jacobi
//! method with complex plane rotations.
//!
//! Sizes in this workspace are small (dimension <= 64), where Jacobi is both
//! simple and numerically excellent (eigenvectors orthogonal to machine
//! precision).

use crate::{Complex64, DMat};

/// Result of a Hermitian eigendecomposition: `a = V diag(values) V^dagger`.
#[derive(Clone, Debug)]
pub struct HermitianEig {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub vectors: DMat,
}

impl HermitianEig {
    /// Reconstructs the original matrix; mainly useful in tests.
    pub fn reconstruct(&self) -> DMat {
        let d = DMat::from_diag(
            &self
                .values
                .iter()
                .map(|&v| Complex64::real(v))
                .collect::<Vec<_>>(),
        );
        &(&self.vectors * &d) * &self.vectors.adjoint()
    }

    /// Applies `f` to the eigenvalues and reassembles `V f(D) V^dagger`.
    ///
    /// This is how the workspace computes functions of Hermitian matrices,
    /// e.g. `exp(-i H t)` or `H^{-1/2}`.
    pub fn map(&self, mut f: impl FnMut(f64) -> Complex64) -> DMat {
        let d = DMat::from_diag(&self.values.iter().map(|&v| f(v)).collect::<Vec<_>>());
        &(&self.vectors * &d) * &self.vectors.adjoint()
    }
}

/// Computes the eigendecomposition of a Hermitian matrix.
///
/// # Panics
///
/// Panics when `a` is not square or not Hermitian within `1e-8` of its norm.
///
/// # Examples
///
/// ```
/// use nsb_math::{eigh, Complex64, DMat};
/// let mut h = DMat::zeros(2, 2);
/// h[(0, 1)] = Complex64::ONE;
/// h[(1, 0)] = Complex64::ONE;
/// let e = eigh(&h);
/// assert!((e.values[0] + 1.0).abs() < 1e-12);
/// assert!((e.values[1] - 1.0).abs() < 1e-12);
/// ```
pub fn eigh(a: &DMat) -> HermitianEig {
    let n = a.rows();
    assert_eq!(n, a.cols(), "eigh requires a square matrix");
    let scale = a.norm().max(1.0);
    assert!(
        a.is_hermitian(1e-8 * scale),
        "eigh requires a Hermitian matrix"
    );
    let mut m = a.clone();
    // Symmetrize exactly to wash out tiny asymmetries.
    for r in 0..n {
        for c in (r + 1)..n {
            let avg = (m[(r, c)] + m[(c, r)].conj()).scale(0.5);
            m[(r, c)] = avg;
            m[(c, r)] = avg.conj();
        }
        m[(r, r)] = Complex64::real(m[(r, r)].re);
    }
    let mut v = DMat::identity(n);
    let tol = 1e-14 * scale;
    for _sweep in 0..60 {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m[(p, q)].norm_sqr();
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                let abs_apq = apq.abs();
                if abs_apq <= tol / (n as f64) {
                    continue;
                }
                let app = m[(p, p)].re;
                let aqq = m[(q, q)].re;
                let phi = apq.arg();
                // cot(2 theta) = (app - aqq) / (2 |apq|)
                let tau = (app - aqq) / (2.0 * abs_apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                let eip = Complex64::cis(phi);
                let eim = Complex64::cis(-phi);
                // R is identity except R[p][p]=c, R[p][q]=-s e^{i phi},
                // R[q][p]=s e^{-i phi}, R[q][q]=c. Apply m <- R^dag m R.
                // Columns update (m <- m R):
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = mkp.scale(c) + mkq * eim.scale(s);
                    m[(k, q)] = mkq.scale(c) - mkp * eip.scale(s);
                }
                // Rows update (m <- R^dag m):
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = mpk.scale(c) + mqk * eip.scale(s);
                    m[(q, k)] = mqk.scale(c) - mpk * eim.scale(s);
                }
                // Eigenvector accumulation (v <- v R):
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = vkp.scale(c) + vkq * eim.scale(s);
                    v[(k, q)] = vkq.scale(c) - vkp * eip.scale(s);
                }
                // Clean the zeroed element and enforce real diagonal.
                m[(p, q)] = Complex64::ZERO;
                m[(q, p)] = Complex64::ZERO;
                m[(p, p)] = Complex64::real(m[(p, p)].re);
                m[(q, q)] = Complex64::real(m[(q, q)].re);
            }
        }
    }
    // Collect and sort ascending.
    let mut idx: Vec<usize> = (0..n).collect();
    let vals: Vec<f64> = (0..n).map(|i| m[(i, i)].re).collect();
    idx.sort_by(|&a, &b| vals[a].total_cmp(&vals[b]));
    let mut values = Vec::with_capacity(n);
    let mut vectors = DMat::zeros(n, n);
    for (new_c, &old_c) in idx.iter().enumerate() {
        values.push(vals[old_c]);
        for r in 0..n {
            vectors[(r, new_c)] = v[(r, old_c)];
        }
    }
    HermitianEig { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_matrix(n: usize) -> DMat {
        let mut h = DMat::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                let re = ((r * 13 + c * 7) % 17) as f64 / 17.0;
                let im = if r == c {
                    0.0
                } else {
                    ((r * 5 + c * 11) % 13) as f64 / 13.0
                };
                h[(r, c)] = Complex64::new(re, im);
            }
        }
        // Hermitize.
        let ha = h.adjoint();
        (&h + &ha).scale(Complex64::real(0.5))
    }

    #[test]
    fn reconstruction_small() {
        for n in [2usize, 3, 5, 8] {
            let h = test_matrix(n);
            let e = eigh(&h);
            assert!(
                e.reconstruct().approx_eq(&h, 1e-10),
                "reconstruction failed at n={n}"
            );
            assert!(e.vectors.is_unitary(1e-10));
        }
    }

    #[test]
    fn eigenvalues_sorted_and_real_diag() {
        let h = test_matrix(12);
        let e = eigh(&h);
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        // Trace preserved.
        let tr: f64 = e.values.iter().sum();
        assert!((tr - h.trace().re).abs() < 1e-9);
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let d = DMat::from_diag(&[
            Complex64::real(3.0),
            Complex64::real(-1.0),
            Complex64::real(0.5),
        ]);
        let e = eigh(&d);
        assert!((e.values[0] + 1.0).abs() < 1e-14);
        assert!((e.values[1] - 0.5).abs() < 1e-14);
        assert!((e.values[2] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn map_computes_matrix_functions() {
        let h = test_matrix(6);
        let e = eigh(&h);
        // exp(i*0) = identity
        let u = e.map(|_| Complex64::ONE);
        assert!(u.approx_eq(&DMat::identity(6), 1e-10));
        // exp(-iHt) is unitary.
        let t = 0.37;
        let u = e.map(|lam| Complex64::cis(-lam * t));
        assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn large_dimension_27() {
        let h = test_matrix(27);
        let e = eigh(&h);
        assert!(e.reconstruct().approx_eq(&h, 1e-8));
    }
}
