//! Fixed-size 2x2 complex matrices and standard single-qubit gates.

use crate::Complex64;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense 2x2 complex matrix.
///
/// Used throughout the workspace for single-qubit (1Q) unitaries and for the
/// small "environment" tensors that appear in gate synthesis.
///
/// # Examples
///
/// ```
/// use nsb_math::Mat2;
/// let h = Mat2::h();
/// assert!((h * h).approx_eq(&Mat2::identity(), 1e-15));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mat2 {
    e: [[Complex64; 2]; 2],
}

impl Default for Mat2 {
    fn default() -> Self {
        Mat2::zero()
    }
}

impl Mat2 {
    /// Builds a matrix from a row-major array of entries.
    #[inline]
    pub const fn from_rows(e: [[Complex64; 2]; 2]) -> Self {
        Mat2 { e }
    }

    /// The zero matrix.
    #[inline]
    pub const fn zero() -> Self {
        Mat2 {
            e: [[Complex64::ZERO; 2]; 2],
        }
    }

    /// The identity matrix.
    #[inline]
    pub const fn identity() -> Self {
        Mat2 {
            e: [
                [Complex64::ONE, Complex64::ZERO],
                [Complex64::ZERO, Complex64::ONE],
            ],
        }
    }

    /// Pauli X.
    pub fn x() -> Self {
        Mat2::from_rows([
            [Complex64::ZERO, Complex64::ONE],
            [Complex64::ONE, Complex64::ZERO],
        ])
    }

    /// Pauli Y.
    pub fn y() -> Self {
        Mat2::from_rows([
            [Complex64::ZERO, -Complex64::I],
            [Complex64::I, Complex64::ZERO],
        ])
    }

    /// Pauli Z.
    pub fn z() -> Self {
        Mat2::from_rows([
            [Complex64::ONE, Complex64::ZERO],
            [Complex64::ZERO, -Complex64::ONE],
        ])
    }

    /// Hadamard gate.
    pub fn h() -> Self {
        let s = Complex64::real(std::f64::consts::FRAC_1_SQRT_2);
        Mat2::from_rows([[s, s], [s, -s]])
    }

    /// Phase gate S = diag(1, i).
    pub fn s() -> Self {
        Mat2::from_rows([
            [Complex64::ONE, Complex64::ZERO],
            [Complex64::ZERO, Complex64::I],
        ])
    }

    /// T gate = diag(1, e^{i pi/4}).
    pub fn t() -> Self {
        Mat2::from_rows([
            [Complex64::ONE, Complex64::ZERO],
            [Complex64::ZERO, Complex64::cis(std::f64::consts::FRAC_PI_4)],
        ])
    }

    /// Sqrt-X gate.
    pub fn sx() -> Self {
        let p = Complex64::new(0.5, 0.5);
        let m = Complex64::new(0.5, -0.5);
        Mat2::from_rows([[p, m], [m, p]])
    }

    /// Rotation about X: `exp(-i theta X / 2)`.
    pub fn rx(theta: f64) -> Self {
        let c = Complex64::real((theta / 2.0).cos());
        let s = Complex64::imag(-(theta / 2.0).sin());
        Mat2::from_rows([[c, s], [s, c]])
    }

    /// Rotation about Y: `exp(-i theta Y / 2)`.
    pub fn ry(theta: f64) -> Self {
        let c = Complex64::real((theta / 2.0).cos());
        let s = Complex64::real((theta / 2.0).sin());
        Mat2::from_rows([[c, -s], [s, c]])
    }

    /// Rotation about Z: `exp(-i theta Z / 2)`.
    pub fn rz(theta: f64) -> Self {
        Mat2::from_rows([
            [Complex64::cis(-theta / 2.0), Complex64::ZERO],
            [Complex64::ZERO, Complex64::cis(theta / 2.0)],
        ])
    }

    /// Phase gate `diag(1, e^{i lambda})`.
    pub fn phase(lambda: f64) -> Self {
        Mat2::from_rows([
            [Complex64::ONE, Complex64::ZERO],
            [Complex64::ZERO, Complex64::cis(lambda)],
        ])
    }

    /// The generic single-qubit gate
    /// `U3(theta, phi, lambda)` in the OpenQASM convention.
    pub fn u3(theta: f64, phi: f64, lambda: f64) -> Self {
        let c = (theta / 2.0).cos();
        let s = (theta / 2.0).sin();
        Mat2::from_rows([
            [Complex64::real(c), -Complex64::cis(lambda) * s],
            [Complex64::cis(phi) * s, Complex64::cis(phi + lambda) * c],
        ])
    }

    /// Entry accessor used in hot loops.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> Complex64 {
        self.e[r][c]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat2 {
        Mat2::from_rows([[self.e[0][0], self.e[1][0]], [self.e[0][1], self.e[1][1]]])
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Mat2 {
        Mat2::from_rows([
            [self.e[0][0].conj(), self.e[1][0].conj()],
            [self.e[0][1].conj(), self.e[1][1].conj()],
        ])
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> Mat2 {
        Mat2::from_rows([
            [self.e[0][0].conj(), self.e[0][1].conj()],
            [self.e[1][0].conj(), self.e[1][1].conj()],
        ])
    }

    /// Matrix trace.
    pub fn trace(&self) -> Complex64 {
        self.e[0][0] + self.e[1][1]
    }

    /// Determinant.
    pub fn det(&self) -> Complex64 {
        self.e[0][0] * self.e[1][1] - self.e[0][1] * self.e[1][0]
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: Complex64) -> Mat2 {
        let mut out = *self;
        for r in 0..2 {
            for c in 0..2 {
                out.e[r][c] *= k;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.e
            .iter()
            .flatten()
            .map(|z| z.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Returns true when `self` is unitary within `tol` (Frobenius norm of
    /// `U U^dagger - I`).
    pub fn is_unitary(&self, tol: f64) -> bool {
        (*self * self.adjoint() - Mat2::identity()).norm() <= tol
    }

    /// Entry-wise comparison within `tol`.
    pub fn approx_eq(&self, other: &Mat2, tol: f64) -> bool {
        (*self - *other).norm() <= tol
    }

    /// Rescales a near-unitary matrix into SU(2) (unit determinant).
    ///
    /// Returns the SU(2) matrix together with the removed global phase
    /// `alpha` such that `self = e^{i alpha} * su2`.
    pub fn to_su2(&self) -> (Mat2, f64) {
        let d = self.det();
        let alpha = d.arg() / 2.0;
        (self.scale(Complex64::cis(-alpha)), alpha)
    }

    /// ZYZ Euler decomposition of a unitary.
    ///
    /// Returns `(theta, phi, lambda, global_phase)` such that
    /// `self = e^{i global_phase} Rz(phi) Ry(theta) Rz(lambda)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `self` is far from unitary.
    pub fn zyz_angles(&self) -> (f64, f64, f64, f64) {
        debug_assert!(self.is_unitary(1e-6), "zyz_angles requires a unitary");
        let (u, alpha) = self.to_su2();
        // SU(2): [[a, -b*], [b, a*]] with |a|^2+|b|^2 = 1.
        let a = u.at(0, 0);
        let b = u.at(1, 0);
        let theta = 2.0 * b.abs().atan2(a.abs());
        // a = cos(theta/2) e^{-i(phi+lambda)/2}; b = sin(theta/2) e^{i(phi-lambda)/2}
        let (sum, diff) = if a.abs() > 1e-12 && b.abs() > 1e-12 {
            (-2.0 * a.arg(), 2.0 * b.arg())
        } else if a.abs() > 1e-12 {
            (-2.0 * a.arg(), 0.0)
        } else {
            (0.0, 2.0 * b.arg())
        };
        let phi = (sum + diff) / 2.0;
        let lambda = (sum - diff) / 2.0;
        (theta, phi, lambda, alpha)
    }

    /// Reconstructs a unitary from ZYZ Euler angles; inverse of
    /// [`Mat2::zyz_angles`].
    pub fn from_zyz(theta: f64, phi: f64, lambda: f64, global_phase: f64) -> Mat2 {
        (Mat2::rz(phi) * Mat2::ry(theta) * Mat2::rz(lambda)).scale(Complex64::cis(global_phase))
    }
}

impl Index<(usize, usize)> for Mat2 {
    type Output = Complex64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        &self.e[r][c]
    }
}

impl IndexMut<(usize, usize)> for Mat2 {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        &mut self.e[r][c]
    }
}

impl Add for Mat2 {
    type Output = Mat2;
    fn add(self, rhs: Mat2) -> Mat2 {
        let mut out = Mat2::zero();
        for r in 0..2 {
            for c in 0..2 {
                out.e[r][c] = self.e[r][c] + rhs.e[r][c];
            }
        }
        out
    }
}

impl Sub for Mat2 {
    type Output = Mat2;
    fn sub(self, rhs: Mat2) -> Mat2 {
        let mut out = Mat2::zero();
        for r in 0..2 {
            for c in 0..2 {
                out.e[r][c] = self.e[r][c] - rhs.e[r][c];
            }
        }
        out
    }
}

impl Neg for Mat2 {
    type Output = Mat2;
    fn neg(self) -> Mat2 {
        self.scale(-Complex64::ONE)
    }
}

impl Mul for Mat2 {
    type Output = Mat2;
    fn mul(self, rhs: Mat2) -> Mat2 {
        let mut out = Mat2::zero();
        for r in 0..2 {
            for c in 0..2 {
                let mut acc = Complex64::ZERO;
                for k in 0..2 {
                    acc += self.e[r][k] * rhs.e[k][c];
                }
                out.e[r][c] = acc;
            }
        }
        out
    }
}

impl fmt::Display for Mat2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..2 {
            writeln!(f, "[{} {}]", self.e[r][0], self.e[r][1])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn pauli_algebra() {
        let (x, y, z) = (Mat2::x(), Mat2::y(), Mat2::z());
        assert!((x * x).approx_eq(&Mat2::identity(), 1e-15));
        assert!((y * y).approx_eq(&Mat2::identity(), 1e-15));
        assert!((z * z).approx_eq(&Mat2::identity(), 1e-15));
        // XY = iZ
        assert!((x * y).approx_eq(&z.scale(Complex64::I), 1e-15));
    }

    #[test]
    fn standard_gates_unitary() {
        for g in [
            Mat2::x(),
            Mat2::y(),
            Mat2::z(),
            Mat2::h(),
            Mat2::s(),
            Mat2::t(),
            Mat2::sx(),
            Mat2::rx(0.3),
            Mat2::ry(-1.2),
            Mat2::rz(2.7),
            Mat2::u3(0.4, 1.1, -0.6),
        ] {
            assert!(g.is_unitary(1e-12), "{g}");
        }
    }

    #[test]
    fn rotations_compose() {
        let a = Mat2::rz(0.4) * Mat2::rz(0.6);
        assert!(a.approx_eq(&Mat2::rz(1.0), 1e-12));
    }

    #[test]
    fn u3_special_cases() {
        // U3(pi/2, 0, pi) is the Hadamard up to nothing (exact).
        assert!(Mat2::u3(PI / 2.0, 0.0, PI).approx_eq(&Mat2::h(), 1e-12));
    }

    #[test]
    fn zyz_round_trip() {
        let gates = [
            Mat2::h(),
            Mat2::x(),
            Mat2::t(),
            Mat2::u3(0.3, -0.9, 2.2),
            Mat2::rx(1.1) * Mat2::rz(0.2) * Mat2::ry(-2.0),
        ];
        for g in gates {
            let (t, p, l, a) = g.zyz_angles();
            let back = Mat2::from_zyz(t, p, l, a);
            assert!(back.approx_eq(&g, 1e-10), "{g} vs {back}");
        }
    }

    #[test]
    fn det_and_trace() {
        let u = Mat2::u3(0.7, 0.1, -0.4);
        assert!((u.det().abs() - 1.0).abs() < 1e-12);
        let (su, alpha) = u.to_su2();
        assert!((su.det() - Complex64::ONE).abs() < 1e-12);
        assert!(su.scale(Complex64::cis(alpha)).approx_eq(&u, 1e-12));
    }
}
