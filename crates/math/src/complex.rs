//! Double-precision complex numbers.
//!
//! The workspace deliberately avoids external linear-algebra crates, so this
//! module provides the small, fully-owned complex scalar type used by every
//! matrix type in [`crate`].

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use nsb_math::Complex64;
///
/// let i = Complex64::I;
/// assert!((i * i + Complex64::ONE).abs() < 1e-15);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline]
    pub const fn imag(im: f64) -> Self {
        Complex64 { re: 0.0, im }
    }

    /// Creates `r * exp(i * theta)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use nsb_math::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - Complex64::new(0.0, 2.0)).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `exp(i * theta)`, a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude; cheaper than [`Complex64::abs`] when only ordering
    /// or sums of squares are needed.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential.
    #[inline]
    pub fn exp(self) -> Self {
        Complex64::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Complex64::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `self` is exactly zero.
    #[inline]
    pub fn inv(self) -> Self {
        let n = self.norm_sqr();
        debug_assert!(n > 0.0, "inverse of zero complex number");
        Complex64::new(self.re / n, -self.im / n)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// Returns true when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Returns true when `self` and `other` differ by at most `tol` in
    /// magnitude.
    #[inline]
    pub fn approx_eq(self, other: Complex64, tol: f64) -> bool {
        (self - other).abs() <= tol
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::real(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w == z * w^-1
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.inv()
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(1.5, -2.5);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert!((z * z.inv() - Complex64::ONE).abs() < 1e-15);
        assert_eq!(-(-z), z);
    }

    #[test]
    fn conjugation_and_modulus() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!((z * z.conj()).re, 25.0);
        assert!((z * z.conj()).im.abs() < 1e-15);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::new(-0.3, 0.8);
        let w = Complex64::from_polar(z.abs(), z.arg());
        assert!(z.approx_eq(w, 1e-14));
    }

    #[test]
    fn exp_of_imaginary_is_rotation() {
        let theta = 0.731;
        let z = Complex64::imag(theta).exp();
        assert!((z.abs() - 1.0).abs() < 1e-15);
        assert!((z.arg() - theta).abs() < 1e-15);
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex64::new(-2.0, 0.5);
        let s = z.sqrt();
        assert!((s * s).approx_eq(z, 1e-12));
    }

    #[test]
    fn division() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-0.5, 0.25);
        let q = a / b;
        assert!((q * b).approx_eq(a, 1e-12));
    }

    #[test]
    fn sum_iterator() {
        let total: Complex64 = (0..10).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex64::new(45.0, 10.0));
    }
}
