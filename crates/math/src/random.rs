//! Haar-random unitaries and Gaussian sampling helpers.
//!
//! `rand` 0.8 without `rand_distr` has no normal distribution, so a small
//! Box-Muller implementation lives here; everything else is built on it.

use crate::{Complex64, DMat, Mat2, Mat4};
use rand::Rng;

/// Draws a standard normal sample via the Box-Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Draws a standard complex normal sample (independent N(0,1) components).
pub fn complex_normal<R: Rng + ?Sized>(rng: &mut R) -> Complex64 {
    Complex64::new(standard_normal(rng), standard_normal(rng))
}

/// Draws a Haar-random SU(2) element via the unit quaternion construction.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let u = nsb_math::haar_su2(&mut rng);
/// assert!(u.is_unitary(1e-12));
/// ```
pub fn haar_su2<R: Rng + ?Sized>(rng: &mut R) -> Mat2 {
    loop {
        let q = [
            standard_normal(rng),
            standard_normal(rng),
            standard_normal(rng),
            standard_normal(rng),
        ];
        let n = (q.iter().map(|x| x * x).sum::<f64>()).sqrt();
        if n < 1e-12 {
            continue;
        }
        let (a, b, c, d) = (q[0] / n, q[1] / n, q[2] / n, q[3] / n);
        // SU(2) element [[a+bi, c+di], [-c+di, a-bi]].
        return Mat2::from_rows([
            [Complex64::new(a, b), Complex64::new(c, d)],
            [Complex64::new(-c, d), Complex64::new(a, -b)],
        ]);
    }
}

/// Draws a Haar-random `n x n` unitary via QR of a Ginibre matrix with the
/// phases of the R diagonal divided out (Mezzadri's recipe).
pub fn haar_unitary<R: Rng + ?Sized>(n: usize, rng: &mut R) -> DMat {
    // Ginibre ensemble.
    let mut g = DMat::zeros(n, n);
    for r in 0..n {
        for c in 0..n {
            g[(r, c)] = complex_normal(rng);
        }
    }
    // Modified Gram-Schmidt on columns.
    let mut q = g.clone();
    let mut r_diag = vec![Complex64::ZERO; n];
    for j in 0..n {
        for k in 0..j {
            // proj = <q_k, q_j>
            let mut proj = Complex64::ZERO;
            for i in 0..n {
                proj += q[(i, k)].conj() * q[(i, j)];
            }
            for i in 0..n {
                let qik = q[(i, k)];
                q[(i, j)] -= proj * qik;
            }
        }
        let mut norm = 0.0;
        for i in 0..n {
            norm += q[(i, j)].norm_sqr();
        }
        let norm = norm.sqrt();
        r_diag[j] = Complex64::real(norm);
        for i in 0..n {
            q[(i, j)] = q[(i, j)] / norm;
        }
        // Phase fix: multiply the column by the phase of the original
        // projection onto itself (diag of R is already real positive after
        // MGS, so draw a random phase to restore Haar measure).
        let phase = Complex64::cis(rng.gen::<f64>() * 2.0 * std::f64::consts::PI);
        for i in 0..n {
            q[(i, j)] *= phase;
        }
    }
    q
}

/// Draws a Haar-random two-qubit unitary as a [`Mat4`].
pub fn haar_u4<R: Rng + ?Sized>(rng: &mut R) -> Mat4 {
    haar_unitary(4, rng).to_mat4()
}

/// Draws a random local (1Q (x) 1Q) two-qubit unitary.
pub fn random_local4<R: Rng + ?Sized>(rng: &mut R) -> Mat4 {
    Mat4::kron(&haar_su2(rng), &haar_su2(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.06, "var {var}");
    }

    #[test]
    fn haar_su2_is_special_unitary() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let u = haar_su2(&mut rng);
            assert!(u.is_unitary(1e-12));
            assert!((u.det() - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn haar_unitary_is_unitary() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [2usize, 4, 7] {
            let u = haar_unitary(n, &mut rng);
            assert!(u.is_unitary(1e-10), "n={n}");
        }
    }

    #[test]
    fn haar_u4_spectral_statistics_plausible() {
        // Mean |trace|^2 over Haar U(4) equals 1; loose statistical check.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 400;
        let mean: f64 = (0..n)
            .map(|_| haar_u4(&mut rng).trace().norm_sqr())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.25, "mean |tr|^2 = {mean}");
    }

    #[test]
    fn random_local_is_product() {
        let mut rng = StdRng::seed_from_u64(4);
        let u = random_local4(&mut rng);
        assert!(u.kron_factor(1e-8).is_some());
    }
}
