//! Heap-allocated dense complex matrices of arbitrary size.
//!
//! These back the pulse-level Hamiltonian simulator (27-dimensional Hilbert
//! spaces) and the generic eigensolver / matrix-exponential routines.

use crate::{Complex64, Mat4};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major complex matrix with runtime dimensions.
///
/// # Examples
///
/// ```
/// use nsb_math::DMat;
/// let i = DMat::identity(3);
/// assert!((i.clone() * i.clone()).approx_eq(&i, 1e-15));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DMat {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl DMat {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DMat {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates an identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = DMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Creates a matrix from a row-major vector of entries.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        DMat { rows, cols, data }
    }

    /// Creates a diagonal matrix from the given entries.
    pub fn from_diag(diag: &[Complex64]) -> Self {
        let n = diag.len();
        let mut m = DMat::zeros(n, n);
        for (i, d) in diag.iter().enumerate() {
            m[(i, i)] = *d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw row-major data slice.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> DMat {
        let mut m = DMat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                m[(c, r)] = self[(r, c)].conj();
            }
        }
        m
    }

    /// Transpose without conjugation.
    pub fn transpose(&self) -> DMat {
        let mut m = DMat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                m[(c, r)] = self[(r, c)];
            }
        }
        m
    }

    /// Matrix trace.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square.
    pub fn trace(&self) -> Complex64 {
        assert_eq!(self.rows, self.cols);
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: Complex64) -> DMat {
        let mut m = self.clone();
        for z in &mut m.data {
            *z *= k;
        }
        m
    }

    /// Kronecker product `self (x) rhs`.
    pub fn kron(&self, rhs: &DMat) -> DMat {
        let (ra, ca, rb, cb) = (self.rows, self.cols, rhs.rows, rhs.cols);
        let mut m = DMat::zeros(ra * rb, ca * cb);
        for i in 0..ra {
            for j in 0..ca {
                let aij = self[(i, j)];
                if aij == Complex64::ZERO {
                    continue;
                }
                for k in 0..rb {
                    for l in 0..cb {
                        m[(i * rb + k, j * cb + l)] = aij * rhs[(k, l)];
                    }
                }
            }
        }
        m
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Maximum absolute column sum (induced 1-norm); used by the matrix
    /// exponential's scaling heuristic.
    pub fn one_norm(&self) -> f64 {
        let mut best = 0.0f64;
        for c in 0..self.cols {
            let s: f64 = (0..self.rows).map(|r| self[(r, c)].abs()).sum();
            best = best.max(s);
        }
        best
    }

    /// Returns true when the matrix is Hermitian within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in r..self.cols {
                if (self[(r, c)] - self[(c, r)].conj()).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Returns true when `self` is unitary within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let p = self * &self.adjoint();
        (&p - &DMat::identity(self.rows)).norm() <= tol
    }

    /// Entry-wise comparison within `tol` (Frobenius norm of difference).
    pub fn approx_eq(&self, other: &DMat, tol: f64) -> bool {
        if self.rows != other.rows || self.cols != other.cols {
            return false;
        }
        (self - other).norm() <= tol
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(v.len(), self.cols);
        let mut out = vec![Complex64::ZERO; self.rows];
        for (r, slot) in out.iter_mut().enumerate() {
            let mut acc = Complex64::ZERO;
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (a, b) in row.iter().zip(v) {
                acc += *a * *b;
            }
            *slot = acc;
        }
        out
    }

    /// Writes `self * rhs` into `out` without allocating.
    ///
    /// `out` is fully overwritten; its previous contents only matter for
    /// shape. The loop is bit-identical to `&self * &rhs`, so hot paths can
    /// ping-pong between two scratch matrices and still reproduce the
    /// allocating product exactly.
    ///
    /// # Panics
    ///
    /// Panics when dimensions are incompatible or `out` has the wrong shape.
    pub fn mul_into(&self, rhs: &DMat, out: &mut DMat) {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matmul");
        assert_eq!(out.rows, self.rows, "output row mismatch in mul_into");
        assert_eq!(out.cols, rhs.cols, "output col mismatch in mul_into");
        out.data.fill(Complex64::ZERO);
        // ikj loop order for cache friendliness (matches `Mul for &DMat`).
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == Complex64::ZERO {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, b) in out_row.iter_mut().zip(rhs_row) {
                    *o += aik * *b;
                }
            }
        }
    }

    /// Copies `src` into `self`, reusing the existing allocation when the
    /// element counts match.
    pub fn copy_from(&mut self, src: &DMat) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Solves `self * X = B` by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrix`] when a pivot underflows.
    ///
    /// # Panics
    ///
    /// Panics when shapes are incompatible.
    pub fn solve(&self, b: &DMat) -> Result<DMat, SingularMatrix> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(self.rows, b.rows, "rhs row mismatch");
        let n = self.rows;
        let m = b.cols;
        let mut a = self.clone();
        let mut x = b.clone();
        for col in 0..n {
            // Partial pivot.
            let mut piv = col;
            let mut best = a[(col, col)].abs();
            for r in (col + 1)..n {
                let v = a[(r, col)].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-300 {
                return Err(SingularMatrix);
            }
            if piv != col {
                for c in 0..n {
                    let t = a[(col, c)];
                    a[(col, c)] = a[(piv, c)];
                    a[(piv, c)] = t;
                }
                for c in 0..m {
                    let t = x[(col, c)];
                    x[(col, c)] = x[(piv, c)];
                    x[(piv, c)] = t;
                }
            }
            let inv = a[(col, col)].inv();
            for r in (col + 1)..n {
                let f = a[(r, col)] * inv;
                if f == Complex64::ZERO {
                    continue;
                }
                for c in col..n {
                    let v = a[(col, c)];
                    a[(r, c)] -= f * v;
                }
                for c in 0..m {
                    let v = x[(col, c)];
                    x[(r, c)] -= f * v;
                }
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let inv = a[(col, col)].inv();
            for c in 0..m {
                let mut acc = x[(col, c)];
                for k in (col + 1)..n {
                    acc -= a[(col, k)] * x[(k, c)];
                }
                x[(col, c)] = acc * inv;
            }
        }
        Ok(x)
    }

    /// Extracts a 4x4 [`Mat4`] from the top-left corner or a full 4x4.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is smaller than 4x4.
    pub fn to_mat4(&self) -> Mat4 {
        assert!(self.rows >= 4 && self.cols >= 4);
        let mut m = Mat4::zero();
        for r in 0..4 {
            for c in 0..4 {
                m[(r, c)] = self[(r, c)];
            }
        }
        m
    }

    /// Embeds a [`Mat4`] as a 4x4 dynamic matrix.
    pub fn from_mat4(m: &Mat4) -> DMat {
        let mut d = DMat::zeros(4, 4);
        for r in 0..4 {
            for c in 0..4 {
                d[(r, c)] = m.at(r, c);
            }
        }
        d
    }
}

/// Error returned by [`DMat::solve`] when the system is singular.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SingularMatrix;

impl fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular to working precision")
    }
}

impl std::error::Error for SingularMatrix {}

impl Index<(usize, usize)> for DMat {
    type Output = Complex64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for DMat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &DMat {
    type Output = DMat;
    fn add(self, rhs: &DMat) -> DMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let mut m = self.clone();
        for (a, b) in m.data.iter_mut().zip(&rhs.data) {
            *a += *b;
        }
        m
    }
}

impl Sub for &DMat {
    type Output = DMat;
    fn sub(self, rhs: &DMat) -> DMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let mut m = self.clone();
        for (a, b) in m.data.iter_mut().zip(&rhs.data) {
            *a -= *b;
        }
        m
    }
}

impl Mul for &DMat {
    type Output = DMat;
    fn mul(self, rhs: &DMat) -> DMat {
        let mut out = DMat::zeros(self.rows, rhs.cols);
        self.mul_into(rhs, &mut out);
        out
    }
}

impl Mul for DMat {
    type Output = DMat;
    fn mul(self, rhs: DMat) -> DMat {
        &self * &rhs
    }
}

impl fmt::Display for DMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                write!(f, "{} ", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication() {
        let mut a = DMat::zeros(3, 3);
        for r in 0..3 {
            for c in 0..3 {
                a[(r, c)] = Complex64::new((r + 3 * c) as f64, (r as f64) - (c as f64));
            }
        }
        let i = DMat::identity(3);
        assert!((&a * &i).approx_eq(&a, 1e-15));
        assert!((&i * &a).approx_eq(&a, 1e-15));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let a = DMat::from_vec(
            2,
            2,
            vec![
                Complex64::real(1.0),
                Complex64::real(2.0),
                Complex64::real(3.0),
                Complex64::real(4.0),
            ],
        );
        let b = DMat::identity(3);
        let k = a.kron(&b);
        assert_eq!(k.rows(), 6);
        assert_eq!(k[(0, 0)], Complex64::real(1.0));
        assert_eq!(k[(3, 0)], Complex64::real(3.0));
        assert_eq!(k[(4, 1)], Complex64::real(3.0));
        assert_eq!(k[(5, 5)], Complex64::real(4.0));
    }

    #[test]
    fn solve_round_trip() {
        let n = 5;
        let mut a = DMat::zeros(n, n);
        // Deterministic well-conditioned matrix.
        for r in 0..n {
            for c in 0..n {
                let v = ((r * 7 + c * 3) % 11) as f64 / 11.0;
                a[(r, c)] = Complex64::new(v, ((r + 2 * c) % 5) as f64 / 7.0);
            }
            a[(r, r)] += Complex64::real(3.0);
        }
        let b = DMat::identity(n);
        let x = a.solve(&b).unwrap();
        assert!((&a * &x).approx_eq(&DMat::identity(n), 1e-10));
    }

    #[test]
    fn solve_singular_reports_error() {
        let a = DMat::zeros(3, 3);
        assert_eq!(a.solve(&DMat::identity(3)), Err(SingularMatrix));
    }

    #[test]
    fn hermitian_detection() {
        let mut h = DMat::zeros(2, 2);
        h[(0, 0)] = Complex64::real(1.0);
        h[(1, 1)] = Complex64::real(-2.0);
        h[(0, 1)] = Complex64::new(0.5, 0.25);
        h[(1, 0)] = Complex64::new(0.5, -0.25);
        assert!(h.is_hermitian(1e-15));
        h[(1, 0)] = Complex64::new(0.5, 0.25);
        assert!(!h.is_hermitian(1e-15));
    }

    #[test]
    fn mat4_round_trip() {
        let m = Mat4::cnot();
        let d = DMat::from_mat4(&m);
        assert!(d.to_mat4().approx_eq(&m, 1e-15));
        assert!(d.is_unitary(1e-12));
    }

    #[test]
    fn mul_vec_matches_mat_mul() {
        let a = DMat::from_vec(
            2,
            2,
            vec![
                Complex64::new(1.0, 1.0),
                Complex64::real(2.0),
                Complex64::imag(3.0),
                Complex64::real(4.0),
            ],
        );
        let v = vec![Complex64::real(1.0), Complex64::new(0.0, -1.0)];
        let got = a.mul_vec(&v);
        assert!(got[0].approx_eq(Complex64::new(1.0, -1.0), 1e-14));
        assert!(got[1].approx_eq(Complex64::new(0.0, -1.0), 1e-14));
    }

    #[test]
    fn mul_into_is_bit_identical_to_mul_and_reuses_storage() {
        let a = DMat::from_vec(
            2,
            3,
            (0..6)
                .map(|k| Complex64::new(k as f64 * 0.3, 1.0 - k as f64))
                .collect(),
        );
        let b = DMat::from_vec(
            3,
            2,
            (0..6)
                .map(|k| Complex64::new((k as f64).sin(), 0.25 * k as f64))
                .collect(),
        );
        let expected = &a * &b;
        // Pre-fill out with garbage to prove it is fully overwritten.
        let mut out = DMat::from_vec(2, 2, vec![Complex64::real(9.0); 4]);
        a.mul_into(&b, &mut out);
        for (x, y) in out.as_slice().iter().zip(expected.as_slice()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }

        let mut copy = DMat::zeros(2, 2);
        copy.copy_from(&expected);
        assert!(copy.approx_eq(&expected, 0.0));
    }
}
