//! Small singular value decompositions and polar projections.
//!
//! Gate synthesis only ever needs the closed-form 2x2 SVD (for the local
//! "environment" update) and a polar projection onto the unitary group for
//! 4x4 and dynamic matrices (for extracting gates from noisy tomography or
//! simulation data).

use crate::{eigh, Complex64, DMat, Mat2, Mat4};

/// Closed-form singular value decomposition of a 2x2 complex matrix:
/// `a = u * diag(s) * v^dagger` with `s[0] >= s[1] >= 0` and unitary `u`, `v`.
///
/// # Examples
///
/// ```
/// use nsb_math::{svd2, Mat2};
/// let a = Mat2::h();
/// let (u, s, v) = svd2(&a);
/// assert!((s[0] - 1.0).abs() < 1e-12 && (s[1] - 1.0).abs() < 1e-12);
/// assert!(u.is_unitary(1e-12) && v.is_unitary(1e-12));
/// ```
pub fn svd2(a: &Mat2) -> (Mat2, [f64; 2], Mat2) {
    // Eigendecompose the 2x2 Hermitian PSD matrix h = a^dag a.
    let h = a.adjoint() * *a;
    let h11 = h.at(0, 0).re;
    let h22 = h.at(1, 1).re;
    let h12 = h.at(0, 1);
    let tr = h11 + h22;
    let gap = ((h11 - h22) * (h11 - h22) + 4.0 * h12.norm_sqr()).sqrt();
    let l1 = ((tr + gap) / 2.0).max(0.0);
    let l2 = ((tr - gap) / 2.0).max(0.0);
    // Eigenvector for l1.
    let v1 = if h12.abs() > 1e-300 {
        normalize2([h12, Complex64::real(l1 - h11)])
    } else if h11 >= h22 {
        [Complex64::ONE, Complex64::ZERO]
    } else {
        [Complex64::ZERO, Complex64::ONE]
    };
    // v2 orthogonal to v1.
    let v2 = [-v1[1].conj(), v1[0].conj()];
    let v = Mat2::from_rows([[v1[0], v2[0]], [v1[1], v2[1]]]);
    let s1 = l1.sqrt();
    let s2 = l2.sqrt();
    // u columns: u_i = a v_i / s_i, completed orthogonally when s_i ~ 0.
    let av1 = mul_vec2(a, v1);
    let av2 = mul_vec2(a, v2);
    let u1 = if s1 > 1e-150 {
        [av1[0] / s1, av1[1] / s1]
    } else {
        [Complex64::ONE, Complex64::ZERO]
    };
    let u2 = if s2 > s1 * 1e-13 && s2 > 1e-150 {
        [av2[0] / s2, av2[1] / s2]
    } else {
        // Orthogonal completion of u1.
        [-u1[1].conj(), u1[0].conj()]
    };
    let u = Mat2::from_rows([[u1[0], u2[0]], [u1[1], u2[1]]]);
    (u, [s1, s2], v)
}

fn normalize2(v: [Complex64; 2]) -> [Complex64; 2] {
    let n = (v[0].norm_sqr() + v[1].norm_sqr()).sqrt();
    [v[0] / n, v[1] / n]
}

fn mul_vec2(a: &Mat2, v: [Complex64; 2]) -> [Complex64; 2] {
    [
        a.at(0, 0) * v[0] + a.at(0, 1) * v[1],
        a.at(1, 0) * v[0] + a.at(1, 1) * v[1],
    ]
}

/// Returns the unitary `w` maximizing `Re tr(w e)`, namely `v u^dagger` from
/// the SVD `e = u s v^dagger`. The achieved maximum is `s[0] + s[1]`.
///
/// This is the core update of the alternating gate-synthesis optimizer.
pub fn max_trace_unitary(e: &Mat2) -> Mat2 {
    let (u, _s, v) = svd2(e);
    v * u.adjoint()
}

/// Projects a full-rank matrix onto the nearest unitary (polar factor),
/// using `u = a (a^dagger a)^{-1/2}` via a Hermitian eigendecomposition.
///
/// # Panics
///
/// Panics when `a` is not square or is rank-deficient to working precision.
pub fn polar_unitary(a: &DMat) -> DMat {
    let n = a.rows();
    assert_eq!(n, a.cols(), "polar projection requires a square matrix");
    let h = &a.adjoint() * a;
    let e = eigh(&h);
    let inv_sqrt = e.map(|lam| {
        assert!(
            lam > 1e-20,
            "polar projection of a rank-deficient matrix (eigenvalue {lam})"
        );
        Complex64::real(1.0 / lam.sqrt())
    });
    a * &inv_sqrt
}

/// Polar projection specialized to 4x4 matrices (two-qubit gates).
pub fn polar_unitary4(a: &Mat4) -> Mat4 {
    polar_unitary(&DMat::from_mat4(a)).to_mat4()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_svd(a: &Mat2) {
        let (u, s, v) = svd2(a);
        assert!(u.is_unitary(1e-10), "u not unitary for {a}");
        assert!(v.is_unitary(1e-10), "v not unitary for {a}");
        assert!(s[0] >= s[1] && s[1] >= -1e-12);
        let sig = Mat2::from_rows([
            [Complex64::real(s[0]), Complex64::ZERO],
            [Complex64::ZERO, Complex64::real(s[1])],
        ]);
        let back = u * sig * v.adjoint();
        assert!(back.approx_eq(a, 1e-10), "reconstruction failed for {a}");
    }

    #[test]
    fn svd_of_assorted_matrices() {
        let cases = [
            Mat2::identity(),
            Mat2::h(),
            Mat2::from_rows([
                [Complex64::new(1.0, 2.0), Complex64::new(-0.5, 0.3)],
                [Complex64::new(0.0, -1.0), Complex64::new(2.0, 0.1)],
            ]),
            Mat2::from_rows([
                [Complex64::real(3.0), Complex64::ZERO],
                [Complex64::ZERO, Complex64::ZERO],
            ]),
            // Rank-1 matrix.
            Mat2::from_rows([
                [Complex64::new(1.0, 1.0), Complex64::new(2.0, 2.0)],
                [Complex64::new(0.5, 0.5), Complex64::new(1.0, 1.0)],
            ]),
            Mat2::zero(),
        ];
        for a in &cases {
            check_svd(a);
        }
    }

    #[test]
    fn max_trace_unitary_beats_random_rotations() {
        let e = Mat2::from_rows([
            [Complex64::new(0.3, -0.4), Complex64::new(1.2, 0.0)],
            [Complex64::new(-0.7, 0.2), Complex64::new(0.1, 0.9)],
        ]);
        let w = max_trace_unitary(&e);
        assert!(w.is_unitary(1e-10));
        let best = (w * e).trace().re;
        for k in 0..32 {
            let theta = k as f64 * 0.2;
            let cand = Mat2::u3(theta, 0.3 * k as f64, -0.1 * k as f64);
            let val = (cand * e).trace().re;
            assert!(val <= best + 1e-9);
        }
        // Optimum equals the nuclear norm.
        let (_, s, _) = svd2(&e);
        assert!((best - (s[0] + s[1])).abs() < 1e-9);
    }

    #[test]
    fn polar_of_unitary_is_identity_map() {
        let u = DMat::from_mat4(&Mat4::cnot());
        assert!(polar_unitary(&u).approx_eq(&u, 1e-10));
    }

    #[test]
    fn polar_projects_scaled_unitary() {
        let u = Mat4::sqrt_iswap();
        let scaled = u.scale(Complex64::real(0.9));
        let p = polar_unitary4(&scaled);
        assert!(p.approx_eq(&u, 1e-9));
    }

    #[test]
    fn polar_of_perturbed_unitary_is_unitary() {
        let mut a = DMat::from_mat4(&Mat4::iswap());
        a[(0, 1)] += Complex64::new(0.01, -0.02);
        a[(2, 3)] += Complex64::new(-0.015, 0.01);
        let p = polar_unitary(&a);
        assert!(p.is_unitary(1e-10));
        assert!((&p - &a).norm() < 0.1);
    }
}
