//! # nsb-math
//!
//! Self-contained complex linear algebra for the *nonstandard two-qubit
//! basis gates* workspace (a reproduction of "Let Each Quantum Bit Choose
//! Its Basis Gates", MICRO 2022).
//!
//! The crate deliberately implements everything from scratch — complex
//! scalars, fixed-size 2x2/4x4 matrices, heap matrices, a Hermitian Jacobi
//! eigensolver, a Pade matrix exponential, small SVDs and polar projections,
//! and Haar-random sampling — so that the rest of the workspace has no
//! external numerical dependencies.
//!
//! ## Quick tour
//!
//! ```
//! use nsb_math::{expm_i_h_t, DMat, Mat2, Mat4};
//!
//! // Single- and two-qubit gates:
//! let bell_maker = Mat4::cnot() * Mat4::kron(&Mat2::h(), &Mat2::identity());
//! assert!(bell_maker.is_unitary(1e-12));
//!
//! // Time evolution under a Hermitian generator:
//! let h = DMat::identity(3);
//! let u = expm_i_h_t(&h, 0.5);
//! assert!(u.is_unitary(1e-12));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod dmat;
mod eig;
mod expm;
mod mat2;
mod mat4;
mod random;
mod svd;

pub use complex::Complex64;
pub use dmat::{DMat, SingularMatrix};
pub use eig::{eigh, HermitianEig};
pub use expm::{expm, expm_generic, expm_i_h_t, expm_i_h_t_mat4, expm_mat4};
pub use mat2::Mat2;
pub use mat4::Mat4;
pub use random::{complex_normal, haar_su2, haar_u4, haar_unitary, random_local4, standard_normal};
pub use svd::{max_trace_unitary, polar_unitary, polar_unitary4, svd2};
