//! Matrix exponential via Pade approximation with scaling and squaring.
//!
//! This follows the classic Higham degree-13 scheme used by SciPy/Expokit,
//! restricted to the modest matrix sizes this workspace needs (the
//! 27-dimensional transmon-coupler-transmon Hilbert space).

use crate::{Complex64, DMat};

/// Degree-13 Pade coefficients.
const B13: [f64; 14] = [
    64764752532480000.0,
    32382376266240000.0,
    7771770303897600.0,
    1187353796428800.0,
    129060195264000.0,
    10559470521600.0,
    670442572800.0,
    33522128640.0,
    1323241920.0,
    40840800.0,
    960960.0,
    16380.0,
    182.0,
    1.0,
];

/// 1-norm threshold above which scaling is applied for degree 13.
const THETA13: f64 = 5.371920351148152;

/// Computes the matrix exponential `exp(a)`.
///
/// # Panics
///
/// Panics when `a` is not square, or (in the astronomically unlikely event)
/// the internal Pade solve encounters a singular system.
///
/// # Examples
///
/// ```
/// use nsb_math::{expm, Complex64, DMat};
/// let z = DMat::zeros(3, 3);
/// assert!(expm(&z).approx_eq(&DMat::identity(3), 1e-14));
/// ```
pub fn expm(a: &DMat) -> DMat {
    let n = a.rows();
    assert_eq!(n, a.cols(), "expm requires a square matrix");
    let norm = a.one_norm();
    let s = if norm > THETA13 {
        (norm / THETA13).log2().ceil() as u32
    } else {
        0
    };
    let scaled = a.scale(Complex64::real(0.5f64.powi(s as i32)));
    let mut result = pade13(&scaled);
    for _ in 0..s {
        result = &result * &result;
    }
    result
}

/// Computes `exp(-i h t)` for a Hermitian generator `h`; convenience wrapper
/// used by the time-evolution code. Produces a unitary by construction of
/// the Pade approximant up to rounding.
pub fn expm_i_h_t(h: &DMat, t: f64) -> DMat {
    let g = h.scale(Complex64::new(0.0, -t));
    expm(&g)
}

fn pade13(a: &DMat) -> DMat {
    let n = a.rows();
    let ident = DMat::identity(n);
    let a2 = a * a;
    let a4 = &a2 * &a2;
    let a6 = &a2 * &a4;
    // U = A (A6 (b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I)
    let inner_u = &(&a6.scale(Complex64::real(B13[13])) + &a4.scale(Complex64::real(B13[11])))
        + &a2.scale(Complex64::real(B13[9]));
    let u_poly = &(&(&(&a6 * &inner_u) + &a6.scale(Complex64::real(B13[7])))
        + &a4.scale(Complex64::real(B13[5])))
        + &(&a2.scale(Complex64::real(B13[3])) + &ident.scale(Complex64::real(B13[1])));
    let u = a * &u_poly;
    // V = A6 (b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
    let inner_v = &(&a6.scale(Complex64::real(B13[12])) + &a4.scale(Complex64::real(B13[10])))
        + &a2.scale(Complex64::real(B13[8]));
    let v = &(&(&(&a6 * &inner_v) + &a6.scale(Complex64::real(B13[6])))
        + &a4.scale(Complex64::real(B13[4])))
        + &(&a2.scale(Complex64::real(B13[2])) + &ident.scale(Complex64::real(B13[0])));
    // expm = (V - U)^{-1} (V + U)
    let lhs = &v - &u;
    let rhs = &v + &u;
    // lint: allow(no-expect) — Pade denominator of a scaled matrix is provably nonsingular
    lhs.solve(&rhs).expect("Pade denominator is nonsingular")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigh;

    #[test]
    fn exp_zero_is_identity() {
        assert!(expm(&DMat::zeros(4, 4)).approx_eq(&DMat::identity(4), 1e-13));
    }

    #[test]
    fn exp_diagonal() {
        let d = DMat::from_diag(&[
            Complex64::real(1.0),
            Complex64::real(-2.0),
            Complex64::imag(0.5),
        ]);
        let e = expm(&d);
        assert!((e[(0, 0)] - Complex64::real(1f64.exp())).abs() < 1e-12);
        assert!((e[(1, 1)] - Complex64::real((-2f64).exp())).abs() < 1e-12);
        assert!((e[(2, 2)] - Complex64::cis(0.5)).abs() < 1e-12);
    }

    #[test]
    fn exp_of_anti_hermitian_is_unitary() {
        let mut h = DMat::zeros(5, 5);
        for r in 0..5 {
            for c in 0..5 {
                let re = ((r * 3 + c) % 7) as f64;
                let im = if r == c {
                    0.0
                } else {
                    ((r + 2 * c) % 5) as f64
                };
                h[(r, c)] = Complex64::new(re, im);
            }
        }
        let ha = h.adjoint();
        let herm = (&h + &ha).scale(Complex64::real(0.5));
        let u = expm_i_h_t(&herm, 0.77);
        assert!(u.is_unitary(1e-11));
    }

    #[test]
    fn matches_eig_based_exponential() {
        let mut h = DMat::zeros(6, 6);
        for r in 0..6 {
            for c in 0..6 {
                let re = ((r * 5 + c * 3) % 11) as f64 / 3.0;
                let im = if r == c {
                    0.0
                } else {
                    ((r * 2 + c) % 7) as f64 / 4.0
                };
                h[(r, c)] = Complex64::new(re, im);
            }
        }
        let ha = h.adjoint();
        let herm = (&h + &ha).scale(Complex64::real(0.5));
        let t = 1.3;
        let via_pade = expm_i_h_t(&herm, t);
        let via_eig = eigh(&herm).map(|lam| Complex64::cis(-lam * t));
        assert!(via_pade.approx_eq(&via_eig, 1e-9));
    }

    #[test]
    fn large_norm_triggers_scaling() {
        // Norm >> theta13 exercises the squaring branch.
        let h = DMat::from_diag(&[Complex64::real(40.0), Complex64::real(-35.0)]);
        let e = expm(&h.scale(Complex64::imag(-1.0)));
        assert!((e[(0, 0)] - Complex64::cis(-40.0)).abs() < 1e-9);
        assert!((e[(1, 1)] - Complex64::cis(35.0)).abs() < 1e-9);
    }

    #[test]
    fn additivity_for_commuting() {
        let d1 = DMat::from_diag(&[Complex64::imag(0.4), Complex64::imag(-0.9)]);
        let d2 = DMat::from_diag(&[Complex64::imag(1.1), Complex64::imag(0.3)]);
        let sum = &d1 + &d2;
        let lhs = expm(&sum);
        let rhs = &expm(&d1) * &expm(&d2);
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }
}
