//! Matrix exponential via Pade approximation with scaling and squaring.
//!
//! This follows the classic Higham degree-13 scheme used by SciPy/Expokit,
//! restricted to the modest matrix sizes this workspace needs (the
//! 27-dimensional transmon-coupler-transmon Hilbert space).
//!
//! Two implementations share the coefficients: the generic heap-backed
//! [`expm_generic`] for arbitrary dimensions, and the stack-allocated
//! [`expm_mat4`] specialized to [`Mat4`] for the two-qubit hot paths (no
//! heap traffic at all — every intermediate lives on the stack). [`expm`]
//! dispatches 4x4 inputs to the specialized kernel automatically.

use crate::{Complex64, DMat, Mat4};

/// Degree-13 Pade coefficients.
const B13: [f64; 14] = [
    64764752532480000.0,
    32382376266240000.0,
    7771770303897600.0,
    1187353796428800.0,
    129060195264000.0,
    10559470521600.0,
    670442572800.0,
    33522128640.0,
    1323241920.0,
    40840800.0,
    960960.0,
    16380.0,
    182.0,
    1.0,
];

/// 1-norm threshold above which scaling is applied for degree 13.
const THETA13: f64 = 5.371920351148152;

/// Computes the matrix exponential `exp(a)`.
///
/// # Panics
///
/// Panics when `a` is not square, or (in the astronomically unlikely event)
/// the internal Pade solve encounters a singular system.
///
/// # Examples
///
/// ```
/// use nsb_math::{expm, Complex64, DMat};
/// let z = DMat::zeros(3, 3);
/// assert!(expm(&z).approx_eq(&DMat::identity(3), 1e-14));
/// ```
pub fn expm(a: &DMat) -> DMat {
    let n = a.rows();
    assert_eq!(n, a.cols(), "expm requires a square matrix");
    if n == 4 {
        return DMat::from_mat4(&expm_mat4(&a.to_mat4()));
    }
    expm_generic(a)
}

/// The generic heap-backed Pade path for any square matrix, without the
/// 4x4 fast-path dispatch of [`expm`]. Exposed so tests can compare
/// [`expm_mat4`] against an independent reference implementation.
///
/// # Panics
///
/// Same contract as [`expm`].
pub fn expm_generic(a: &DMat) -> DMat {
    let n = a.rows();
    assert_eq!(n, a.cols(), "expm requires a square matrix");
    let norm = a.one_norm();
    let s = if norm > THETA13 {
        (norm / THETA13).log2().ceil() as u32
    } else {
        0
    };
    let scaled = a.scale(Complex64::real(0.5f64.powi(s as i32)));
    let mut result = pade13(&scaled);
    for _ in 0..s {
        result = &result * &result;
    }
    result
}

/// Stack-allocated matrix exponential `exp(a)` for 4x4 matrices: the same
/// Higham degree-13 Pade scheme with scaling and squaring as [`expm`], but
/// every intermediate is a [`Mat4`] on the stack — no heap allocation at
/// any point. This is the kernel behind every 4x4 `expm` call on the
/// simulation and synthesis hot paths.
pub fn expm_mat4(a: &Mat4) -> Mat4 {
    let norm = a.one_norm();
    let s = if norm > THETA13 {
        (norm / THETA13).log2().ceil() as u32
    } else {
        0
    };
    let scaled = a.scale(Complex64::real(0.5f64.powi(s as i32)));
    let mut result = pade13_mat4(&scaled);
    for _ in 0..s {
        result = result * result;
    }
    result
}

/// Computes `exp(-i h t)` for a Hermitian generator `h`; convenience wrapper
/// used by the time-evolution code. Produces a unitary by construction of
/// the Pade approximant up to rounding. 4x4 generators route through the
/// allocation-free [`expm_mat4`] kernel.
pub fn expm_i_h_t(h: &DMat, t: f64) -> DMat {
    if h.rows() == 4 && h.cols() == 4 {
        return DMat::from_mat4(&expm_i_h_t_mat4(&h.to_mat4(), t));
    }
    let g = h.scale(Complex64::new(0.0, -t));
    expm_generic(&g)
}

/// `exp(-i h t)` for a Hermitian 4x4 generator, entirely on the stack.
pub fn expm_i_h_t_mat4(h: &Mat4, t: f64) -> Mat4 {
    expm_mat4(&h.scale(Complex64::new(0.0, -t)))
}

fn pade13(a: &DMat) -> DMat {
    let n = a.rows();
    let ident = DMat::identity(n);
    let a2 = a * a;
    let a4 = &a2 * &a2;
    let a6 = &a2 * &a4;
    // U = A (A6 (b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I)
    let inner_u = &(&a6.scale(Complex64::real(B13[13])) + &a4.scale(Complex64::real(B13[11])))
        + &a2.scale(Complex64::real(B13[9]));
    let u_poly = &(&(&(&a6 * &inner_u) + &a6.scale(Complex64::real(B13[7])))
        + &a4.scale(Complex64::real(B13[5])))
        + &(&a2.scale(Complex64::real(B13[3])) + &ident.scale(Complex64::real(B13[1])));
    let u = a * &u_poly;
    // V = A6 (b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
    let inner_v = &(&a6.scale(Complex64::real(B13[12])) + &a4.scale(Complex64::real(B13[10])))
        + &a2.scale(Complex64::real(B13[8]));
    let v = &(&(&(&a6 * &inner_v) + &a6.scale(Complex64::real(B13[6])))
        + &a4.scale(Complex64::real(B13[4])))
        + &(&a2.scale(Complex64::real(B13[2])) + &ident.scale(Complex64::real(B13[0])));
    // expm = (V - U)^{-1} (V + U)
    let lhs = &v - &u;
    let rhs = &v + &u;
    // lint: allow(no-expect) — Pade denominator of a scaled matrix is provably nonsingular
    lhs.solve(&rhs).expect("Pade denominator is nonsingular")
}

/// Degree-13 Pade approximant specialized to [`Mat4`]: identical polynomial
/// and solve as [`pade13`], with all intermediates on the stack.
fn pade13_mat4(a: &Mat4) -> Mat4 {
    let b = |i: usize| Complex64::real(B13[i]);
    let ident = Mat4::identity();
    let a2 = *a * *a;
    let a4 = a2 * a2;
    let a6 = a2 * a4;
    // U = A (A6 (b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I)
    let inner_u = a6.scale(b(13)) + a4.scale(b(11)) + a2.scale(b(9));
    let u_poly =
        a6 * inner_u + a6.scale(b(7)) + a4.scale(b(5)) + (a2.scale(b(3)) + ident.scale(b(1)));
    let u = *a * u_poly;
    // V = A6 (b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
    let inner_v = a6.scale(b(12)) + a4.scale(b(10)) + a2.scale(b(8));
    let v = a6 * inner_v + a6.scale(b(6)) + a4.scale(b(4)) + (a2.scale(b(2)) + ident.scale(b(0)));
    // expm = (V - U)^{-1} (V + U)
    solve4(v - u, v + u)
}

/// Solves the 4x4 system `a X = rhs` by Gaussian elimination with partial
/// pivoting, mirroring [`DMat::solve`] on stack storage. The only caller
/// passes a Pade denominator, which is provably nonsingular, so a pivot
/// underflow falls back to the identity only to keep the function total
/// (it cannot happen for the inputs this module produces).
fn solve4(a: Mat4, rhs: Mat4) -> Mat4 {
    let mut a = a;
    let mut x = rhs;
    for col in 0..4 {
        // Partial pivot.
        let mut piv = col;
        let mut best = a.at(col, col).abs();
        for r in (col + 1)..4 {
            let v = a.at(r, col).abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best < 1e-300 {
            return Mat4::identity(); // unreachable for Pade denominators
        }
        if piv != col {
            for c in 0..4 {
                let t = a.at(col, c);
                a[(col, c)] = a.at(piv, c);
                a[(piv, c)] = t;
                let t = x.at(col, c);
                x[(col, c)] = x.at(piv, c);
                x[(piv, c)] = t;
            }
        }
        let inv = a.at(col, col).inv();
        for r in (col + 1)..4 {
            let f = a.at(r, col) * inv;
            if f == Complex64::ZERO {
                continue;
            }
            for c in col..4 {
                let v = a.at(col, c);
                a[(r, c)] -= f * v;
            }
            for c in 0..4 {
                let v = x.at(col, c);
                x[(r, c)] -= f * v;
            }
        }
    }
    // Back substitution.
    for col in (0..4).rev() {
        let inv = a.at(col, col).inv();
        for c in 0..4 {
            let mut acc = x.at(col, c);
            for k in (col + 1)..4 {
                acc -= a.at(col, k) * x.at(k, c);
            }
            x[(col, c)] = acc * inv;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigh;

    #[test]
    fn exp_zero_is_identity() {
        assert!(expm(&DMat::zeros(4, 4)).approx_eq(&DMat::identity(4), 1e-13));
    }

    #[test]
    fn exp_diagonal() {
        let d = DMat::from_diag(&[
            Complex64::real(1.0),
            Complex64::real(-2.0),
            Complex64::imag(0.5),
        ]);
        let e = expm(&d);
        assert!((e[(0, 0)] - Complex64::real(1f64.exp())).abs() < 1e-12);
        assert!((e[(1, 1)] - Complex64::real((-2f64).exp())).abs() < 1e-12);
        assert!((e[(2, 2)] - Complex64::cis(0.5)).abs() < 1e-12);
    }

    #[test]
    fn exp_of_anti_hermitian_is_unitary() {
        let mut h = DMat::zeros(5, 5);
        for r in 0..5 {
            for c in 0..5 {
                let re = ((r * 3 + c) % 7) as f64;
                let im = if r == c {
                    0.0
                } else {
                    ((r + 2 * c) % 5) as f64
                };
                h[(r, c)] = Complex64::new(re, im);
            }
        }
        let ha = h.adjoint();
        let herm = (&h + &ha).scale(Complex64::real(0.5));
        let u = expm_i_h_t(&herm, 0.77);
        assert!(u.is_unitary(1e-11));
    }

    #[test]
    fn matches_eig_based_exponential() {
        let mut h = DMat::zeros(6, 6);
        for r in 0..6 {
            for c in 0..6 {
                let re = ((r * 5 + c * 3) % 11) as f64 / 3.0;
                let im = if r == c {
                    0.0
                } else {
                    ((r * 2 + c) % 7) as f64 / 4.0
                };
                h[(r, c)] = Complex64::new(re, im);
            }
        }
        let ha = h.adjoint();
        let herm = (&h + &ha).scale(Complex64::real(0.5));
        let t = 1.3;
        let via_pade = expm_i_h_t(&herm, t);
        let via_eig = eigh(&herm).map(|lam| Complex64::cis(-lam * t));
        assert!(via_pade.approx_eq(&via_eig, 1e-9));
    }

    #[test]
    fn large_norm_triggers_scaling() {
        // Norm >> theta13 exercises the squaring branch.
        let h = DMat::from_diag(&[Complex64::real(40.0), Complex64::real(-35.0)]);
        let e = expm(&h.scale(Complex64::imag(-1.0)));
        assert!((e[(0, 0)] - Complex64::cis(-40.0)).abs() < 1e-9);
        assert!((e[(1, 1)] - Complex64::cis(35.0)).abs() < 1e-9);
    }

    #[test]
    fn additivity_for_commuting() {
        let d1 = DMat::from_diag(&[Complex64::imag(0.4), Complex64::imag(-0.9)]);
        let d2 = DMat::from_diag(&[Complex64::imag(1.1), Complex64::imag(0.3)]);
        let sum = &d1 + &d2;
        let lhs = expm(&sum);
        let rhs = &expm(&d1) * &expm(&d2);
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn mat4_kernel_exp_zero_is_identity() {
        assert!(expm_mat4(&Mat4::zero()).approx_eq(&Mat4::identity(), 1e-14));
    }

    #[test]
    fn mat4_kernel_is_unitary_for_anti_hermitian() {
        let mut h = Mat4::zero();
        for r in 0..4 {
            for c in 0..4 {
                let re = ((r * 3 + c) % 7) as f64 / 2.0;
                let im = if r == c {
                    0.0
                } else {
                    ((r + 2 * c) % 5) as f64 / 3.0
                };
                h[(r, c)] = Complex64::new(re, im);
            }
        }
        let herm = (h + h.adjoint()).scale(Complex64::real(0.5));
        let u = expm_i_h_t_mat4(&herm, 0.77);
        assert!(u.is_unitary(1e-12));
        // The dispatching DMat entry points agree with the kernel.
        let d = DMat::from_mat4(&herm);
        assert!(expm_i_h_t(&d, 0.77).to_mat4().approx_eq(&u, 1e-13));
    }

    #[test]
    fn mat4_kernel_squaring_branch_matches_generic() {
        // Norm >> theta13 exercises scaling-and-squaring in both paths.
        let mut h = Mat4::zero();
        for i in 0..4 {
            h[(i, i)] =
                Complex64::real(25.0 * (i as f64 + 1.0) * if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        let g = h.scale(Complex64::imag(-1.0));
        let via_mat4 = expm_mat4(&g);
        let via_generic = expm_generic(&DMat::from_mat4(&g));
        assert!(via_generic.to_mat4().approx_eq(&via_mat4, 1e-9));
        assert!((via_mat4.at(0, 0) - Complex64::cis(-25.0)).abs() < 1e-9);
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        /// A random anti-Hermitian 4x4 built from 16 uniform draws:
        /// real diagonal made purely imaginary, off-diagonals paired as
        /// `a_ij = -conj(a_ji)`.
        fn anti_hermitian(seed: [f64; 16], scale: f64) -> Mat4 {
            let mut m = Mat4::zero();
            for i in 0..4 {
                m[(i, i)] = Complex64::imag(scale * seed[i]);
            }
            let mut idx = 4;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    let z = Complex64::new(scale * seed[idx], scale * seed[(idx + 5) % 16]);
                    m[(i, j)] = z;
                    m[(j, i)] = -z.conj();
                    idx += 1;
                }
            }
            m
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn expm_mat4_matches_generic_on_anti_hermitian(
                a in -1.0f64..1.0, b in -1.0f64..1.0, c in -1.0f64..1.0, d in -1.0f64..1.0,
            ) {
                // Expand four uniform draws into 16 deterministic values.
                let mut seed = [0.0f64; 16];
                for (k, s) in seed.iter_mut().enumerate() {
                    let base = [a, b, c, d][k % 4];
                    *s = (base * (k as f64 + 1.0) * 0.37).sin();
                }
                // Cover both the direct and the scaling-and-squaring branch.
                for scale in [0.8, 9.5] {
                    let m = anti_hermitian(seed, scale);
                    let fast = expm_mat4(&m);
                    let reference = expm_generic(&DMat::from_mat4(&m)).to_mat4();
                    let dist = (fast - reference).norm();
                    prop_assert!(
                        dist < 1e-12,
                        "expm_mat4 deviates from generic expm by {dist:.3e} at scale {scale}"
                    );
                    prop_assert!(fast.is_unitary(1e-11));
                }
            }
        }
    }
}
