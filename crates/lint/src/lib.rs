//! `nsb-lint`: AST-driven static analysis for the workspace.
//!
//! The crate parses every workspace source file with a hand-rolled
//! lexer ([`lexer`]) and token-tree builder ([`tree`]) — no external
//! parser dependency — and walks the trees with a set of structural
//! rules, emitting rustc-style diagnostics ([`diag`]) with file/line
//! spans, a severity, and a machine-readable JSON encoding for CI
//! artifacts. `// lint: allow(rule)` comments suppress a finding on
//! their own line (standalone comments also cover the next line);
//! because markers are parsed from real comments after lexing, string
//! literals can neither suppress nor trigger anything.
//!
//! Rule families:
//!
//! * **`lock-order`** — a static deadlock detector over `std::sync`
//!   usage: lock-acquisition-order cycles, re-entrant acquisitions, and
//!   guards held across blocking calls (`Condvar` waits, `recv`,
//!   `join`). See [`rules::lock_order`].
//! * **`error-variant-coverage`** — every variant of a `pub enum
//!   *Error` must be constructed or matched somewhere in test code.
//! * **`float-eq`** — exact `==`/`!=` against visibly floating-point
//!   operands in non-test code.
//! * **`no-unwrap` / `no-expect` / `no-panic` / `no-todo` / `no-dbg` /
//!   `no-println` / `forbid-unsafe`** — the panicking-API rules,
//!   ported from the old line-based analyzer to the AST.
//! * **`prefer-mat4`** — heap-allocated `DMat::zeros(4, 4)` in the
//!   simulation/synthesis hot paths, matched structurally.
//!
//! The entry point is [`run_workspace`]; `cargo run -p xtask -- lint`
//! drives it from the command line.

#![forbid(unsafe_code)]

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod tree;

pub use diag::{to_json, Diagnostic, Severity};
pub use engine::{analyze_files, collect_files, run_workspace};
pub use source::{FileKind, SourceFile};

/// Every rule id with a one-line summary, in catalogue order.
pub const RULES: &[(&str, &str)] = &[
    (
        "lock-order",
        "lock-acquisition cycles, re-entrant locks, and guards held across blocking calls",
    ),
    (
        "error-variant-coverage",
        "every public error enum variant is constructed or matched in test code",
    ),
    (
        "float-eq",
        "exact ==/!= comparison against floating-point operands outside tests",
    ),
    ("no-unwrap", ".unwrap() in library code"),
    ("no-expect", ".expect(…) in library code"),
    ("no-panic", "panic! in library code"),
    ("no-todo", "todo!/unimplemented! anywhere"),
    ("no-dbg", "dbg! anywhere"),
    ("no-println", "println!-family output in library code"),
    (
        "forbid-unsafe",
        "crate roots must declare #![forbid(unsafe_code)]",
    ),
    (
        "prefer-mat4",
        "heap-allocated DMat::zeros(4, 4) in hot-path crates with the stack Mat4 kernel",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_kebab_case() {
        let mut seen = std::collections::BTreeSet::new();
        for (id, summary) in RULES {
            assert!(seen.insert(id), "duplicate rule id {id}");
            assert!(!summary.is_empty());
            assert!(id
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '-' || c.is_ascii_digit()));
        }
    }
}
