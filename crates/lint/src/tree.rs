//! Token trees: the lexer's flat stream grouped by matching delimiters.
//!
//! Rules walk trees rather than raw tokens so nesting is structural: a
//! function body is one brace [`Group`], a call's arguments one paren
//! group, and statement/scope reasoning (for the lock-order analysis)
//! falls out of recursion instead of brace counting.

use crate::lexer::{Token, TokenKind};

/// One node: a leaf token or a delimited group.
#[derive(Clone, Debug)]
pub enum Tree {
    /// A non-delimiter token.
    Leaf(Token),
    /// A `(…)`, `[…]` or `{…}` group.
    Group(Group),
}

/// A delimited token group.
#[derive(Clone, Debug)]
pub struct Group {
    /// Opening delimiter: `(`, `[` or `{`.
    pub delim: char,
    /// 1-based line of the opening delimiter.
    pub open_line: usize,
    /// 1-based column of the opening delimiter.
    pub open_col: usize,
    /// 1-based line of the closing delimiter (end of file when
    /// unterminated).
    pub close_line: usize,
    /// Children in source order.
    pub trees: Vec<Tree>,
}

impl Tree {
    /// The leaf token, if this is a leaf.
    pub fn leaf(&self) -> Option<&Token> {
        match self {
            Tree::Leaf(t) => Some(t),
            Tree::Group(_) => None,
        }
    }

    /// The group, if this is a group.
    pub fn group(&self) -> Option<&Group> {
        match self {
            Tree::Group(g) => Some(g),
            Tree::Leaf(_) => None,
        }
    }

    /// The identifier's text, if this is an identifier leaf.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tree::Leaf(Token {
                kind: TokenKind::Ident(name),
                ..
            }) => Some(name),
            _ => None,
        }
    }

    /// Whether this is the punctuation `op`.
    pub fn is_punct(&self, op: &str) -> bool {
        matches!(
            self,
            Tree::Leaf(Token {
                kind: TokenKind::Punct(p),
                ..
            }) if *p == op
        )
    }

    /// The source line this node starts on.
    pub fn line(&self) -> usize {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group(g) => g.open_line,
        }
    }

    /// The source column this node starts on.
    pub fn col(&self) -> usize {
        match self {
            Tree::Leaf(t) => t.col,
            Tree::Group(g) => g.open_col,
        }
    }
}

fn closing(delim: char) -> &'static str {
    match delim {
        '(' => ")",
        '[' => "]",
        _ => "}",
    }
}

/// Groups a token stream into trees. Tolerant of imbalance: a stray
/// closer is dropped, an unterminated group closes at end of input.
pub fn build(tokens: &[Token]) -> Vec<Tree> {
    let mut pos = 0;
    build_until(tokens, &mut pos, None)
}

fn build_until(tokens: &[Token], pos: &mut usize, close: Option<&str>) -> Vec<Tree> {
    let mut out = Vec::new();
    while *pos < tokens.len() {
        let tok = &tokens[*pos];
        match &tok.kind {
            TokenKind::Punct(p) if ["(", "[", "{"].contains(p) => {
                let delim = match *p {
                    "(" => '(',
                    "[" => '[',
                    _ => '{',
                };
                let (open_line, open_col) = (tok.line, tok.col);
                *pos += 1;
                let inner = build_until(tokens, pos, Some(closing(delim)));
                let close_line = tokens
                    .get(pos.saturating_sub(1))
                    .map(|t| t.line)
                    .unwrap_or(open_line);
                out.push(Tree::Group(Group {
                    delim,
                    open_line,
                    open_col,
                    close_line,
                    trees: inner,
                }));
            }
            TokenKind::Punct(p) if [")", "]", "}"].contains(p) => {
                *pos += 1;
                if Some(*p) == close {
                    return out;
                }
                // Stray closer: drop it and continue.
            }
            _ => {
                out.push(Tree::Leaf(tok.clone()));
                *pos += 1;
            }
        }
    }
    out
}

/// Depth-first walk over every group (including nested ones), calling
/// `f` with each group's child list. The top-level list is visited too.
pub fn walk_groups<'a>(trees: &'a [Tree], f: &mut dyn FnMut(&'a [Tree])) {
    f(trees);
    for t in trees {
        if let Tree::Group(g) = t {
            walk_groups(&g.trees, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn trees(src: &str) -> Vec<Tree> {
        build(&lex(src).tokens)
    }

    #[test]
    fn groups_nest() {
        let t = trees("fn f(a: u8) { g([1, 2]); }");
        // fn, f, (…), {…}
        assert_eq!(t.len(), 4);
        let body = t[3].group().expect("body group");
        assert_eq!(body.delim, '{');
        let call_args = body.trees[1].group().expect("g call args");
        assert_eq!(call_args.delim, '(');
        assert_eq!(call_args.trees[0].group().map(|g| g.delim), Some('['));
    }

    #[test]
    fn tolerates_imbalance() {
        let t = trees("fn f() { oops(");
        assert_eq!(t.len(), 4);
        let t2 = trees(") } fn g() {}");
        assert!(t2.iter().any(|n| n.ident() == Some("g")));
    }

    #[test]
    fn group_lines_cover_span() {
        let t = trees("mod m {\n  fn f() {}\n}\n");
        let g = t[2].group().expect("mod body");
        assert_eq!(g.open_line, 1);
        assert_eq!(g.close_line, 3);
    }

    #[test]
    fn walk_visits_all_levels() {
        let t = trees("a { b { c } }");
        let mut seen = 0;
        walk_groups(&t, &mut |_| seen += 1);
        assert_eq!(seen, 3);
    }
}
