//! The panicking-API rules, ported from the old regex analyzer to the
//! AST: `.unwrap()`, `.expect(…)`, `panic!`, `todo!`/`unimplemented!`,
//! `dbg!`, `println!`-family output, and the `#![forbid(unsafe_code)]`
//! crate-root requirement.
//!
//! Because matching happens on tokens, string literals, comments and
//! identifiers that merely *contain* a forbidden name (`unwrap_or`,
//! `should_panic`) can never fire — the reason the old line-based rules
//! needed allow-markers on documentation strings.

use crate::diag::{Diagnostic, Severity};
use crate::source::{FileKind, SourceFile};
use crate::tree::{walk_groups, Tree};

/// Runs every panicking-API rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.kind == FileKind::Lib && file.is_crate_root() && !has_forbid_unsafe(&file.trees) {
        out.push(Diagnostic {
            rule: "forbid-unsafe",
            severity: Severity::Error,
            file: file.path.clone(),
            line: 0,
            col: 0,
            message: "crate root does not declare `#![forbid(unsafe_code)]`".into(),
            snippet: String::new(),
        });
    }
    walk_groups(&file.trees, &mut |trees| {
        scan_level(file, trees, out);
    });
}

/// Whether the top-level trees carry the `#![forbid(unsafe_code)]`
/// inner attribute.
fn has_forbid_unsafe(trees: &[Tree]) -> bool {
    let mut i = 0;
    while i + 2 < trees.len() {
        if trees[i].is_punct("#") && trees[i + 1].is_punct("!") {
            if let Some(g) = trees[i + 2].group() {
                if g.delim == '['
                    && g.trees.first().and_then(Tree::ident) == Some("forbid")
                    && g.trees.get(1).and_then(Tree::group).is_some_and(|args| {
                        args.trees.first().and_then(Tree::ident) == Some("unsafe_code")
                    })
                {
                    return true;
                }
            }
        }
        i += 1;
    }
    false
}

fn scan_level(file: &SourceFile, trees: &[Tree], out: &mut Vec<Diagnostic>) {
    let lib = file.kind == FileKind::Lib;
    let mut hit = |rule: &'static str, node: &Tree, what: &str| {
        let line = node.line();
        if file.is_test_line(line) {
            return;
        }
        out.push(Diagnostic {
            rule,
            severity: Severity::Error,
            file: file.path.clone(),
            line,
            col: node.col(),
            message: format!("forbidden pattern `{what}` in library code"),
            snippet: file.snippet(line),
        });
    };
    for (i, t) in trees.iter().enumerate() {
        // `.unwrap()` / `.expect(…)` — a dot, the method name, and the
        // argument group.
        if t.is_punct(".") {
            let name = trees.get(i + 1).and_then(Tree::ident);
            let args = trees.get(i + 2).and_then(Tree::group);
            if let (Some(name), Some(args)) = (name, args) {
                if args.delim == '(' && lib {
                    if name == "unwrap" && args.trees.is_empty() {
                        hit("no-unwrap", &trees[i + 1], ".unwrap()");
                    }
                    if name == "expect" && !args.trees.is_empty() {
                        hit("no-expect", &trees[i + 1], ".expect(…)");
                    }
                }
            }
            continue;
        }
        // Macro invocations: an identifier followed by `!`.
        let Some(name) = t.ident() else { continue };
        if !trees.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            continue;
        }
        match name {
            "panic" if lib => hit("no-panic", t, "panic!"),
            "todo" | "unimplemented" => hit("no-todo", t, "todo!/unimplemented!"),
            "dbg" => hit("no-dbg", t, "dbg!"),
            "println" | "print" | "eprintln" | "eprint" if lib => {
                hit("no-println", t, "println!-family output")
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::lib_file;

    fn rules_of(text: &str) -> Vec<&'static str> {
        let f = lib_file("crates/x/src/a.rs", text);
        let mut out = Vec::new();
        check(&f, &mut out);
        out.iter()
            .map(|d| d.rule)
            .filter(|r| *r != "forbid-unsafe")
            .collect()
    }

    #[test]
    fn flags_the_panicking_shortcuts() {
        let r = rules_of(
            "fn f() {\n    x.unwrap();\n    y.expect(\"boom\");\n    panic!(\"no\");\n    todo!();\n    dbg!(3);\n    println!(\"hi\");\n}\n",
        );
        assert_eq!(
            r,
            vec![
                "no-unwrap",
                "no-expect",
                "no-panic",
                "no-todo",
                "no-dbg",
                "no-println"
            ]
        );
    }

    #[test]
    fn strings_comments_and_lookalikes_do_not_fire() {
        let r = rules_of(
            "fn f() {\n    // x.unwrap() in a comment\n    let s = \"panic! .unwrap() todo!\";\n    let t = r#\"dbg!(1)\"#;\n    x.unwrap_or(3);\n    x.unwrap_or_else(g);\n    std::panic::resume_unwind(p);\n}\n#[should_panic]\nfn g() {}\n",
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let r = rules_of("fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); panic!(); }\n}\n");
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn bin_files_may_print_and_bail_but_not_todo() {
        let f = crate::source::SourceFile::parse(
            "crates/x/src/main.rs",
            FileKind::Bin,
            "fn main() { println!(\"x\"); y.unwrap(); panic!(\"z\"); todo!(); dbg!(1); }\n",
        );
        let mut out = Vec::new();
        check(&f, &mut out);
        let rules: Vec<_> = out.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["no-todo", "no-dbg"]);
    }

    #[test]
    fn crate_root_requires_forbid_unsafe() {
        let f = lib_file("crates/x/src/lib.rs", "fn f() {}\n");
        let mut out = Vec::new();
        check(&f, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "forbid-unsafe");
        assert_eq!(out[0].line, 0);

        let ok = lib_file(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\nfn f() {}\n",
        );
        let mut out = Vec::new();
        check(&ok, &mut out);
        assert!(out.is_empty());

        // A string literal spelling the attribute must NOT satisfy the
        // requirement (the old regex analyzer got this wrong).
        let fake = lib_file(
            "crates/x/src/lib.rs",
            "static S: &str = \"#![forbid(unsafe_code)]\";\n",
        );
        let mut out = Vec::new();
        check(&fake, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
    }
}
