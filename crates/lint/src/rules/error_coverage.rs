//! `error-variant-coverage`: every variant of a public error enum must
//! be exercised somewhere in test code.
//!
//! Pass 1 collects definitions: `pub enum Name` items (not
//! `pub(crate)`) whose name ends in `Error`, in non-test library code,
//! with each variant's definition site. Pass 2 collects evidence: any
//! `Name::Variant` path mention inside `#[cfg(test)]` code or files
//! under `tests/` — constructions and `matches!`-style assertions both
//! count, since either pins the variant's existence and shape to a
//! test. Variants with no evidence are reported at their definition.

use crate::diag::{Diagnostic, Severity};
use crate::source::{FileKind, SourceFile};
use crate::tree::{walk_groups, Tree};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

struct VariantDef {
    enum_name: String,
    variant: String,
    file: PathBuf,
    line: usize,
    col: usize,
    snippet: String,
}

/// Runs the rule over the whole workspace.
pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    let mut defs: Vec<VariantDef> = Vec::new();
    for f in files {
        if f.kind == FileKind::Lib {
            collect_defs(f, &mut defs);
        }
    }
    // Evidence: enum name -> variants seen in test code.
    let mut covered: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let names: BTreeSet<&str> = defs.iter().map(|d| d.enum_name.as_str()).collect();
    for f in files {
        walk_groups(&f.trees, &mut |trees| {
            for (i, t) in trees.iter().enumerate() {
                let Some(name) = t.ident() else { continue };
                if !names.contains(name) || !trees.get(i + 1).is_some_and(|n| n.is_punct("::")) {
                    continue;
                }
                let Some(variant) = trees.get(i + 2).and_then(Tree::ident) else {
                    continue;
                };
                if f.is_test_line(t.line()) {
                    covered
                        .entry(name.to_string())
                        .or_default()
                        .insert(variant.to_string());
                }
            }
        });
    }
    for d in defs {
        let seen = covered
            .get(&d.enum_name)
            .is_some_and(|set| set.contains(&d.variant));
        if !seen {
            out.push(Diagnostic {
                rule: "error-variant-coverage",
                severity: Severity::Error,
                file: d.file,
                line: d.line,
                col: d.col,
                message: format!(
                    "public error variant `{}::{}` is never constructed or matched \
                     in test code",
                    d.enum_name, d.variant
                ),
                snippet: d.snippet,
            });
        }
    }
}

/// Finds `pub enum *Error` items at any nesting level of a file.
fn collect_defs(file: &SourceFile, out: &mut Vec<VariantDef>) {
    walk_groups(&file.trees, &mut |trees| {
        let mut i = 0;
        while i < trees.len() {
            if trees[i].ident() == Some("pub") {
                let mut j = i + 1;
                // `pub(crate)` / `pub(super)` are not public API.
                let restricted = trees.get(j).and_then(Tree::group).is_some();
                if !restricted && trees.get(j).and_then(Tree::ident) == Some("enum") {
                    j += 1;
                    if let Some(name) = trees.get(j).and_then(Tree::ident) {
                        if name.ends_with("Error") && !file.is_test_line(trees[i].line()) {
                            // Body: first brace group before any `;`.
                            let mut k = j + 1;
                            while k < trees.len() && !trees[k].is_punct(";") {
                                if let Some(g) = trees[k].group() {
                                    if g.delim == '{' {
                                        collect_variants(file, name, &g.trees, out);
                                        break;
                                    }
                                }
                                k += 1;
                            }
                        }
                    }
                }
            }
            i += 1;
        }
    });
}

/// Splits an enum body at top-level commas and records each variant.
fn collect_variants(file: &SourceFile, enum_name: &str, body: &[Tree], out: &mut Vec<VariantDef>) {
    let mut chunk_start = 0;
    let mut i = 0;
    loop {
        let at_end = i >= body.len();
        if at_end || body[i].is_punct(",") {
            let chunk = &body[chunk_start..i.min(body.len())];
            if let Some(t) = first_non_attr(chunk) {
                if let Some(variant) = t.ident() {
                    out.push(VariantDef {
                        enum_name: enum_name.to_string(),
                        variant: variant.to_string(),
                        file: file.path.clone(),
                        line: t.line(),
                        col: t.col(),
                        snippet: file.snippet(t.line()),
                    });
                }
            }
            chunk_start = i + 1;
        }
        if at_end {
            break;
        }
        i += 1;
    }
}

/// First tree of a variant chunk that is not part of an attribute.
fn first_non_attr(chunk: &[Tree]) -> Option<&Tree> {
    let mut i = 0;
    while i < chunk.len() {
        if chunk[i].is_punct("#") && matches!(chunk.get(i + 1), Some(Tree::Group(_))) {
            i += 2;
            continue;
        }
        return Some(&chunk[i]);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::lib_file;

    const ENUM: &str = "/// Errors.\npub enum StoreError {\n    /// IO.\n    Io { path: String },\n    /// Bad magic.\n    BadMagic(u32),\n    /// Closed.\n    Closed,\n}\n";

    fn run(files: Vec<SourceFile>) -> Vec<String> {
        let mut out = Vec::new();
        check(&files, &mut out);
        out.into_iter().map(|d| d.message).collect()
    }

    #[test]
    fn uncovered_variants_are_reported_at_their_definition() {
        let msgs = run(vec![lib_file("crates/x/src/a.rs", ENUM)]);
        assert_eq!(msgs.len(), 3, "{msgs:?}");
        assert!(msgs[0].contains("StoreError::Io"));
        assert!(msgs[2].contains("StoreError::Closed"));
    }

    #[test]
    fn test_mentions_count_as_coverage() {
        let lib = format!(
            "{ENUM}#[cfg(test)]\nmod tests {{\n    fn t() {{\n        let _ = StoreError::Io {{ path: p }};\n        assert!(matches!(e, StoreError::BadMagic(_)));\n    }}\n}}\n"
        );
        let msgs = run(vec![lib_file("crates/x/src/a.rs", &lib)]);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("StoreError::Closed"));
    }

    #[test]
    fn tests_dir_files_count_as_coverage() {
        let t = SourceFile::parse(
            "tests/integration.rs",
            FileKind::Test,
            "fn t() { let _ = StoreError::Closed; let _ = StoreError::Io { path }; let _ = StoreError::BadMagic(1); }\n",
        );
        let msgs = run(vec![lib_file("crates/x/src/a.rs", ENUM), t]);
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn non_test_constructions_do_not_count() {
        let lib = format!("{ENUM}fn lib() -> StoreError {{ StoreError::Closed }}\n");
        let msgs = run(vec![lib_file("crates/x/src/a.rs", &lib)]);
        assert_eq!(msgs.len(), 3, "library-code use is not test coverage");
    }

    #[test]
    fn only_public_error_enums_participate() {
        let private =
            "enum StoreError { A }\npub(crate) enum IoError { B }\npub enum Shape { C }\n";
        let msgs = run(vec![lib_file("crates/x/src/a.rs", private)]);
        assert!(msgs.is_empty(), "{msgs:?}");
    }
}
