//! `float-eq`: exact `==`/`!=` comparisons against floating-point
//! values in non-test code.
//!
//! Without type inference the rule is syntactic: a comparison fires
//! when either operand is visibly floating-point — a float literal
//! (`0.0`, `1e-12`, `2f64`), possibly negated, or an `as f64`/`as f32`
//! cast. Identifier-vs-identifier float comparisons are out of reach;
//! the approved alternatives (`total_cmp`, `to_bits`, tolerance
//! helpers like `approx_eq`) never use bare `==` and so never fire.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::tree::{walk_groups, Tree};

fn is_float_leaf(t: &Tree) -> bool {
    matches!(
        t,
        Tree::Leaf(tok) if matches!(tok.kind, TokenKind::Float(_))
    )
}

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    walk_groups(&file.trees, &mut |trees| {
        for (i, t) in trees.iter().enumerate() {
            let op = if t.is_punct("==") {
                "=="
            } else if t.is_punct("!=") {
                "!="
            } else {
                continue;
            };
            let line = t.line();
            if file.is_test_line(line) {
                continue;
            }
            // Right operand: a float literal, possibly negated.
            let right_float = match trees.get(i + 1) {
                Some(n) if is_float_leaf(n) => true,
                Some(n) if n.is_punct("-") => trees.get(i + 2).is_some_and(is_float_leaf),
                _ => false,
            };
            // Left operand: a float literal, or an `as f64` / `as f32`
            // cast ending right before the operator.
            let left_float = match trees.get(i.wrapping_sub(1)) {
                Some(n) if is_float_leaf(n) => true,
                Some(n)
                    if matches!(n.ident(), Some("f64") | Some("f32"))
                        && i >= 2
                        && trees[i - 2].ident() == Some("as") =>
                {
                    true
                }
                _ => false,
            };
            if right_float || left_float {
                out.push(Diagnostic {
                    rule: "float-eq",
                    severity: Severity::Error,
                    file: file.path.clone(),
                    line,
                    col: t.col(),
                    message: format!(
                        "exact floating-point `{op}` comparison; compare integer counts, \
                         use `total_cmp`/`to_bits`, or a tolerance helper"
                    ),
                    snippet: file.snippet(line),
                });
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::lib_file;

    fn count(text: &str) -> usize {
        let f = lib_file("crates/x/src/a.rs", text);
        let mut out = Vec::new();
        check(&f, &mut out);
        out.len()
    }

    #[test]
    fn flags_literal_comparisons() {
        assert_eq!(count("fn f(x: f64) -> bool { x == 0.0 }\n"), 1);
        assert_eq!(count("fn f(x: f64) -> bool { 1e-12 != x }\n"), 1);
        assert_eq!(count("fn f(x: f64) -> bool { x == -1.5 }\n"), 1);
        assert_eq!(count("fn f(x: f64) -> bool { x as f64 == y }\n"), 1);
    }

    #[test]
    fn integer_comparisons_are_fine() {
        assert_eq!(count("fn f(x: u64) -> bool { x == 0 }\n"), 0);
        assert_eq!(count("fn f(x: usize) -> bool { x != 10 }\n"), 0);
    }

    #[test]
    fn approved_helpers_do_not_fire() {
        assert_eq!(
            count("fn f(a: f64, b: f64) -> bool { a.to_bits() == b.to_bits() }\n"),
            0
        );
        assert_eq!(
            count("fn f(a: f64, b: f64) -> bool { (a - b).abs() < 1e-12 }\n"),
            0
        );
        assert_eq!(
            count("fn f(a: f64, b: f64) -> Ordering { a.total_cmp(&b) }\n"),
            0
        );
    }

    #[test]
    fn test_code_may_compare_exactly() {
        assert_eq!(
            count("#[cfg(test)]\nmod tests {\n    fn t(x: f64) { assert!(x == 0.0); }\n}\n"),
            0
        );
    }
}
