//! `lock-order`: a static deadlock detector for `std::sync` primitives.
//!
//! For every function body the rule tracks **guard liveness**: a
//! `.lock()` / `.read()` / `.write()` call (empty argument list, so
//! `io::Write::write(buf)` never matches) acquires a guard; a guard
//! bound by `let` lives until `drop(guard)` or the end of its block,
//! while an unbound guard (a temporary such as
//! `relock(self.inner.lock()).len()`) dies at the end of its
//! statement. Lock identity is the receiver's final path segment
//! qualified by file (`service/src/cache.rs::state`), which matches
//! how this workspace names lock fields.
//!
//! Three deadlock-prone shapes are reported:
//!
//! 1. **Cycles**: acquiring lock B while holding lock A adds the edge
//!    A → B to a workspace-wide acquisition graph; any strongly
//!    connected component (two functions locking in opposite orders)
//!    is reported at every participating acquisition site.
//! 2. **Re-entrant acquisition**: taking a lock while a guard on the
//!    same lock is already live (`std::sync::Mutex` is not reentrant).
//! 3. **Blocking while locked**: `.recv()` / `.recv_timeout(…)` /
//!    `.join()` — or a `Condvar` wait — reached while a guard is live.
//!    A `Condvar::wait(guard)` consumes its own guard, so only *other*
//!    live guards are reported for waits: the single-flight pattern in
//!    `SharedSynthCache` is legal, holding a second lock during the
//!    wait is not.
//!
//! The analysis is conservative where it cannot see: a closure body is
//! analyzed as if it ran inline under the guards live at its creation
//! site, and guards live across `match`/`if let` temporaries follow
//! the longer (whole-expression) temporary scope.

use crate::diag::{Diagnostic, Severity};
use crate::source::{FileKind, SourceFile};
use crate::tree::{Group, Tree};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// Methods that acquire a guard when called with no arguments.
const ACQUIRERS: &[&str] = &["lock", "read", "write"];
/// Condvar waits: consume the guard passed as their first argument.
const WAITS: &[&str] = &["wait", "wait_timeout", "wait_while", "wait_timeout_while"];
/// Always-blocking calls that must not run under a lock.
const BLOCKERS: &[&str] = &["recv", "recv_timeout", "join"];

/// One live guard.
#[derive(Clone, Debug)]
struct LiveGuard {
    /// The `let` binding name, `None` for statement temporaries.
    name: Option<String>,
    /// Lock identity (`<file>::<receiver tail>`).
    lock: String,
}

/// One observed nested acquisition.
struct AcqEdge {
    from: String,
    to: String,
    file: PathBuf,
    line: usize,
    col: usize,
    snippet: String,
}

/// Runs the rule over the whole workspace.
pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    let mut edges: Vec<AcqEdge> = Vec::new();
    for f in files {
        if f.kind == FileKind::Test {
            continue;
        }
        analyze_fns(f, &f.trees, &mut edges, out);
    }
    report_cycles(&edges, out);
}

/// Finds every `fn` body (at any nesting level) outside test code and
/// analyzes it with an empty guard stack.
fn analyze_fns(
    file: &SourceFile,
    trees: &[Tree],
    edges: &mut Vec<AcqEdge>,
    out: &mut Vec<Diagnostic>,
) {
    let mut i = 0;
    while i < trees.len() {
        let is_fn_item =
            trees[i].ident() == Some("fn") && trees.get(i + 1).and_then(Tree::ident).is_some();
        if is_fn_item && !file.is_test_line(trees[i].line()) {
            // The body is the first brace group before any `;` (a `;`
            // first means a trait method signature without a default).
            let mut j = i + 2;
            while j < trees.len() {
                if trees[j].is_punct(";") {
                    break;
                }
                if let Some(g) = trees[j].group() {
                    if g.delim == '{' {
                        let mut live = Vec::new();
                        analyze_block(file, &g.trees, &mut live, edges, out);
                        break;
                    }
                }
                j += 1;
            }
            i = j;
            continue;
        }
        // Recurse into non-fn groups (mod/impl/trait bodies). Function
        // bodies themselves were just analyzed and contain no items in
        // this workspace; visiting them again is harmless but would
        // double-report, so they are skipped via the `i = j` above.
        if let Some(g) = trees[i].group() {
            analyze_fns(file, &g.trees, edges, out);
        }
        i += 1;
    }
}

/// Analyzes one `{…}` block: statements split at top-level `;`,
/// guards bound inside die when the block ends.
fn analyze_block(
    file: &SourceFile,
    trees: &[Tree],
    live: &mut Vec<LiveGuard>,
    edges: &mut Vec<AcqEdge>,
    out: &mut Vec<Diagnostic>,
) {
    let entry = live.len();
    let mut start = 0;
    let mut i = 0;
    loop {
        let at_end = i >= trees.len();
        if at_end || trees[i].is_punct(";") {
            let stmt = &trees[start..i.min(trees.len())];
            if !stmt.is_empty() {
                analyze_stmt(file, stmt, live, edges, out);
            }
            start = i + 1;
        }
        if at_end {
            break;
        }
        i += 1;
    }
    live.truncate(entry);
}

/// Analyzes one statement: temporaries acquired inside it die at its
/// end, unless the statement is a `let` binding — then the most recent
/// acquisition survives under the bound name.
fn analyze_stmt(
    file: &SourceFile,
    stmt: &[Tree],
    live: &mut Vec<LiveGuard>,
    edges: &mut Vec<AcqEdge>,
    out: &mut Vec<Diagnostic>,
) {
    let let_name = parse_let_name(stmt).filter(|_| let_binds_guard(stmt));
    let temps_start = live.len();
    walk_expr(file, stmt, live, edges, out);
    if live.len() > temps_start {
        match let_name {
            Some(name) => {
                // The last acquisition is what the binding holds; any
                // earlier same-statement temporaries die here.
                let survivor = live.drain(temps_start..).next_back();
                if let Some(mut g) = survivor {
                    g.name = Some(name);
                    live.push(g);
                }
            }
            None => live.truncate(temps_start),
        }
    }
}

/// Methods that pass a guard through unchanged, so a binding whose
/// initializer ends in one still holds the guard.
const GUARD_PRESERVING: &[&str] = &[
    "unwrap",
    "expect",
    "unwrap_or_else",
    "into_inner",
    "map_err",
];

/// Whether a `let` statement's initializer actually binds the guard:
/// the trailing top-level method chain must consist only of
/// guard-preserving calls (`s.a.lock()`, `s.a.lock().unwrap()`,
/// `relock(s.a.lock())`). A projection such as
/// `relock(s.a.lock()).len()` binds a plain value and the guard is a
/// statement temporary.
fn let_binds_guard(stmt: &[Tree]) -> bool {
    let mut end = stmt.len();
    while end >= 3 {
        let is_call = stmt[end - 3].is_punct(".")
            && stmt[end - 2].ident().is_some()
            && stmt[end - 1].group().is_some_and(|g| g.delim == '(');
        if !is_call {
            break;
        }
        let name = stmt[end - 2].ident().unwrap_or_default();
        if ACQUIRERS.contains(&name) {
            return true;
        }
        if !GUARD_PRESERVING.contains(&name) {
            return false;
        }
        end -= 3;
    }
    true
}

/// `let [mut] name = …` binding name, `None` for other statements or
/// destructuring patterns.
fn parse_let_name(stmt: &[Tree]) -> Option<String> {
    if stmt.first()?.ident()? != "let" {
        return None;
    }
    let mut i = 1;
    if stmt.get(i).and_then(Tree::ident) == Some("mut") {
        i += 1;
    }
    let name = stmt.get(i)?.ident()?;
    // `let Some(x) = …` / struct patterns: the ident is followed by a
    // group or path, not `=` / `:`.
    match stmt.get(i + 1) {
        Some(t) if t.is_punct("=") || t.is_punct(":") => Some(name.to_string()),
        _ => None,
    }
}

/// Walks a statement's trees in evaluation order, tracking
/// acquisitions, condvar waits, blocking calls, drops, and nested
/// blocks.
fn walk_expr(
    file: &SourceFile,
    trees: &[Tree],
    live: &mut Vec<LiveGuard>,
    edges: &mut Vec<AcqEdge>,
    out: &mut Vec<Diagnostic>,
) {
    let mut i = 0;
    while i < trees.len() {
        // Method calls: `.name(args)`.
        if trees[i].is_punct(".") {
            let name = trees.get(i + 1).and_then(Tree::ident);
            let args = trees
                .get(i + 2)
                .and_then(Tree::group)
                .filter(|g| g.delim == '(');
            if let (Some(name), Some(args)) = (name, args) {
                let site = &trees[i + 1];
                if ACQUIRERS.contains(&name) && args.trees.is_empty() {
                    acquire(file, trees, i, site, live, edges, out);
                    i += 3;
                    continue;
                }
                if WAITS.contains(&name) {
                    condvar_wait(file, args, site, live, out);
                    walk_expr(file, &args.trees, live, edges, out);
                    i += 3;
                    continue;
                }
                if BLOCKERS.contains(&name) {
                    for g in live.iter() {
                        blocked(file, site, &format!(".{name}(…)"), g, out);
                    }
                    walk_expr(file, &args.trees, live, edges, out);
                    i += 3;
                    continue;
                }
            }
        }
        // `drop(guard)` / `mem::drop(guard)` releases a named guard.
        if trees[i].ident() == Some("drop") {
            if let Some(args) = trees
                .get(i + 1)
                .and_then(Tree::group)
                .filter(|g| g.delim == '(')
            {
                if args.trees.len() == 1 {
                    if let Some(victim) = args.trees[0].ident() {
                        if let Some(pos) =
                            live.iter().rposition(|g| g.name.as_deref() == Some(victim))
                        {
                            live.remove(pos);
                        }
                        i += 2;
                        continue;
                    }
                }
            }
        }
        match &trees[i] {
            Tree::Group(g) if g.delim == '{' => {
                // A nested block scopes its own bindings; temporaries
                // live so far stay held around it.
                analyze_block(file, &g.trees, live, edges, out);
            }
            Tree::Group(g) => walk_expr(file, &g.trees, live, edges, out),
            _ => {}
        }
        i += 1;
    }
}

/// Registers an acquisition at `trees[dot_idx…]`, reporting re-entrant
/// locks and recording graph edges from every held lock.
fn acquire(
    file: &SourceFile,
    trees: &[Tree],
    dot_idx: usize,
    site: &Tree,
    live: &mut Vec<LiveGuard>,
    edges: &mut Vec<AcqEdge>,
    out: &mut Vec<Diagnostic>,
) {
    let line = site.line();
    let lock = lock_id(file, trees, dot_idx, line);
    for g in live.iter() {
        if g.lock == lock {
            out.push(Diagnostic {
                rule: "lock-order",
                severity: Severity::Error,
                file: file.path.clone(),
                line,
                col: site.col(),
                message: format!(
                    "lock `{lock}` acquired while a guard on it is already live \
                     (std::sync locks are not reentrant — self-deadlock)"
                ),
                snippet: file.snippet(line),
            });
        } else {
            edges.push(AcqEdge {
                from: g.lock.clone(),
                to: lock.clone(),
                file: file.path.clone(),
                line,
                col: site.col(),
                snippet: file.snippet(line),
            });
        }
    }
    live.push(LiveGuard { name: None, lock });
}

/// Handles a condvar-style wait: the guard passed as an argument is
/// consumed and returned (stays live, same lock); any *other* live
/// guard is held across a blocking wait. A wait with no guard argument
/// (e.g. `JobHandle::wait()`) is a plain blocking call.
fn condvar_wait(
    file: &SourceFile,
    args: &Group,
    site: &Tree,
    live: &mut [LiveGuard],
    out: &mut Vec<Diagnostic>,
) {
    let arg_idents: BTreeSet<&str> = args.trees.iter().filter_map(Tree::ident).collect();
    let consumed: Vec<usize> = live
        .iter()
        .enumerate()
        .filter(|(_, g)| g.name.as_deref().is_some_and(|n| arg_idents.contains(n)))
        .map(|(i, _)| i)
        .collect();
    for (i, g) in live.iter().enumerate() {
        if consumed.contains(&i) {
            continue;
        }
        let what = if consumed.is_empty() {
            ".wait(…)".to_string()
        } else {
            "a Condvar wait on another lock".to_string()
        };
        blocked(file, site, &what, g, out);
    }
}

fn blocked(file: &SourceFile, site: &Tree, what: &str, g: &LiveGuard, out: &mut Vec<Diagnostic>) {
    let line = site.line();
    out.push(Diagnostic {
        rule: "lock-order",
        severity: Severity::Error,
        file: file.path.clone(),
        line,
        col: site.col(),
        message: format!(
            "guard on lock `{}` held across blocking call {what}",
            g.lock
        ),
        snippet: file.snippet(line),
    });
}

/// Lock identity for the receiver of `.lock()` at `trees[dot_idx]`:
/// the final path segment before the dot, qualified by file.
fn lock_id(file: &SourceFile, trees: &[Tree], dot_idx: usize, line: usize) -> String {
    let prefix = file.path.display();
    if dot_idx == 0 {
        return format!("{prefix}::<expr>@{line}");
    }
    match &trees[dot_idx - 1] {
        t if t.ident().is_some() => {
            format!("{prefix}::{}", t.ident().unwrap_or_default())
        }
        Tree::Group(_) if dot_idx >= 2 && trees[dot_idx - 2].ident().is_some() => {
            format!(
                "{prefix}::{}()",
                trees[dot_idx - 2].ident().unwrap_or_default()
            )
        }
        _ => format!("{prefix}::<expr>@{line}"),
    }
}

/// Finds strongly connected components in the acquisition graph and
/// reports every edge inside one (including two-lock A↔B cycles).
fn report_cycles(edges: &[AcqEdge], out: &mut Vec<Diagnostic>) {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut radj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        nodes.insert(&e.from);
        nodes.insert(&e.to);
        adj.entry(&e.from).or_default().insert(&e.to);
        radj.entry(&e.to).or_default().insert(&e.from);
    }
    // Kosaraju: order by forward-DFS finish time, then component-label
    // in reverse order on the transposed graph.
    let mut order: Vec<&str> = Vec::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for &n in &nodes {
        dfs_finish(n, &adj, &mut seen, &mut order);
    }
    let mut comp: BTreeMap<&str, usize> = BTreeMap::new();
    let mut comp_sizes: Vec<usize> = Vec::new();
    for &n in order.iter().rev() {
        if comp.contains_key(n) {
            continue;
        }
        let id = comp_sizes.len();
        let mut size = 0;
        let mut stack = vec![n];
        while let Some(cur) = stack.pop() {
            if comp.contains_key(cur) {
                continue;
            }
            comp.insert(cur, id);
            size += 1;
            if let Some(prev) = radj.get(cur) {
                stack.extend(prev.iter().copied());
            }
        }
        comp_sizes.push(size);
    }
    let mut reported: BTreeSet<(String, String, usize)> = BTreeSet::new();
    for e in edges {
        let (Some(&cf), Some(&ct)) = (comp.get(e.from.as_str()), comp.get(e.to.as_str())) else {
            continue;
        };
        if cf != ct || comp_sizes[cf] < 2 {
            continue;
        }
        if !reported.insert((e.from.clone(), e.to.clone(), e.line)) {
            continue;
        }
        let members: Vec<&str> = comp
            .iter()
            .filter(|(_, &c)| c == cf)
            .map(|(&n, _)| n)
            .collect();
        out.push(Diagnostic {
            rule: "lock-order",
            severity: Severity::Error,
            file: e.file.clone(),
            line: e.line,
            col: e.col,
            message: format!(
                "lock-order cycle: `{}` acquired while holding `{}`; elsewhere the \
                 opposite order occurs (cycle through: {})",
                e.to,
                e.from,
                members.join(" ↔ ")
            ),
            snippet: e.snippet.clone(),
        });
    }
}

fn dfs_finish<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    seen: &mut BTreeSet<&'a str>,
    order: &mut Vec<&'a str>,
) {
    if !seen.insert(node) {
        return;
    }
    if let Some(next) = adj.get(node) {
        for &n in next {
            dfs_finish(n, adj, seen, order);
        }
    }
    order.push(node);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::lib_file;

    fn run(text: &str) -> Vec<String> {
        let f = lib_file("crates/x/src/a.rs", text);
        let mut out = Vec::new();
        check(&[f], &mut out);
        out.into_iter().map(|d| d.message).collect()
    }

    #[test]
    fn two_lock_cycle_is_reported_at_both_sites() {
        let msgs = run(
            "fn ab(s: &S) {\n    let a = s.alpha.lock();\n    let b = s.beta.lock();\n    use_both(a, b);\n}\nfn ba(s: &S) {\n    let b = s.beta.lock();\n    let a = s.alpha.lock();\n    use_both(a, b);\n}\n",
        );
        assert_eq!(msgs.len(), 2, "{msgs:?}");
        assert!(msgs.iter().all(|m| m.contains("lock-order cycle")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("`crates/x/src/a.rs::beta` acquired while holding")));
    }

    #[test]
    fn consistent_order_is_clean() {
        let msgs = run(
            "fn ab(s: &S) {\n    let a = s.alpha.lock();\n    let b = s.beta.lock();\n}\nfn ab2(s: &S) {\n    let a = s.alpha.lock();\n    let b = s.beta.lock();\n}\n",
        );
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn drop_releases_before_next_acquisition() {
        let msgs = run(
            "fn f(s: &S) {\n    let a = s.alpha.lock();\n    drop(a);\n    let b = s.beta.lock();\n}\nfn g(s: &S) {\n    let b = s.beta.lock();\n    drop(b);\n    let a = s.alpha.lock();\n}\n",
        );
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn statement_temporaries_do_not_outlive_their_statement() {
        let msgs = run(
            "fn f(s: &S) {\n    let n = relock(s.alpha.lock()).len();\n    let b = s.beta.lock();\n}\nfn g(s: &S) {\n    let m = relock(s.beta.lock()).len();\n    let a = s.alpha.lock();\n}\n",
        );
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn reentrant_lock_is_a_self_deadlock() {
        let msgs =
            run("fn f(s: &S) {\n    let a = s.alpha.lock();\n    let b = s.alpha.lock();\n}\n");
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("not reentrant"));
    }

    #[test]
    fn condvar_wait_consuming_its_own_guard_is_legal() {
        let msgs = run(
            "fn f(s: &S) {\n    let mut inner = relock(s.state.lock());\n    loop {\n        inner = relock(s.flights.wait(inner));\n    }\n}\n",
        );
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn second_lock_held_across_condvar_wait_is_flagged() {
        let msgs = run(
            "fn f(s: &S) {\n    let extra = s.other.lock();\n    let mut inner = s.state.lock();\n    inner = s.cv.wait(inner);\n}\n",
        );
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("held across blocking call"));
        assert!(msgs[0].contains("other"));
    }

    #[test]
    fn blocking_calls_under_a_lock_are_flagged() {
        let msgs = run("fn f(s: &S) {\n    let g = s.state.lock();\n    let v = s.rx.recv();\n}\n");
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains(".recv"));
        let msgs = run("fn f(s: &S) {\n    let g = s.state.lock();\n    s.handle.join();\n}\n");
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        let clean =
            run("fn f(s: &S) {\n    let v = s.rx.recv();\n    let g = s.state.lock();\n}\n");
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn block_scoped_guards_die_with_their_block() {
        let msgs = run(
            "fn f(s: &S) {\n    {\n        let a = s.alpha.lock();\n    }\n    let b = s.beta.lock();\n}\nfn g(s: &S) {\n    { let b = s.beta.lock(); }\n    let a = s.alpha.lock();\n}\n",
        );
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn io_write_with_args_is_not_an_acquisition() {
        let msgs = run("fn f(w: &mut W, s: &S) {\n    let g = s.state.lock();\n    w.file.write(buf);\n    w.sock.read(buf);\n}\n");
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn test_code_is_skipped() {
        let msgs = run(
            "#[cfg(test)]\nmod tests {\n    fn ab(s: &S) { let a = s.alpha.lock(); let b = s.beta.lock(); }\n    fn ba(s: &S) { let b = s.beta.lock(); let a = s.alpha.lock(); }\n}\n",
        );
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn rwlock_read_write_participate() {
        let msgs = run(
            "fn f(s: &S) {\n    let r = s.table.read();\n    let w = s.index.write();\n}\nfn g(s: &S) {\n    let w = s.index.write();\n    let r = s.table.read();\n}\n",
        );
        assert_eq!(msgs.len(), 2, "{msgs:?}");
    }
}
