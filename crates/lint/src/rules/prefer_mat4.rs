//! `prefer-mat4`: heap-allocated 4×4 matrices (`DMat::zeros(4, 4)`) in
//! the simulation/synthesis hot paths, reimplemented structurally — the
//! call is matched as a path expression with literal arguments, so
//! whitespace, comments between tokens, or the string `"DMat::zeros(4, 4)"`
//! can no longer produce false results.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::source::{FileKind, SourceFile};
use crate::tree::{walk_groups, Tree};

/// Crates whose library code has the stack `Mat4` kernel available.
fn hot_path(file: &SourceFile) -> bool {
    file.path.starts_with("crates/sim/src") || file.path.starts_with("crates/synth/src")
}

fn is_int(t: &Tree, value: &str) -> bool {
    matches!(
        t,
        Tree::Leaf(tok) if matches!(&tok.kind, TokenKind::Int(v) if v == value)
    )
}

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.kind != FileKind::Lib || !hot_path(file) {
        return;
    }
    walk_groups(&file.trees, &mut |trees| {
        for (i, t) in trees.iter().enumerate() {
            if t.ident() != Some("DMat")
                || !trees.get(i + 1).is_some_and(|n| n.is_punct("::"))
                || trees.get(i + 2).and_then(Tree::ident) != Some("zeros")
            {
                continue;
            }
            let Some(args) = trees.get(i + 3).and_then(Tree::group) else {
                continue;
            };
            let four_by_four = args.delim == '('
                && args.trees.len() == 3
                && is_int(&args.trees[0], "4")
                && args.trees[1].is_punct(",")
                && is_int(&args.trees[2], "4");
            let line = t.line();
            if four_by_four && !file.is_test_line(line) {
                out.push(Diagnostic {
                    rule: "prefer-mat4",
                    severity: Severity::Error,
                    file: file.path.clone(),
                    line,
                    col: t.col(),
                    message: "heap-allocated 4x4 `DMat::zeros(4, 4)` in a hot-path crate; \
                              use the stack `nsb_math::Mat4` kernel instead"
                        .into(),
                    snippet: file.snippet(line),
                });
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{lib_file, SourceFile};

    fn count(path: &str, text: &str) -> usize {
        let f = lib_file(path, text);
        let mut out = Vec::new();
        check(&f, &mut out);
        out.len()
    }

    #[test]
    fn fires_only_in_hot_path_crates() {
        let text = "fn f() { let m = DMat::zeros(4, 4); }\n";
        assert_eq!(count("crates/sim/src/evolve.rs", text), 1);
        assert_eq!(count("crates/synth/src/optimizer.rs", text), 1);
        assert_eq!(count("crates/math/src/dmat.rs", text), 0);
    }

    #[test]
    fn only_exact_4x4_fires() {
        assert_eq!(
            count("crates/sim/src/a.rs", "fn f() { DMat::zeros(27, 4); }\n"),
            0
        );
        assert_eq!(
            count("crates/sim/src/a.rs", "fn f() { DMat::zeros(4,4); }\n"),
            1,
            "whitespace-insensitive"
        );
    }

    #[test]
    fn strings_and_tests_do_not_fire() {
        assert_eq!(
            count(
                "crates/sim/src/a.rs",
                "fn f() { let s = \"DMat::zeros(4, 4)\"; }\n"
            ),
            0
        );
        assert_eq!(
            count(
                "crates/sim/src/a.rs",
                "#[cfg(test)]\nmod tests {\n    fn t() { DMat::zeros(4, 4); }\n}\n"
            ),
            0
        );
    }

    #[test]
    fn bin_files_exempt() {
        let f = SourceFile::parse(
            "crates/sim/src/main.rs",
            FileKind::Bin,
            "fn main() { DMat::zeros(4, 4); }\n",
        );
        let mut out = Vec::new();
        check(&f, &mut out);
        assert!(out.is_empty());
    }
}
