//! The rule implementations.
//!
//! Per-file rules take one [`crate::source::SourceFile`]; workspace
//! rules ([`error_coverage`], [`lock_order`]) need every file at once
//! because their evidence (test constructions, lock-acquisition edges)
//! crosses file boundaries.

pub mod error_coverage;
pub mod float_eq;
pub mod lock_order;
pub mod no_panic;
pub mod prefer_mat4;
