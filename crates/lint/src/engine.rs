//! The lint driver: workspace file collection, rule execution, and
//! `// lint: allow(rule)` suppression.

use crate::diag::Diagnostic;
use crate::rules;
use crate::source::{FileKind, SourceFile};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never scanned: third-party stand-ins, build output,
/// and the deliberately-dirty lint fixtures.
const SKIP_DIRS: &[&str] = &["vendor", "target", "lint_fixtures"];

/// Collects and parses every workspace source file.
///
/// Scanned roots are `src/`, `tests/`, and each `crates/*/{src,tests}`.
/// Files under a `tests/` directory are [`FileKind::Test`] (evidence
/// only); `main.rs`, files under `src/bin/`, and the whole `xtask`
/// crate are [`FileKind::Bin`]; everything else is [`FileKind::Lib`].
pub fn collect_files(root: &Path) -> Vec<SourceFile> {
    let mut dirs: Vec<(PathBuf, bool)> =
        vec![(root.join("src"), false), (root.join("tests"), true)];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut crates: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crates.sort();
        for c in crates {
            dirs.push((c.join("src"), false));
            dirs.push((c.join("tests"), true));
        }
    }
    let mut files = Vec::new();
    for (dir, is_tests) in dirs {
        collect_dir(root, &dir, is_tests, &mut files);
    }
    files
}

fn collect_dir(root: &Path, dir: &Path, is_tests: bool, out: &mut Vec<SourceFile>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            let skip = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| SKIP_DIRS.contains(&n));
            if !skip {
                collect_dir(root, &path, is_tests, out);
            }
            continue;
        }
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let kind = classify(&rel, is_tests);
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        out.push(SourceFile::parse(rel, kind, text));
    }
}

/// Rule-applicability class of a workspace-relative path.
fn classify(rel: &Path, is_tests: bool) -> FileKind {
    if is_tests {
        return FileKind::Test;
    }
    let in_xtask = rel.starts_with("crates/xtask");
    let is_main = rel.file_name().is_some_and(|n| n == "main.rs");
    let in_bin = rel.components().any(|c| c.as_os_str() == "bin");
    if in_xtask || is_main || in_bin {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// Runs every rule over pre-parsed files, applies suppression markers,
/// and returns diagnostics sorted by (file, line, column, rule).
pub fn analyze_files(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        rules::no_panic::check(f, &mut out);
        rules::float_eq::check(f, &mut out);
        rules::prefer_mat4::check(f, &mut out);
    }
    rules::error_coverage::check(files, &mut out);
    rules::lock_order::check(files, &mut out);

    let by_path: BTreeMap<&Path, &SourceFile> =
        files.iter().map(|f| (f.path.as_path(), f)).collect();
    out.retain(|d| {
        d.line == 0
            || !by_path
                .get(d.file.as_path())
                .is_some_and(|f| f.allows(d.line, d.rule))
    });
    out.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    out
}

/// Collects, parses, and analyzes the workspace rooted at `root`.
pub fn run_workspace(root: &Path) -> Vec<Diagnostic> {
    let files = collect_files(root);
    analyze_files(&files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::lib_file;

    #[test]
    fn allow_markers_suppress_findings() {
        let noisy = lib_file(
            "crates/x/src/a.rs",
            "fn f() {\n    x.unwrap(); // lint: allow(no-unwrap)\n    y.unwrap();\n}\n",
        );
        let diags = analyze_files(&[noisy]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags.iter().any(|d| d.rule == "no-unwrap" && d.line == 3));
        assert!(!diags.iter().any(|d| d.rule == "no-unwrap" && d.line == 2));
    }

    #[test]
    fn diagnostics_are_sorted() {
        let a = lib_file("crates/x/src/a.rs", "fn f() { x.unwrap(); }\n");
        let b = lib_file("crates/x/src/b.rs", "fn f() { y.unwrap(); }\n");
        let diags = analyze_files(&[b, a]);
        let files: Vec<_> = diags.iter().map(|d| d.file.display().to_string()).collect();
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }

    #[test]
    fn classify_kinds() {
        use std::path::Path;
        assert_eq!(
            classify(Path::new("crates/xtask/src/lint.rs"), false),
            FileKind::Bin
        );
        assert_eq!(
            classify(Path::new("crates/x/src/main.rs"), false),
            FileKind::Bin
        );
        assert_eq!(
            classify(Path::new("crates/x/src/bin/tool.rs"), false),
            FileKind::Bin
        );
        assert_eq!(
            classify(Path::new("crates/x/src/lib.rs"), false),
            FileKind::Lib
        );
        assert_eq!(
            classify(Path::new("crates/x/tests/t.rs"), true),
            FileKind::Test
        );
    }
}
