//! Diagnostics: rustc-style rendering and the machine-readable JSON
//! report CI uploads as an artifact.

use std::collections::BTreeMap;
use std::path::PathBuf;

/// How severe a finding is. Every shipped rule currently reports
/// errors; the field exists so future advisory rules fit the schema.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint gate.
    Error,
    /// Reported but does not fail the gate.
    Warning,
}

impl Severity {
    /// Lowercase name used in rendering and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable rule identifier (e.g. `lock-order`).
    pub rule: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Workspace-relative file.
    pub file: PathBuf,
    /// 1-based line (0 for file-level findings).
    pub line: usize,
    /// 1-based column (0 when not meaningful).
    pub col: usize,
    /// Human-readable description.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl Diagnostic {
    /// Renders the finding rustc-style.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}[{}]: {}\n",
            self.severity.name(),
            self.rule,
            self.message
        );
        if self.line > 0 {
            s.push_str(&format!(
                "  --> {}:{}{}\n",
                self.file.display(),
                self.line,
                if self.col > 0 {
                    format!(":{}", self.col)
                } else {
                    String::new()
                }
            ));
            if !self.snippet.is_empty() {
                s.push_str(&format!("   | {}\n", self.snippet));
            }
        } else {
            s.push_str(&format!("  --> {}\n", self.file.display()));
        }
        s
    }
}

/// Serializes findings as the lint report JSON document:
///
/// ```json
/// {
///   "version": 1,
///   "findings": [
///     {"rule": "...", "severity": "error", "file": "...",
///      "line": 1, "col": 1, "message": "...", "snippet": "..."}
///   ],
///   "summary": {"total": 0, "per_rule": {"rule-id": 0}}
/// }
/// ```
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut per_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for d in diags {
        *per_rule.entry(d.rule).or_insert(0) += 1;
    }
    let mut s = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}, \"snippet\": {}}}",
            json_str(d.rule),
            json_str(d.severity.name()),
            json_str(&d.file.display().to_string()),
            d.line,
            d.col,
            json_str(&d.message),
            json_str(&d.snippet),
        ));
    }
    if !diags.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"summary\": {\"total\": ");
    s.push_str(&diags.len().to_string());
    s.push_str(", \"per_rule\": {");
    for (i, (rule, n)) in per_rule.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("{}: {}", json_str(rule), n));
    }
    s.push_str("}}\n}\n");
    s
}

/// Escapes a string for JSON.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            rule: "no-unwrap",
            severity: Severity::Error,
            file: PathBuf::from("crates/x/src/a.rs"),
            line: 3,
            col: 7,
            message: "forbidden `.unwrap()` in library code".into(),
            snippet: "x.unwrap();".into(),
        }
    }

    #[test]
    fn render_is_rustc_style() {
        let r = diag().render();
        assert!(r.starts_with("error[no-unwrap]:"));
        assert!(r.contains("--> crates/x/src/a.rs:3:7"));
        assert!(r.contains("| x.unwrap();"));
    }

    #[test]
    fn json_roundtrips_special_chars() {
        let mut d = diag();
        d.message = "quote \" backslash \\ newline \n tab \t".into();
        let j = to_json(&[d]);
        assert!(j.contains(r#"quote \" backslash \\ newline \n tab \t"#));
        assert!(j.contains("\"total\": 1"));
        assert!(j.contains("\"no-unwrap\": 1"));
    }

    #[test]
    fn empty_report() {
        let j = to_json(&[]);
        assert!(j.contains("\"findings\": []"));
        assert!(j.contains("\"total\": 0"));
    }
}
