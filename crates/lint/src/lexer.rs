//! A Rust lexer producing spanned tokens plus the comment stream.
//!
//! The lexer understands everything the old line-based analyzer could
//! not: string literals (including raw and byte strings), character
//! literals vs. lifetimes, nested block comments, and numeric literal
//! classification (integer vs. float, with underscores, exponents and
//! type suffixes). Comments are not discarded — they are returned
//! alongside the tokens so suppression markers (`// lint: allow(rule)`)
//! can be read from real comments only, never from string contents.

/// What a single token is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`self`, `fn`, `shard_of`, ...).
    Ident(String),
    /// A lifetime such as `'a` (without the quote).
    Lifetime(String),
    /// An integer literal, verbatim (`42`, `0xFF`, `1_000u64`).
    Int(String),
    /// A floating-point literal, verbatim (`1.0`, `1e-12`, `2f64`).
    Float(String),
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`);
    /// contents are deliberately dropped — rules must not see them.
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation, with multi-character operators joined by maximal
    /// munch (`::`, `->`, `==`, `..=`, ...).
    Punct(&'static str),
}

/// One token with its position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token's kind and text.
    pub kind: TokenKind,
    /// 1-based source line of the token's first character.
    pub line: usize,
    /// 1-based column of the token's first character.
    pub col: usize,
}

/// One comment, kept for suppression-marker parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// Comment text including the `//` / `/*` introducer.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Whether the comment is the first non-whitespace on its line.
    pub standalone: bool,
}

/// Multi-character operators, longest first so maximal munch works by
/// scanning the table in order.
const OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Single-character punctuation mapped to static strings.
const SINGLES: &str = "+-*/%^&|!<>=.,;:#$?@(){}[]~'\"\\";

fn single_op(c: char) -> &'static str {
    let singles: &[(char, &'static str)] = &[
        ('+', "+"),
        ('-', "-"),
        ('*', "*"),
        ('/', "/"),
        ('%', "%"),
        ('^', "^"),
        ('&', "&"),
        ('|', "|"),
        ('!', "!"),
        ('<', "<"),
        ('>', ">"),
        ('=', "="),
        ('.', "."),
        (',', ","),
        (';', ";"),
        (':', ":"),
        ('#', "#"),
        ('$', "$"),
        ('?', "?"),
        ('@', "@"),
        ('(', "("),
        (')', ")"),
        ('{', "{"),
        ('}', "}"),
        ('[', "["),
        (']', "]"),
        ('~', "~"),
        ('\'', "'"),
        ('"', "\""),
        ('\\', "\\"),
    ];
    singles
        .iter()
        .find(|(ch, _)| *ch == c)
        .map(|(_, s)| *s)
        .unwrap_or("?")
}

/// Cursor over the source with line/column tracking.
struct Cursor<'a> {
    chars: Vec<char>,
    src: &'a str,
    pos: usize,
    line: usize,
    col: usize,
    /// Whether only whitespace has been seen since the last newline.
    at_line_start: bool,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            src,
            pos: 0,
            line: 1,
            col: 1,
            at_line_start: true,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
            self.at_line_start = true;
        } else {
            self.col += 1;
            if !c.is_whitespace() {
                self.at_line_start = false;
            }
        }
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        s.chars()
            .enumerate()
            .all(|(i, c)| self.peek_at(i) == Some(c))
    }
}

/// The lexer's full output.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// All code tokens, in source order.
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. The lexer never fails: malformed input (an
/// unterminated string, say) is consumed to end-of-file and the tokens
/// seen so far are returned — a linter must degrade gracefully on code
/// that rustc itself will reject later.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();
    while let Some(c) = cur.peek() {
        let (line, col, standalone) = (cur.line, cur.col, cur.at_line_start);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if cur.starts_with("//") {
            let mut text = String::new();
            while let Some(ch) = cur.peek() {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.push(Comment {
                text,
                line,
                standalone,
            });
            continue;
        }
        if cur.starts_with("/*") {
            let mut text = String::new();
            let mut depth = 0usize;
            while let Some(ch) = cur.peek() {
                if cur.starts_with("/*") {
                    depth += 1;
                    text.push_str("/*");
                    cur.bump();
                    cur.bump();
                } else if cur.starts_with("*/") {
                    depth = depth.saturating_sub(1);
                    text.push_str("*/");
                    cur.bump();
                    cur.bump();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(ch);
                    cur.bump();
                }
            }
            out.comments.push(Comment {
                text,
                line,
                standalone,
            });
            continue;
        }
        // Raw strings and byte strings: r"…", r#"…"#, br#"…"#, b"…".
        if c == 'r' || c == 'b' {
            if let Some(len) = raw_string_intro(&cur) {
                lex_raw_string(&mut cur, len);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    line,
                    col,
                });
                continue;
            }
            if c == 'b' && cur.peek_at(1) == Some('"') {
                cur.bump(); // b
                lex_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    line,
                    col,
                });
                continue;
            }
            if c == 'b' && cur.peek_at(1) == Some('\'') {
                cur.bump(); // b
                lex_char(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    line,
                    col,
                });
                continue;
            }
        }
        if c == '"' {
            lex_string(&mut cur);
            out.tokens.push(Token {
                kind: TokenKind::Str,
                line,
                col,
            });
            continue;
        }
        if c == '\'' {
            // Lifetime or char literal. A lifetime is `'` + ident with no
            // closing quote; a char literal closes after one (possibly
            // escaped) character.
            if is_char_literal(&cur) {
                lex_char(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    line,
                    col,
                });
            } else {
                cur.bump(); // '
                let mut name = String::new();
                while let Some(ch) = cur.peek() {
                    if ch.is_alphanumeric() || ch == '_' {
                        name.push(ch);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime(name),
                    line,
                    col,
                });
            }
            continue;
        }
        if c.is_ascii_digit() {
            let kind = lex_number(&mut cur);
            out.tokens.push(Token { kind, line, col });
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let mut name = String::new();
            while let Some(ch) = cur.peek() {
                if ch.is_alphanumeric() || ch == '_' {
                    name.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident(name),
                line,
                col,
            });
            continue;
        }
        // Punctuation: maximal munch over the operator table.
        let mut matched = None;
        for op in OPS {
            if cur.starts_with(op) {
                matched = Some(*op);
                break;
            }
        }
        match matched {
            Some(op) => {
                for _ in 0..op.len() {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Punct(op),
                    line,
                    col,
                });
            }
            None => {
                cur.bump();
                if SINGLES.contains(c) {
                    out.tokens.push(Token {
                        kind: TokenKind::Punct(single_op(c)),
                        line,
                        col,
                    });
                }
                // Anything else (stray unicode) is dropped.
            }
        }
    }
    let _ = cur.src;
    out
}

/// Length of a raw-string introducer at the cursor (`r`, `br` plus `#`s
/// and the opening quote), or `None` if the cursor is not at one.
fn raw_string_intro(cur: &Cursor<'_>) -> Option<usize> {
    let mut i = 0;
    if cur.peek_at(i) == Some('b') {
        i += 1;
    }
    if cur.peek_at(i) != Some('r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while cur.peek_at(i) == Some('#') {
        i += 1;
        hashes += 1;
    }
    if cur.peek_at(i) == Some('"') {
        Some(hashes)
    } else {
        None
    }
}

/// Consumes a raw string with `hashes` `#`s; the cursor sits on the
/// introducer.
fn lex_raw_string(cur: &mut Cursor<'_>, hashes: usize) {
    // Skip to and past the opening quote.
    while let Some(c) = cur.bump() {
        if c == '"' {
            break;
        }
    }
    let closer = format!("\"{}", "#".repeat(hashes));
    while cur.peek().is_some() {
        if cur.starts_with(&closer) {
            for _ in 0..closer.len() {
                cur.bump();
            }
            return;
        }
        cur.bump();
    }
}

/// Consumes a normal string literal; the cursor sits on the opening `"`.
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // "
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => return,
            _ => {}
        }
    }
}

/// Whether the cursor (on a `'`) starts a char literal rather than a
/// lifetime.
fn is_char_literal(cur: &Cursor<'_>) -> bool {
    match cur.peek_at(1) {
        Some('\\') => true,
        Some(c) if c != '\'' => cur.peek_at(2) == Some('\''),
        _ => false,
    }
}

/// Consumes a char/byte literal; the cursor sits on the opening `'`.
fn lex_char(cur: &mut Cursor<'_>) {
    cur.bump(); // '
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => return,
            _ => {}
        }
    }
}

/// Consumes a numeric literal and classifies it as integer or float.
fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    let mut text = String::new();
    let mut is_float = false;
    // Radix prefixes are always integers.
    if cur.peek() == Some('0')
        && matches!(
            cur.peek_at(1),
            Some('x') | Some('X') | Some('o') | Some('O') | Some('b') | Some('B')
        )
    {
        text.push(cur.bump().unwrap_or('0'));
        text.push(cur.bump().unwrap_or('x'));
        while let Some(c) = cur.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return TokenKind::Int(text);
    }
    while let Some(c) = cur.peek() {
        if c.is_ascii_digit() || c == '_' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // Fractional part: `1.5` or trailing `1.` — but not `1..5` (range)
    // and not `1.max(2)` (method call on an integer literal).
    if cur.peek() == Some('.') {
        match cur.peek_at(1) {
            Some(c2) if c2.is_ascii_digit() => {
                is_float = true;
                text.push('.');
                cur.bump();
                while let Some(c) = cur.peek() {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
            }
            Some('.') => {}
            Some(c2) if c2.is_alphabetic() || c2 == '_' => {}
            _ => {
                // `1.` at end of expression.
                is_float = true;
                text.push('.');
                cur.bump();
            }
        }
    }
    // Exponent.
    if matches!(cur.peek(), Some('e') | Some('E')) {
        let (sign, first_digit) = match cur.peek_at(1) {
            Some('+') | Some('-') => (1, cur.peek_at(2)),
            other => (0, other),
        };
        if first_digit.is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            text.push(cur.bump().unwrap_or('e'));
            for _ in 0..sign {
                text.push(cur.bump().unwrap_or('+'));
            }
            while let Some(c) = cur.peek() {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Type suffix.
    let mut suffix = String::new();
    while let Some(c) = cur.peek() {
        if c.is_alphanumeric() || c == '_' {
            suffix.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    if suffix.starts_with('f') {
        is_float = true;
    }
    text.push_str(&suffix);
    if is_float {
        TokenKind::Float(text)
    } else {
        TokenKind::Int(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_ops() {
        let k = kinds("a == b != c && d");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("=="),
                TokenKind::Ident("b".into()),
                TokenKind::Punct("!="),
                TokenKind::Ident("c".into()),
                TokenKind::Punct("&&"),
                TokenKind::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn strings_hide_contents() {
        let k = kinds(r#"let s = "panic! .unwrap()";"#);
        assert!(k.contains(&TokenKind::Str));
        assert!(!k
            .iter()
            .any(|t| matches!(t, TokenKind::Ident(i) if i == "panic")));
    }

    #[test]
    fn raw_strings_and_bytes() {
        let k = kinds(r###"let s = r#"x.unwrap() "quoted""#; let b = b"panic!";"###);
        assert_eq!(
            k.iter().filter(|t| **t == TokenKind::Str).count(),
            2,
            "{k:?}"
        );
        assert!(!k
            .iter()
            .any(|t| matches!(t, TokenKind::Ident(i) if i == "unwrap")));
    }

    #[test]
    fn comments_are_collected_not_tokenized() {
        let out = lex("let x = 1; // trailing note\n/* block\ncomment */ let y = 2;\n");
        assert_eq!(out.comments.len(), 2);
        assert!(out.comments[0].text.contains("trailing note"));
        assert!(!out.comments[0].standalone);
        assert!(out.comments[1].standalone);
        assert!(!out
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::Ident(i) if i == "comment")));
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(out.comments.len(), 1);
        assert!(out
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::Ident(i) if i == "fn")));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let k = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(k.iter().filter(|t| **t == TokenKind::Char).count(), 2);
        assert_eq!(
            k.iter()
                .filter(|t| matches!(t, TokenKind::Lifetime(l) if l == "a"))
                .count(),
            2
        );
    }

    #[test]
    fn number_classification() {
        assert_eq!(kinds("42"), vec![TokenKind::Int("42".into())]);
        assert_eq!(kinds("0xFF_u8"), vec![TokenKind::Int("0xFF_u8".into())]);
        assert_eq!(kinds("1.5"), vec![TokenKind::Float("1.5".into())]);
        assert_eq!(kinds("1e-12"), vec![TokenKind::Float("1e-12".into())]);
        assert_eq!(kinds("2f64"), vec![TokenKind::Float("2f64".into())]);
        assert_eq!(kinds("1_000"), vec![TokenKind::Int("1_000".into())]);
        // Ranges and method calls on integers stay integers.
        assert_eq!(
            kinds("1..5"),
            vec![
                TokenKind::Int("1".into()),
                TokenKind::Punct(".."),
                TokenKind::Int("5".into()),
            ]
        );
        assert_eq!(
            kinds("1.max(2)")[0],
            TokenKind::Int("1".into()),
            "method call on int literal"
        );
    }

    #[test]
    fn spans_are_one_based() {
        let out = lex("a\n  b");
        assert_eq!((out.tokens[0].line, out.tokens[0].col), (1, 1));
        assert_eq!((out.tokens[1].line, out.tokens[1].col), (2, 3));
    }
}
