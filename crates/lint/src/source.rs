//! Parsed source files: token trees plus the two per-file facts every
//! rule needs — which lines are `#[cfg(test)]` code and which lines
//! carry `// lint: allow(rule)` suppression markers.

use crate::lexer::{lex, Comment};
use crate::tree::{build, Tree};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// How a file's code is classified for rule applicability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: every rule applies.
    Lib,
    /// A binary target (`src/main.rs`, `src/bin/`, or the `xtask`
    /// crate): exempt from the panicking and terminal-output rules (a
    /// CLI may print and bail), not from `todo!`/`dbg!`.
    Bin,
    /// A file under a `tests/` directory: scanned only as evidence for
    /// the error-variant-coverage rule, never linted itself.
    Test,
}

/// One parsed source file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path.
    pub path: PathBuf,
    /// Rule-applicability class.
    pub kind: FileKind,
    /// Raw text (for diagnostics' snippet lines).
    pub text: String,
    /// Token trees of the whole file.
    pub trees: Vec<Tree>,
    /// Inclusive line ranges of `#[cfg(test)]` / `#[test]` items.
    test_ranges: Vec<(usize, usize)>,
    /// Line → rule ids allowed on that line (`"all"` allows everything).
    allow: BTreeMap<usize, BTreeSet<String>>,
}

impl SourceFile {
    /// Lexes and parses `text` into a source file.
    pub fn parse(path: impl Into<PathBuf>, kind: FileKind, text: impl Into<String>) -> Self {
        let path = path.into();
        let text = text.into();
        let lexed = lex(&text);
        let trees = build(&lexed.tokens);
        let mut test_ranges = Vec::new();
        collect_test_ranges(&trees, &mut test_ranges);
        let allow = collect_allow_markers(&lexed.comments);
        SourceFile {
            path,
            kind,
            text,
            trees,
            test_ranges,
            allow,
        }
    }

    /// Whether `line` lies inside test-gated code (or the whole file is
    /// a test file).
    pub fn is_test_line(&self, line: usize) -> bool {
        self.kind == FileKind::Test
            || self
                .test_ranges
                .iter()
                .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Whether a `lint: allow` marker on `line` suppresses `rule`.
    pub fn allows(&self, line: usize, rule: &str) -> bool {
        self.allow
            .get(&line)
            .is_some_and(|set| set.contains(rule) || set.contains("all"))
    }

    /// The trimmed source line (1-based), for diagnostic snippets.
    pub fn snippet(&self, line: usize) -> String {
        self.text
            .lines()
            .nth(line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// Whether this file is a crate root (`src/lib.rs`).
    pub fn is_crate_root(&self) -> bool {
        self.path.file_name().is_some_and(|n| n == "lib.rs")
            && self
                .path
                .parent()
                .and_then(|p| p.file_name())
                .is_some_and(|n| n == "src")
    }
}

/// Scans an item level for `#[cfg(test)]` / `#[test]` attributes and
/// records the line span of the item each one gates. Non-test brace
/// groups are recursed into (nested test modules); test groups are not
/// (the whole span is already covered).
fn collect_test_ranges(trees: &[Tree], out: &mut Vec<(usize, usize)>) {
    let mut i = 0;
    let mut pending: Option<usize> = None;
    while i < trees.len() {
        // Attribute: `#` `[…]` (outer) or `#` `!` `[…]` (inner).
        if trees[i].is_punct("#") {
            if let Some(Tree::Group(attr)) = trees.get(i + 1) {
                if attr.delim == '[' {
                    if is_test_attr(&attr.trees) {
                        pending.get_or_insert(trees[i].line());
                    }
                    i += 2;
                    continue;
                }
            }
            if trees.get(i + 1).is_some_and(|t| t.is_punct("!")) {
                if let Some(Tree::Group(attr)) = trees.get(i + 2) {
                    if attr.delim == '[' {
                        i += 3;
                        continue;
                    }
                }
            }
        }
        match &trees[i] {
            Tree::Group(g) if g.delim == '{' => {
                match pending.take() {
                    Some(start) => out.push((start, g.close_line)),
                    None => collect_test_ranges(&g.trees, out),
                }
                i += 1;
            }
            t if t.is_punct(";") => {
                // `#[cfg(test)] use …;` — the gated item ends here.
                if let Some(start) = pending.take() {
                    out.push((start, t.line()));
                }
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
}

/// Whether an attribute's tokens mark test code: `#[test]`, or
/// `#[cfg(test)]` in any combination — but never `cfg(not(test))`.
fn is_test_attr(trees: &[Tree]) -> bool {
    if trees.first().and_then(Tree::ident) == Some("test") && trees.len() == 1 {
        return true;
    }
    if trees.first().and_then(Tree::ident) == Some("cfg") {
        if let Some(Tree::Group(args)) = trees.get(1) {
            return contains_test_outside_not(&args.trees);
        }
    }
    false
}

fn contains_test_outside_not(trees: &[Tree]) -> bool {
    let mut i = 0;
    while i < trees.len() {
        if trees[i].ident() == Some("not") && matches!(trees.get(i + 1), Some(Tree::Group(_))) {
            i += 2; // skip the negated group entirely
            continue;
        }
        match &trees[i] {
            Tree::Group(g) if contains_test_outside_not(&g.trees) => return true,
            t if t.ident() == Some("test") => return true,
            _ => {}
        }
        i += 1;
    }
    false
}

/// Parses `lint: allow(...)` markers out of real comments. A marker
/// applies to its own line; a standalone `//` comment also covers the
/// following line.
fn collect_allow_markers(comments: &[Comment]) -> BTreeMap<usize, BTreeSet<String>> {
    let mut out: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for c in comments {
        let Some(pos) = c.text.find("lint: allow") else {
            continue;
        };
        let rest = &c.text[pos + "lint: allow".len()..];
        let mut ids = BTreeSet::new();
        let parsed = rest.strip_prefix('(').and_then(|r| {
            r.find(')')
                .map(|close| r[..close].split(',').map(|s| s.trim().to_string()))
        });
        match parsed {
            Some(list) => ids.extend(list.filter(|s| !s.is_empty())),
            None => {
                ids.insert("all".to_string());
            }
        }
        out.entry(c.line).or_default().extend(ids.iter().cloned());
        if c.standalone && c.text.starts_with("//") {
            out.entry(c.line + 1).or_default().extend(ids);
        }
    }
    out
}

/// Convenience for rule unit tests: parse as a library file at `path`.
pub fn lib_file(path: &str, text: &str) -> SourceFile {
    SourceFile::parse(Path::new(path), FileKind::Lib, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mod_ranges_detected() {
        let f = lib_file(
            "crates/x/src/a.rs",
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n",
        );
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let f = lib_file(
            "crates/x/src/a.rs",
            "#[cfg(not(test))]\nfn prod() {}\n#[cfg(all(test, unix))]\nfn t() {}\n",
        );
        assert!(!f.is_test_line(2));
        assert!(f.is_test_line(4));
    }

    #[test]
    fn single_gated_item_and_semi_items() {
        let f = lib_file(
            "crates/x/src/a.rs",
            "#[cfg(test)]\nuse foo::bar;\nfn lib() {}\n#[test]\nfn t() {\n    x;\n}\n",
        );
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
        assert!(f.is_test_line(6));
    }

    #[test]
    fn allow_markers_from_comments_only() {
        let f = lib_file(
            "crates/x/src/a.rs",
            "fn f() {} // lint: allow(no-unwrap)\n// lint: allow(no-expect)\nfn g() {}\nlet s = \"lint: allow(no-panic)\";\n",
        );
        assert!(f.allows(1, "no-unwrap"));
        assert!(!f.allows(1, "no-expect"));
        assert!(f.allows(2, "no-expect"));
        assert!(f.allows(3, "no-expect"), "standalone covers next line");
        assert!(!f.allows(4, "no-panic"), "markers in strings are ignored");
    }

    #[test]
    fn bare_allow_means_all() {
        let f = lib_file("crates/x/src/a.rs", "fn f() {} // lint: allow\n");
        assert!(f.allows(1, "anything"));
    }

    #[test]
    fn crate_root_detection() {
        assert!(lib_file("crates/x/src/lib.rs", "").is_crate_root());
        assert!(!lib_file("crates/x/src/a.rs", "").is_crate_root());
    }
}
