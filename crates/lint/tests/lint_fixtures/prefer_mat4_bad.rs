// Fixture: heap-allocated 4x4 matrix in a hot-path crate. The test
// parses this file at a `crates/sim/src/` path, where prefer-mat4
// applies.

fn propagator() -> DMat {
    let mut u = DMat::zeros(4, 4);
    u.set_identity();
    u
}
