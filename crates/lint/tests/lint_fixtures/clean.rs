//! Fixture: a file every rule must pass — it exercises the lookalike
//! patterns that tripped the old line-based analyzer (forbidden names
//! inside strings and comments, guard-consuming condvar waits,
//! consistent lock ordering, tolerance-based float comparisons) and a
//! fully test-covered public error enum.

#![forbid(unsafe_code)]

/// Near-equality with an explicit tolerance (never flagged).
pub fn approx_eq(a: f64, b: f64) -> bool {
    // The string below mentions x.unwrap() and panic! but is just data.
    let _doc = "call sites must never use x.unwrap() or panic!";
    (a - b).abs() < 1e-12
}

/// Exact bitwise comparison via the approved helper.
pub fn same_bits(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

/// Consistent lock order plus a guard-consuming condvar wait.
pub fn drain(s: &Shared) {
    let mut queue = s.queue.lock();
    while queue.is_empty() {
        queue = s.ready.wait(queue);
    }
    let stats = s.stats.lock();
    stats.record(queue.len());
}

/// Same order as `drain`, so no cycle.
pub fn snapshot(s: &Shared) {
    let queue = s.queue.lock();
    let stats = s.stats.lock();
    stats.record(queue.len());
}

/// A covered public error enum.
pub enum CleanError {
    /// The only variant; the test below exercises it.
    Saturated,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_covered_and_tests_may_unwrap() {
        let e = CleanError::Saturated;
        assert!(matches!(e, CleanError::Saturated));
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
