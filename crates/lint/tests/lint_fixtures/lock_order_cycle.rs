// Fixture: two functions acquire the same pair of locks in opposite
// orders — the classic AB/BA deadlock. The lock-order rule must report
// the cycle at both acquisition sites.

fn transfer(s: &Shared) {
    let accounts = s.accounts.lock();
    let journal = s.journal.lock();
    apply(accounts, journal);
}

fn audit(s: &Shared) {
    let journal = s.journal.lock();
    let accounts = s.accounts.lock();
    reconcile(journal, accounts);
}
