// Fixture: exact floating-point comparisons the float-eq rule must
// flag — literal operands on either side and an `as f64` cast.

fn is_zero(x: f64) -> bool {
    x == 0.0
}

fn not_epsilon(x: f64) -> bool {
    1e-12 != x
}

fn cast_compare(n: u32, y: f64) -> bool {
    n as f64 == y
}
