// Fixture: guards held across blocking calls. Each function below must
// produce exactly one lock-order finding.

fn recv_under_lock(s: &Shared) {
    let state = s.state.lock();
    let job = s.rx.recv();
    state.apply(job);
}

fn join_under_lock(s: &Shared) {
    let registry = s.registry.lock();
    s.worker.join();
    registry.clear();
}

fn reentrant(s: &Shared) {
    let a = s.state.lock();
    let b = s.state.lock();
    merge(a, b);
}

fn second_lock_across_wait(s: &Shared) {
    let other = s.other.lock();
    let mut inner = s.state.lock();
    inner = s.cv.wait(inner);
    sync(other, inner);
}
