// Fixture: a public error enum with three variants, only one of which
// is exercised by the test module below — the other two must be
// reported by error-variant-coverage.

/// Fixture error type.
pub enum FixtureError {
    /// Covered by the test below.
    Covered,
    /// Never constructed or matched in any test.
    NeverTested {
        /// Payload.
        detail: String,
    },
    /// Also never exercised.
    Forgotten(u32),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_one_variant_is_exercised() {
        let e = FixtureError::Covered;
        drop(e);
    }
}
