// Fixture: the panicking-API rules. Every statement in `shortcuts`
// must produce a finding; the missing crate-root attribute is checked
// by parsing this file at a `lib.rs` path (forbid-unsafe).

fn shortcuts(x: Option<u32>, y: Result<u32, E>) {
    let a = x.unwrap();
    let b = y.expect("always ok");
    panic!("fixture {a} {b}");
    todo!();
    dbg!(a);
    println!("done");
}
