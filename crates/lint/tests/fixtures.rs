//! Negative tests: every rule must flag its bad fixture with exactly
//! the expected rule ids, and the clean fixture must pass every rule.
//!
//! The fixture sources live under `lint_fixtures/` (a directory the
//! engine's workspace scan deliberately skips) and are parsed here at
//! representative workspace paths.

use nsb_lint::{analyze_files, to_json, FileKind, SourceFile};

fn lib(path: &str, text: &str) -> SourceFile {
    SourceFile::parse(path, FileKind::Lib, text)
}

fn rules_of(files: &[SourceFile]) -> Vec<&'static str> {
    analyze_files(files).into_iter().map(|d| d.rule).collect()
}

#[test]
fn lock_order_flags_the_two_lock_cycle() {
    let f = lib(
        "crates/x/src/cycle.rs",
        include_str!("lint_fixtures/lock_order_cycle.rs"),
    );
    let diags = analyze_files(&[f]);
    assert_eq!(
        diags.len(),
        2,
        "one finding per acquisition site: {diags:?}"
    );
    for d in &diags {
        assert_eq!(d.rule, "lock-order");
        assert!(d.message.contains("lock-order cycle"), "{}", d.message);
        assert!(d.message.contains("accounts"), "{}", d.message);
        assert!(d.message.contains("journal"), "{}", d.message);
    }
}

#[test]
fn lock_order_flags_blocking_calls_under_locks() {
    let f = lib(
        "crates/x/src/blocking.rs",
        include_str!("lint_fixtures/lock_order_blocking.rs"),
    );
    let diags = analyze_files(&[f]);
    assert_eq!(diags.len(), 4, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "lock-order"));
    let messages: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains(".recv")));
    assert!(messages.iter().any(|m| m.contains(".join")));
    assert!(messages.iter().any(|m| m.contains("not reentrant")));
    assert!(messages
        .iter()
        .any(|m| m.contains("Condvar wait on another lock")));
}

#[test]
fn float_eq_flags_exact_comparisons() {
    let f = lib(
        "crates/x/src/cmp.rs",
        include_str!("lint_fixtures/float_eq_bad.rs"),
    );
    assert_eq!(rules_of(&[f]), vec!["float-eq"; 3]);
}

#[test]
fn no_panic_rules_flag_each_shortcut() {
    // Parsed at a crate-root path so the missing
    // `#![forbid(unsafe_code)]` is reported too.
    let f = lib(
        "crates/x/src/lib.rs",
        include_str!("lint_fixtures/no_panic_bad.rs"),
    );
    let mut rules = rules_of(&[f]);
    rules.sort_unstable();
    assert_eq!(
        rules,
        vec![
            "forbid-unsafe",
            "no-dbg",
            "no-expect",
            "no-panic",
            "no-println",
            "no-todo",
            "no-unwrap",
        ]
    );
}

#[test]
fn error_coverage_flags_untested_variants() {
    let f = lib(
        "crates/x/src/err.rs",
        include_str!("lint_fixtures/error_coverage_bad.rs"),
    );
    let diags = analyze_files(&[f]);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "error-variant-coverage"));
    assert!(diags[0].message.contains("FixtureError::NeverTested"));
    assert!(diags[1].message.contains("FixtureError::Forgotten"));
}

#[test]
fn prefer_mat4_flags_heap_4x4_in_hot_path() {
    let f = lib(
        "crates/sim/src/fixture.rs",
        include_str!("lint_fixtures/prefer_mat4_bad.rs"),
    );
    assert_eq!(rules_of(&[f]), vec!["prefer-mat4"]);
}

#[test]
fn clean_fixture_passes_every_rule() {
    // Parsed at a crate-root path: the strictest setting, where even
    // forbid-unsafe applies.
    let f = lib(
        "crates/x/src/lib.rs",
        include_str!("lint_fixtures/clean.rs"),
    );
    let diags = analyze_files(&[f]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn json_report_counts_per_rule() {
    let f = lib(
        "crates/x/src/cmp.rs",
        include_str!("lint_fixtures/float_eq_bad.rs"),
    );
    let json = to_json(&analyze_files(&[f]));
    assert!(json.contains("\"version\": 1"), "{json}");
    assert!(json.contains("\"float-eq\": 3"), "{json}");
    assert!(json.contains("\"total\": 3"), "{json}");
}
