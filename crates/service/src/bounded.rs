//! A bounded multi-producer multi-consumer queue on `Mutex` + `Condvar`.
//!
//! Producers never block: a full queue is reported back as an error so
//! submitters get immediate backpressure. Consumers block in
//! [`BoundedQueue::pop`] until an item arrives or the queue is closed
//! *and* drained — which is exactly the graceful-shutdown contract the
//! service needs (accepted jobs still run after `close`).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Recovers the guard from a poisoned lock: the queue's invariants hold
/// at every await point, so a panic elsewhere never leaves `Inner`
/// half-updated and it is always safe to continue.
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Why a push was rejected.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue holds `capacity` items; the value is handed back.
    Full(T),
    /// The queue was closed; the value is handed back.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The queue. All methods take `&self`; share it via `Arc`.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        relock(self.inner.lock()).items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// Returns the item back inside [`PushError::Full`] or
    /// [`PushError::Closed`].
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = relock(self.inner.lock());
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and returns it, or returns
    /// `None` once the queue is closed **and** fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = relock(self.inner.lock());
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = relock(self.not_empty.wait(inner));
        }
    }

    /// Closes the queue: pushes start failing immediately, pops keep
    /// draining what was already accepted, then return `None`.
    pub fn close(&self) {
        relock(self.inner.lock()).closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert_eq!(q.try_push("b"), Err(PushError::Closed("b")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.try_push(7).unwrap();
        q.close();
        let mut got: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(7)]);
    }

    #[test]
    fn many_producers_many_consumers() {
        let q = Arc::new(BoundedQueue::new(64));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..16 {
                        loop {
                            if q.try_push(p * 100 + i).is_ok() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    while let Some(v) = q.pop() {
                        seen.push(v);
                    }
                    seen
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<_> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort();
        let mut expected: Vec<_> = (0..4)
            .flat_map(|p| (0..16).map(move |i| p * 100 + i))
            .collect();
        expected.sort();
        assert_eq!(all, expected);
    }
}
