//! The shared synthesis cache: a sharded LRU map implementing
//! [`nsb_synth::SynthCache`].
//!
//! Keys are quantized Weyl coordinates plus basis and mode fingerprints
//! (see `nsb_synth::SynthKey`); every entry also stores the full target
//! fingerprint, and lookups only return on an exact match, so a hit is
//! bit-identical to a fresh synthesis. Sharding keeps lock contention low
//! when many workers compile concurrently: each key hashes to one shard
//! with its own mutex and its own LRU clock.
//!
//! The cache overrides [`SynthCache::get_or_compute`] with **single-flight
//! miss coalescing**: the first thread to miss on a `(key, fingerprint)`
//! registers it as in-flight and synthesizes outside the shard lock; later
//! threads missing on the same pair block on the shard's condvar and reuse
//! the published result, so each decomposition is computed exactly once no
//! matter how many workers race to it.

use crate::metrics::ServiceMetrics;
use nsb_synth::{SynthCache, SynthKey, SynthesisFailed, Synthesized2Q};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Recovers the guard from a poisoned shard lock: shard updates never
/// panic mid-mutation (plain map/counter writes), so the data is intact.
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Hit/miss totals of a [`SharedSynthCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a stored synthesis.
    pub hits: u64,
    /// Lookups that found nothing (or a fingerprint mismatch).
    pub misses: u64,
    /// Misses that waited for another thread's in-flight synthesis
    /// instead of recomputing (single-flight coalescing).
    pub coalesced: u64,
    /// Entries currently stored across all shards.
    pub entries: usize,
}

#[derive(Clone)]
struct Entry {
    target_fp: u64,
    value: Synthesized2Q,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<SynthKey, Entry>,
    clock: u64,
    /// `(key, fingerprint)` pairs some thread is currently synthesizing.
    inflight: HashSet<(SynthKey, u64)>,
}

/// One shard: its state plus the condvar single-flight waiters block on.
#[derive(Default)]
struct ShardLock {
    state: Mutex<Shard>,
    flights: Condvar,
}

/// Removes an in-flight registration (and wakes waiters) even if the
/// computing closure panics, so no waiter blocks forever.
struct InflightGuard<'a> {
    shard: &'a ShardLock,
    pair: (SynthKey, u64),
    armed: bool,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut state = relock(self.shard.state.lock());
            state.inflight.remove(&self.pair);
            drop(state);
            self.shard.flights.notify_all();
        }
    }
}

/// A thread-safe LRU synthesis cache shared by all service workers.
pub struct SharedSynthCache {
    shards: Vec<ShardLock>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    metrics: Option<Arc<ServiceMetrics>>,
}

impl SharedSynthCache {
    /// Number of independently locked shards.
    pub const SHARDS: usize = 16;

    /// Minimum effective capacity: one entry per shard. A requested
    /// capacity below this (including zero) is clamped up — a cache that
    /// cannot hold anything would silently turn every lookup into a miss
    /// and defeat the service's reuse guarantees, so it is not
    /// constructible.
    pub const MIN_CAPACITY: usize = Self::SHARDS;

    /// Creates a cache holding at most ~`capacity` entries (rounded up
    /// to a multiple of the shard count; clamped to at least
    /// [`MIN_CAPACITY`](Self::MIN_CAPACITY), i.e. one entry per shard).
    pub fn new(capacity: usize) -> Self {
        SharedSynthCache {
            shards: (0..Self::SHARDS).map(|_| ShardLock::default()).collect(),
            capacity_per_shard: capacity.max(Self::MIN_CAPACITY).div_ceil(Self::SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            metrics: None,
        }
    }

    /// Snapshots every live entry (key, target fingerprint, value), e.g.
    /// for persistence through `nsb-store`. Shards are locked one at a
    /// time, so concurrent lookups and stores proceed on the others; the
    /// result is a consistent per-shard (not globally atomic) snapshot,
    /// which is sufficient because entries are immutable once stored.
    pub fn export_entries(&self) -> Vec<(SynthKey, u64, Synthesized2Q)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = relock(shard.state.lock());
            out.extend(
                shard
                    .map
                    .iter()
                    .map(|(k, e)| (*k, e.target_fp, e.value.clone())),
            );
        }
        out
    }

    /// Inserts entries without touching the hit/miss counters — the
    /// warm-start path. Returns the number of entries inserted (the LRU
    /// bound still applies, so a preload larger than the capacity keeps
    /// only the most recently inserted entries per shard).
    pub fn preload<I>(&self, entries: I) -> usize
    where
        I: IntoIterator<Item = (SynthKey, u64, Synthesized2Q)>,
    {
        let mut n = 0;
        for (key, target_fp, value) in entries {
            self.store(key, target_fp, &value);
            n += 1;
        }
        n
    }

    /// Mirrors hit/miss counts into `metrics` (for
    /// [`ServiceMetrics::report`]) in addition to the cache's own
    /// counters.
    pub fn with_metrics(mut self, metrics: Arc<ServiceMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Current hit/miss/entry totals.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| relock(s.state.lock()).map.len())
                .sum(),
        }
    }

    fn shard_of(&self, key: &SynthKey) -> &ShardLock {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    fn record(&self, hit: bool) {
        let (own, mirrored) = if hit {
            (&self.hits, self.metrics.as_ref().map(|m| &m.cache_hits))
        } else {
            (&self.misses, self.metrics.as_ref().map(|m| &m.cache_misses))
        };
        own.fetch_add(1, Ordering::Relaxed);
        if let Some(counter) = mirrored {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn record_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.coalesced_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Inserts under an already-held shard lock, evicting past capacity.
    fn insert_locked(
        &self,
        shard: &mut Shard,
        key: SynthKey,
        target_fp: u64,
        value: &Synthesized2Q,
    ) {
        shard.clock += 1;
        let clock = shard.clock;
        shard.map.insert(
            key,
            Entry {
                target_fp,
                value: value.clone(),
                last_used: clock,
            },
        );
        // Evict the least recently used entry once over capacity. The
        // linear scan is fine: shards are small and eviction only runs
        // on insertions past capacity.
        while shard.map.len() > self.capacity_per_shard {
            let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            else {
                break; // unreachable: len > capacity >= 1
            };
            shard.map.remove(&oldest);
        }
    }
}

impl SynthCache for SharedSynthCache {
    fn lookup(&self, key: &SynthKey, target_fp: u64) -> Option<Synthesized2Q> {
        let mut shard = relock(self.shard_of(key).state.lock());
        shard.clock += 1;
        let clock = shard.clock;
        let found = match shard.map.get_mut(key) {
            Some(entry) if entry.target_fp == target_fp => {
                entry.last_used = clock;
                Some(entry.value.clone())
            }
            _ => None,
        };
        drop(shard);
        self.record(found.is_some());
        found
    }

    fn store(&self, key: SynthKey, target_fp: u64, value: &Synthesized2Q) {
        let shard_lock = self.shard_of(&key);
        let mut shard = relock(shard_lock.state.lock());
        self.insert_locked(&mut shard, key, target_fp, value);
    }

    /// Single-flight implementation: each `(key, fingerprint)` pair is
    /// synthesized by exactly one thread at a time; racing threads block
    /// on the shard condvar and reuse the published value.
    ///
    /// Accounting: every call records exactly one hit or miss — a hit
    /// when the value came out of the cache (immediately or after
    /// waiting), a miss when this call ran `compute`. Calls that waited
    /// additionally bump the `coalesced` counter once.
    ///
    /// Failed computations are not cached: all waiters of a failed
    /// flight wake, and the first to re-check becomes the next computer,
    /// so a transient failure cannot poison the key. Likewise, a value
    /// evicted between publication and wake-up is simply recomputed.
    fn get_or_compute(
        &self,
        key: SynthKey,
        target_fp: u64,
        compute: &mut dyn FnMut() -> Result<Synthesized2Q, SynthesisFailed>,
    ) -> Result<Synthesized2Q, SynthesisFailed> {
        let shard_lock = self.shard_of(&key);
        let pair = (key, target_fp);
        let mut waited = false;
        let mut shard = relock(shard_lock.state.lock());
        loop {
            shard.clock += 1;
            let clock = shard.clock;
            if let Some(entry) = shard.map.get_mut(&key) {
                if entry.target_fp == target_fp {
                    entry.last_used = clock;
                    let value = entry.value.clone();
                    drop(shard);
                    self.record(true);
                    return Ok(value);
                }
            }
            if shard.inflight.contains(&pair) {
                if !waited {
                    waited = true;
                    self.record_coalesced();
                }
                shard = relock(shard_lock.flights.wait(shard));
                continue;
            }
            shard.inflight.insert(pair);
            break;
        }
        drop(shard);
        self.record(false);
        // Synthesize outside the lock; the guard unregisters the flight
        // and wakes waiters even on panic.
        let mut flight = InflightGuard {
            shard: shard_lock,
            pair,
            armed: true,
        };
        let result = compute();
        let mut shard = relock(shard_lock.state.lock());
        shard.inflight.remove(&pair);
        flight.armed = false;
        if let Ok(value) = &result {
            self.insert_locked(&mut shard, key, target_fp, value);
        }
        drop(shard);
        shard_lock.flights.notify_all();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsb_math::Mat4;
    use nsb_synth::Decomposer;

    fn key(tag: u8) -> SynthKey {
        SynthKey {
            coord: [tag as i64, 0, 0],
            basis_id: 1,
            tag,
        }
    }

    fn sample() -> Synthesized2Q {
        Decomposer::new(Mat4::sqrt_iswap())
            .decompose(&Mat4::cnot())
            .unwrap()
    }

    #[test]
    fn lookup_respects_fingerprint() {
        let cache = SharedSynthCache::new(64);
        let v = sample();
        cache.store(key(0), 111, &v);
        assert!(cache.lookup(&key(0), 222).is_none(), "fingerprint mismatch");
        assert!(cache.lookup(&key(0), 111).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        // Capacity 16 => one entry per shard; storing two keys in the
        // same shard must evict the first.
        let cache = SharedSynthCache::new(1);
        let v = sample();
        // Find two distinct keys landing in the same shard.
        let base = key(0);
        let mut other = None;
        for t in 1u8..=255 {
            let k = key(t);
            if std::ptr::eq(cache.shard_of(&k), cache.shard_of(&base)) {
                other = Some(k);
                break;
            }
        }
        let other = other.expect("some key shares a shard");
        cache.store(base, 1, &v);
        cache.store(other, 2, &v);
        assert!(cache.lookup(&base, 1).is_none(), "evicted");
        assert!(cache.lookup(&other, 2).is_some());
    }

    #[test]
    fn touch_on_lookup_protects_hot_entries() {
        let cache = SharedSynthCache::new(1);
        let v = sample();
        let base = key(0);
        let mut same_shard = Vec::new();
        for t in 1u8..=255 {
            let k = key(t);
            if std::ptr::eq(cache.shard_of(&k), cache.shard_of(&base)) {
                same_shard.push(k);
                if same_shard.len() == 2 {
                    break;
                }
            }
        }
        let [a, b] = same_shard[..] else {
            panic!("expected two keys sharing the base shard")
        };
        cache.store(base, 1, &v);
        cache.store(a, 2, &v); // evicts base (cap 1/shard)
        assert!(cache.lookup(&a, 2).is_some()); // touch a
        cache.store(b, 3, &v); // must evict nothing older than a... base gone, a is hot
        assert!(cache.lookup(&b, 3).is_some());
        let stats = cache.stats();
        assert!(stats.entries <= SharedSynthCache::SHARDS);
    }

    #[test]
    fn zero_capacity_is_clamped_to_a_working_cache() {
        let cache = SharedSynthCache::new(0);
        let v = sample();
        cache.store(key(3), 9, &v);
        assert!(
            cache.lookup(&key(3), 9).is_some(),
            "clamped cache must still hold at least one entry per shard"
        );
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        // The clamp is exactly MIN_CAPACITY: zero and MIN_CAPACITY behave
        // the same (one entry per shard).
        assert_eq!(SharedSynthCache::MIN_CAPACITY, SharedSynthCache::SHARDS);
    }

    #[test]
    fn export_preload_round_trip_preserves_bits() {
        let cache = SharedSynthCache::new(64);
        let v = sample();
        cache.store(key(1), 10, &v);
        cache.store(key(2), 20, &v);
        let exported = cache.export_entries();
        assert_eq!(exported.len(), 2);
        let fresh = SharedSynthCache::new(64);
        assert_eq!(fresh.preload(exported), 2);
        let warm = fresh.lookup(&key(1), 10).expect("warm hit");
        let cold = cache.lookup(&key(1), 10).expect("original");
        assert_eq!(warm.error.to_bits(), cold.error.to_bits());
        assert_eq!(warm.phase.to_bits(), cold.phase.to_bits());
        assert_eq!(warm.locals.len(), cold.locals.len());
        // Preloading must not register hits or misses.
        let stats = SharedSynthCache::new(8);
        stats.preload(cache.export_entries());
        let s = stats.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
    }

    #[test]
    fn single_flight_coalesces_concurrent_misses() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;
        use std::time::Duration;

        const THREADS: usize = 4;
        let metrics = Arc::new(ServiceMetrics::default());
        let cache = SharedSynthCache::new(64).with_metrics(metrics.clone());
        let v = sample();
        let computes = AtomicUsize::new(0);
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    barrier.wait();
                    let got = cache
                        .get_or_compute(key(7), 42, &mut || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough that every
                            // other thread arrives while it is in progress.
                            std::thread::sleep(Duration::from_millis(200));
                            Ok(v.clone())
                        })
                        .unwrap();
                    assert_eq!(got.layers, v.layers);
                });
            }
        });
        assert_eq!(
            computes.load(Ordering::SeqCst),
            1,
            "exactly one thread must synthesize"
        );
        let stats = cache.stats();
        assert_eq!(stats.coalesced, (THREADS - 1) as u64);
        assert_eq!((stats.hits, stats.misses), ((THREADS - 1) as u64, 1));
        assert_eq!(
            metrics.coalesced_misses.load(Ordering::Relaxed),
            (THREADS - 1) as u64,
            "coalesced misses must mirror into service metrics"
        );
    }

    #[test]
    fn failed_flight_is_not_cached_and_wakes_waiters() {
        let cache = SharedSynthCache::new(64);
        let v = sample();
        let err = SynthesisFailed {
            best_error: 1.0,
            max_layers: 2,
        };
        let failed = cache.get_or_compute(key(9), 5, &mut || Err(err.clone()));
        assert!(failed.is_err());
        assert!(
            cache.lookup(&key(9), 5).is_none(),
            "failures must not be cached"
        );
        // The key is immediately available for the next computer.
        let ok = cache
            .get_or_compute(key(9), 5, &mut || Ok(v.clone()))
            .unwrap();
        assert_eq!(ok.layers, v.layers);
        assert!(cache.lookup(&key(9), 5).is_some());
    }

    #[test]
    fn get_or_compute_hit_skips_compute() {
        let cache = SharedSynthCache::new(64);
        let v = sample();
        cache.store(key(4), 8, &v);
        let got = cache
            .get_or_compute(key(4), 8, &mut || {
                panic!("must not compute on a hit");
            })
            .unwrap();
        assert_eq!(got.layers, v.layers);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.coalesced), (1, 0));
    }

    #[test]
    fn metrics_mirroring() {
        let metrics = Arc::new(ServiceMetrics::default());
        let cache = SharedSynthCache::new(8).with_metrics(metrics.clone());
        let v = sample();
        cache.store(key(1), 5, &v);
        cache.lookup(&key(1), 5);
        cache.lookup(&key(2), 5);
        assert_eq!(metrics.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.cache_misses.load(Ordering::Relaxed), 1);
        assert!((metrics.cache_hit_rate() - 0.5).abs() < 1e-12);
    }
}
