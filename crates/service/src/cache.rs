//! The shared synthesis cache: a sharded LRU map implementing
//! [`nsb_synth::SynthCache`].
//!
//! Keys are quantized Weyl coordinates plus basis and mode fingerprints
//! (see `nsb_synth::SynthKey`); every entry also stores the full target
//! fingerprint, and lookups only return on an exact match, so a hit is
//! bit-identical to a fresh synthesis. Sharding keeps lock contention low
//! when many workers compile concurrently: each key hashes to one shard
//! with its own mutex and its own LRU clock.

use crate::metrics::ServiceMetrics;
use nsb_synth::{SynthCache, SynthKey, Synthesized2Q};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Recovers the guard from a poisoned shard lock: shard updates never
/// panic mid-mutation (plain map/counter writes), so the data is intact.
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Hit/miss totals of a [`SharedSynthCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a stored synthesis.
    pub hits: u64,
    /// Lookups that found nothing (or a fingerprint mismatch).
    pub misses: u64,
    /// Entries currently stored across all shards.
    pub entries: usize,
}

#[derive(Clone)]
struct Entry {
    target_fp: u64,
    value: Synthesized2Q,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<SynthKey, Entry>,
    clock: u64,
}

/// A thread-safe LRU synthesis cache shared by all service workers.
pub struct SharedSynthCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    metrics: Option<Arc<ServiceMetrics>>,
}

impl SharedSynthCache {
    /// Number of independently locked shards.
    pub const SHARDS: usize = 16;

    /// Minimum effective capacity: one entry per shard. A requested
    /// capacity below this (including zero) is clamped up — a cache that
    /// cannot hold anything would silently turn every lookup into a miss
    /// and defeat the service's reuse guarantees, so it is not
    /// constructible.
    pub const MIN_CAPACITY: usize = Self::SHARDS;

    /// Creates a cache holding at most ~`capacity` entries (rounded up
    /// to a multiple of the shard count; clamped to at least
    /// [`MIN_CAPACITY`](Self::MIN_CAPACITY), i.e. one entry per shard).
    pub fn new(capacity: usize) -> Self {
        SharedSynthCache {
            shards: (0..Self::SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            capacity_per_shard: capacity.max(Self::MIN_CAPACITY).div_ceil(Self::SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            metrics: None,
        }
    }

    /// Snapshots every live entry (key, target fingerprint, value), e.g.
    /// for persistence through `nsb-store`. Shards are locked one at a
    /// time, so concurrent lookups and stores proceed on the others; the
    /// result is a consistent per-shard (not globally atomic) snapshot,
    /// which is sufficient because entries are immutable once stored.
    pub fn export_entries(&self) -> Vec<(SynthKey, u64, Synthesized2Q)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = relock(shard.lock());
            out.extend(
                shard
                    .map
                    .iter()
                    .map(|(k, e)| (*k, e.target_fp, e.value.clone())),
            );
        }
        out
    }

    /// Inserts entries without touching the hit/miss counters — the
    /// warm-start path. Returns the number of entries inserted (the LRU
    /// bound still applies, so a preload larger than the capacity keeps
    /// only the most recently inserted entries per shard).
    pub fn preload<I>(&self, entries: I) -> usize
    where
        I: IntoIterator<Item = (SynthKey, u64, Synthesized2Q)>,
    {
        let mut n = 0;
        for (key, target_fp, value) in entries {
            self.store(key, target_fp, &value);
            n += 1;
        }
        n
    }

    /// Mirrors hit/miss counts into `metrics` (for
    /// [`ServiceMetrics::report`]) in addition to the cache's own
    /// counters.
    pub fn with_metrics(mut self, metrics: Arc<ServiceMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Current hit/miss/entry totals.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| relock(s.lock()).map.len()).sum(),
        }
    }

    fn shard_of(&self, key: &SynthKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    fn record(&self, hit: bool) {
        let (own, mirrored) = if hit {
            (&self.hits, self.metrics.as_ref().map(|m| &m.cache_hits))
        } else {
            (&self.misses, self.metrics.as_ref().map(|m| &m.cache_misses))
        };
        own.fetch_add(1, Ordering::Relaxed);
        if let Some(counter) = mirrored {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl SynthCache for SharedSynthCache {
    fn lookup(&self, key: &SynthKey, target_fp: u64) -> Option<Synthesized2Q> {
        let mut shard = relock(self.shard_of(key).lock());
        shard.clock += 1;
        let clock = shard.clock;
        let found = match shard.map.get_mut(key) {
            Some(entry) if entry.target_fp == target_fp => {
                entry.last_used = clock;
                Some(entry.value.clone())
            }
            _ => None,
        };
        drop(shard);
        self.record(found.is_some());
        found
    }

    fn store(&self, key: SynthKey, target_fp: u64, value: &Synthesized2Q) {
        let mut shard = relock(self.shard_of(&key).lock());
        shard.clock += 1;
        let clock = shard.clock;
        shard.map.insert(
            key,
            Entry {
                target_fp,
                value: value.clone(),
                last_used: clock,
            },
        );
        // Evict the least recently used entry once over capacity. The
        // linear scan is fine: shards are small and eviction only runs
        // on insertions past capacity.
        while shard.map.len() > self.capacity_per_shard {
            let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            else {
                break; // unreachable: len > capacity >= 1
            };
            shard.map.remove(&oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsb_math::Mat4;
    use nsb_synth::Decomposer;

    fn key(tag: u8) -> SynthKey {
        SynthKey {
            coord: [tag as i64, 0, 0],
            basis_id: 1,
            tag,
        }
    }

    fn sample() -> Synthesized2Q {
        Decomposer::new(Mat4::sqrt_iswap())
            .decompose(&Mat4::cnot())
            .unwrap()
    }

    #[test]
    fn lookup_respects_fingerprint() {
        let cache = SharedSynthCache::new(64);
        let v = sample();
        cache.store(key(0), 111, &v);
        assert!(cache.lookup(&key(0), 222).is_none(), "fingerprint mismatch");
        assert!(cache.lookup(&key(0), 111).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        // Capacity 16 => one entry per shard; storing two keys in the
        // same shard must evict the first.
        let cache = SharedSynthCache::new(1);
        let v = sample();
        // Find two distinct keys landing in the same shard.
        let base = key(0);
        let mut other = None;
        for t in 1u8..=255 {
            let k = key(t);
            if std::ptr::eq(cache.shard_of(&k), cache.shard_of(&base)) {
                other = Some(k);
                break;
            }
        }
        let other = other.expect("some key shares a shard");
        cache.store(base, 1, &v);
        cache.store(other, 2, &v);
        assert!(cache.lookup(&base, 1).is_none(), "evicted");
        assert!(cache.lookup(&other, 2).is_some());
    }

    #[test]
    fn touch_on_lookup_protects_hot_entries() {
        let cache = SharedSynthCache::new(1);
        let v = sample();
        let base = key(0);
        let mut same_shard = Vec::new();
        for t in 1u8..=255 {
            let k = key(t);
            if std::ptr::eq(cache.shard_of(&k), cache.shard_of(&base)) {
                same_shard.push(k);
                if same_shard.len() == 2 {
                    break;
                }
            }
        }
        let [a, b] = same_shard[..] else {
            panic!("expected two keys sharing the base shard")
        };
        cache.store(base, 1, &v);
        cache.store(a, 2, &v); // evicts base (cap 1/shard)
        assert!(cache.lookup(&a, 2).is_some()); // touch a
        cache.store(b, 3, &v); // must evict nothing older than a... base gone, a is hot
        assert!(cache.lookup(&b, 3).is_some());
        let stats = cache.stats();
        assert!(stats.entries <= SharedSynthCache::SHARDS);
    }

    #[test]
    fn zero_capacity_is_clamped_to_a_working_cache() {
        let cache = SharedSynthCache::new(0);
        let v = sample();
        cache.store(key(3), 9, &v);
        assert!(
            cache.lookup(&key(3), 9).is_some(),
            "clamped cache must still hold at least one entry per shard"
        );
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        // The clamp is exactly MIN_CAPACITY: zero and MIN_CAPACITY behave
        // the same (one entry per shard).
        assert_eq!(SharedSynthCache::MIN_CAPACITY, SharedSynthCache::SHARDS);
    }

    #[test]
    fn export_preload_round_trip_preserves_bits() {
        let cache = SharedSynthCache::new(64);
        let v = sample();
        cache.store(key(1), 10, &v);
        cache.store(key(2), 20, &v);
        let exported = cache.export_entries();
        assert_eq!(exported.len(), 2);
        let fresh = SharedSynthCache::new(64);
        assert_eq!(fresh.preload(exported), 2);
        let warm = fresh.lookup(&key(1), 10).expect("warm hit");
        let cold = cache.lookup(&key(1), 10).expect("original");
        assert_eq!(warm.error.to_bits(), cold.error.to_bits());
        assert_eq!(warm.phase.to_bits(), cold.phase.to_bits());
        assert_eq!(warm.locals.len(), cold.locals.len());
        // Preloading must not register hits or misses.
        let stats = SharedSynthCache::new(8);
        stats.preload(cache.export_entries());
        let s = stats.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
    }

    #[test]
    fn metrics_mirroring() {
        let metrics = Arc::new(ServiceMetrics::default());
        let cache = SharedSynthCache::new(8).with_metrics(metrics.clone());
        let v = sample();
        cache.store(key(1), 5, &v);
        cache.lookup(&key(1), 5);
        cache.lookup(&key(2), 5);
        assert_eq!(metrics.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.cache_misses.load(Ordering::Relaxed), 1);
        assert!((metrics.cache_hit_rate() - 0.5).abs() < 1e-12);
    }
}
