//! Job descriptions and the caller-side handle.

use crate::error::ServiceError;
use nsb_circuit::Circuit;
use nsb_compiler::{CompiledCircuit, LoweringMode, VerifyLevel};
use nsb_device::BasisStrategy;
use nsb_verify::VerifyReport;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What to compile and how.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The logical circuit.
    pub circuit: Circuit,
    /// Basis-gate strategy to compile with.
    pub strategy: BasisStrategy,
    /// Lowering mode override; `None` uses the strategy's default
    /// ([`nsb_compiler::default_mode`]).
    pub mode: Option<LoweringMode>,
    /// Optional wall-clock budget, measured from submission. Jobs whose
    /// deadline elapses — even while still queued — fail with
    /// [`ServiceError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// Verification level for this job. The default runs the verifier
    /// suite only in debug builds; [`VerifyLevel::Full`] makes the job a
    /// *verified compilation*: the result is checked by the full suite and
    /// rejected (with the violation report) if any check fails.
    pub verify: VerifyLevel,
}

impl JobSpec {
    /// A job with the strategy's default mode, no deadline, and the
    /// process-wide default verification level ([`VerifyLevel::from_env`]).
    pub fn new(circuit: Circuit, strategy: BasisStrategy) -> Self {
        JobSpec {
            circuit,
            strategy,
            mode: None,
            deadline: None,
            verify: VerifyLevel::from_env(),
        }
    }

    /// Sets a lowering-mode override.
    pub fn with_mode(mut self, mode: LoweringMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Sets the verification level (see [`JobSpec::verify`]).
    pub fn with_verification(mut self, level: VerifyLevel) -> Self {
        self.verify = level;
        self
    }

    /// Sets a deadline relative to submission.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// A successful job's full output: the compiled circuit plus, when the
/// job was verified (its own [`VerifyLevel`] or the service's sampling
/// mode — see `ServiceConfig::verify_sample`), the clean verification
/// report. Jobs whose verification found violations fail with the report
/// inside the error instead.
#[derive(Clone, Debug)]
pub struct JobOutput {
    /// The compiled circuit.
    pub circuit: CompiledCircuit,
    /// The verifier suite's report; `None` when the job ran unverified.
    /// Present reports are always clean (violations fail the job).
    pub verify: Option<VerifyReport>,
}

/// One queued unit of work (internal to the service). The job id lives
/// only on the caller's [`JobHandle`]; workers have no use for it.
pub(crate) struct Job {
    pub(crate) spec: JobSpec,
    pub(crate) deadline: Option<Instant>,
    pub(crate) cancel: Arc<AtomicBool>,
    pub(crate) result_tx: mpsc::Sender<Result<JobOutput, ServiceError>>,
}

/// The caller's side of a submitted job: await the result, or cancel.
pub struct JobHandle {
    pub(crate) id: u64,
    pub(crate) cancel: Arc<AtomicBool>,
    pub(crate) result_rx: mpsc::Receiver<Result<JobOutput, ServiceError>>,
}

impl JobHandle {
    /// The service-assigned job id (also useful for correlating logs).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cancellation. Best-effort: a job already past its last
    /// cancellation check still completes. Safe to call multiple times
    /// and from any thread (the handle itself stays usable).
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Blocks until the job finishes and returns the compiled circuit.
    /// Use [`wait_full`](JobHandle::wait_full) to also receive the
    /// verification report of a verified job.
    ///
    /// # Errors
    ///
    /// Any [`ServiceError`]; [`ServiceError::Disconnected`] when the
    /// worker vanished without reporting (worker panic).
    pub fn wait(self) -> Result<CompiledCircuit, ServiceError> {
        self.wait_full().map(|o| o.circuit)
    }

    /// Blocks until the job finishes and returns its full output,
    /// including the clean [`VerifyReport`] when the job was verified
    /// (explicitly or through the service's sampling mode).
    ///
    /// # Errors
    ///
    /// Same as [`wait`](JobHandle::wait).
    pub fn wait_full(self) -> Result<JobOutput, ServiceError> {
        self.result_rx
            .recv()
            .unwrap_or(Err(ServiceError::Disconnected))
    }

    /// Waits up to `timeout` for the result; `None` when it is not
    /// ready yet (the handle stays usable).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<CompiledCircuit, ServiceError>> {
        match self.result_rx.recv_timeout(timeout) {
            Ok(result) => Some(result.map(|o| o.circuit)),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServiceError::Disconnected)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_reports_disconnect_when_sender_dropped() {
        let (tx, rx) = mpsc::channel();
        let handle = JobHandle {
            id: 7,
            cancel: Arc::new(AtomicBool::new(false)),
            result_rx: rx,
        };
        assert_eq!(handle.id(), 7);
        drop(tx);
        assert!(matches!(handle.wait(), Err(ServiceError::Disconnected)));
    }

    #[test]
    fn cancel_sets_the_flag() {
        let (_tx, rx) = mpsc::channel::<Result<JobOutput, ServiceError>>();
        let handle = JobHandle {
            id: 0,
            cancel: Arc::new(AtomicBool::new(false)),
            result_rx: rx,
        };
        let flag = handle.cancel.clone();
        handle.cancel();
        assert!(flag.load(Ordering::Relaxed));
    }
}
