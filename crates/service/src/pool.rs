//! The multi-device service pool: one [`CompileService`] per device
//! calibration, with routing, warm start and background persistence.
//!
//! A [`ServicePool`] owns N shards, each a full compile service for one
//! [`Device`]. Jobs carry a [`JobRoute`] naming the shard (or the device
//! calibration) they must compile on; what happens when no shard matches
//! is the pool's [`FallbackPolicy`]. When the pool is given a snapshot
//! store directory, every shard warm-starts its synthesis cache from the
//! store on construction and drains it back on shutdown — and optionally
//! keeps flushing in the background on a fixed interval, so even a crash
//! loses at most one interval's worth of new syntheses.

use crate::cache::SharedSynthCache;
use crate::error::ServiceError;
use crate::job::{JobHandle, JobSpec};
use crate::metrics::ServiceMetrics;
use crate::service::{CompileService, ServiceConfig};
use nsb_device::Device;
use nsb_store::{LoadReport, PeriodicFlusher, SaveReport, SnapshotStore, StoredEntry};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One shard's definition: a display name, the device it compiles onto,
/// and its service sizing.
#[derive(Clone, Debug)]
pub struct ShardSpec {
    /// Human-readable shard name, used by [`JobRoute::Name`] and in
    /// reports. Names should be unique; routing picks the first match.
    pub name: String,
    /// The device this shard compiles onto.
    pub device: Device,
    /// Sizing knobs for the shard's service.
    pub config: ServiceConfig,
}

impl ShardSpec {
    /// A shard with the default [`ServiceConfig`].
    pub fn new(name: impl Into<String>, device: Device) -> Self {
        ShardSpec {
            name: name.into(),
            device,
            config: ServiceConfig::default(),
        }
    }

    /// Overrides the shard's service configuration.
    pub fn with_config(mut self, config: ServiceConfig) -> Self {
        self.config = config;
        self
    }
}

/// What the pool does with a job whose route matches no shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FallbackPolicy {
    /// Fail the submission with [`ServiceError::NoMatchingShard`].
    #[default]
    Reject,
    /// Compile on the shard with the shallowest queue instead. The job
    /// still compiles correctly — every shard runs the full pipeline —
    /// but against a different calibration than requested; the pool
    /// counts these in [`ServicePool::fallback_routed`].
    LeastLoaded,
}

/// Pool-level configuration.
#[derive(Clone, Debug, Default)]
pub struct PoolConfig {
    /// Policy for jobs whose route matches no shard.
    pub fallback: FallbackPolicy,
    /// Directory of cache snapshots. When set, every shard warm-starts
    /// from `store_dir` on construction and drains back on
    /// [`shutdown`](ServicePool::shutdown).
    pub store_dir: Option<PathBuf>,
    /// When set (together with `store_dir`), a background thread also
    /// flushes every shard's cache to the store on this interval.
    pub flush_interval: Option<Duration>,
}

/// Where a job should compile.
#[derive(Clone, Debug)]
pub enum JobRoute {
    /// The shard with this [`ShardSpec::name`].
    Name(String),
    /// The shard whose device has this calibration hash (see
    /// `Device::calibration_hash`).
    Calibration(u64),
    /// No affinity: always the least-loaded shard. Never counts as a
    /// fallback.
    Any,
}

/// A point-in-time snapshot of one shard's counters, for per-shard
/// reporting without handing out the live atomics.
#[derive(Clone, Debug)]
pub struct ShardMetrics {
    /// The shard's name.
    pub name: String,
    /// The shard device's calibration hash.
    pub calibration_hash: u64,
    /// Jobs accepted by this shard.
    pub jobs_submitted: u64,
    /// Jobs that produced a compiled circuit.
    pub jobs_completed: u64,
    /// Jobs that failed (compile or verification errors).
    pub jobs_failed: u64,
    /// Jobs currently queued.
    pub queue_depth: u64,
    /// Shard cache hits.
    pub cache_hits: u64,
    /// Shard cache misses.
    pub cache_misses: u64,
    /// Shard cache hit rate in `[0, 1]`.
    pub cache_hit_rate: f64,
}

struct Shard {
    name: String,
    calibration: u64,
    service: CompileService,
}

/// N compile services for distinct device calibrations behind one
/// routing front end. See the [module docs](self) for the lifecycle.
pub struct ServicePool {
    shards: Vec<Shard>,
    store: Option<SnapshotStore>,
    flusher: Option<PeriodicFlusher>,
    fallback: FallbackPolicy,
    fallback_routed: AtomicU64,
    warm_reports: Vec<(String, LoadReport)>,
}

impl ServicePool {
    /// Builds one service per spec, warm-starting each shard's cache
    /// from the store when [`PoolConfig::store_dir`] is set (missing or
    /// partially corrupted snapshots degrade to a colder start, never an
    /// error), and starts the background flusher when
    /// [`PoolConfig::flush_interval`] is also set.
    ///
    /// # Errors
    ///
    /// [`ServiceError::WorkerSpawn`] when a shard's workers cannot start;
    /// [`ServiceError::Store`] when the store directory cannot be
    /// created/read or the flusher thread cannot spawn. Shards already
    /// built are shut down gracefully before the error returns.
    pub fn new(specs: Vec<ShardSpec>, config: PoolConfig) -> Result<Self, ServiceError> {
        let store = match &config.store_dir {
            Some(dir) => Some(SnapshotStore::open(dir)?),
            None => None,
        };
        let mut shards = Vec::with_capacity(specs.len());
        let mut warm_reports = Vec::new();
        for spec in specs {
            let service = CompileService::new(spec.device, spec.config)?;
            if let Some(store) = &store {
                let report = service.warm_start_from(store)?;
                warm_reports.push((spec.name.clone(), report));
            }
            shards.push(Shard {
                name: spec.name,
                calibration: service.calibration_hash(),
                service,
            });
        }
        let flusher = match (&store, config.flush_interval) {
            (Some(store), Some(interval)) => {
                let store = store.clone();
                let caches: Vec<(u64, Arc<SharedSynthCache>)> = shards
                    .iter()
                    .map(|s| (s.calibration, s.service.cache().clone()))
                    .collect();
                // Background flushes are best-effort: an I/O failure here
                // must not take down serving, and the final authoritative
                // drain happens in `shutdown`.
                Some(PeriodicFlusher::spawn(interval, move || {
                    for (calibration, cache) in &caches {
                        let _ = store.save(*calibration, &export(cache));
                    }
                })?)
            }
            _ => None,
        };
        Ok(ServicePool {
            shards,
            store,
            flusher,
            fallback: config.fallback,
            fallback_routed: AtomicU64::new(0),
            warm_reports,
        })
    }

    /// Per-shard warm-start reports from construction, in shard order
    /// (empty when the pool has no store).
    pub fn warm_reports(&self) -> &[(String, LoadReport)] {
        &self.warm_reports
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the pool has no shards (every submission then fails with
    /// [`ServiceError::NoMatchingShard`]).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard named `name`, if any.
    pub fn shard(&self, name: &str) -> Option<&CompileService> {
        self.shards
            .iter()
            .find(|s| s.name == name)
            .map(|s| &s.service)
    }

    /// Iterates `(name, service)` over all shards in construction order.
    pub fn shards(&self) -> impl Iterator<Item = (&str, &CompileService)> {
        self.shards.iter().map(|s| (s.name.as_str(), &s.service))
    }

    /// Jobs that compiled on a substitute shard because their route
    /// matched nothing (only possible under
    /// [`FallbackPolicy::LeastLoaded`]).
    pub fn fallback_routed(&self) -> u64 {
        self.fallback_routed.load(Ordering::Relaxed)
    }

    /// Routes and submits a job.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NoMatchingShard`] when the route matches nothing
    /// and the policy is [`FallbackPolicy::Reject`] (or the pool is
    /// empty); otherwise whatever the chosen shard's
    /// [`submit`](CompileService::submit) returns.
    pub fn submit(&self, route: &JobRoute, spec: JobSpec) -> Result<JobHandle, ServiceError> {
        let matched = match route {
            JobRoute::Name(name) => self.shards.iter().find(|s| s.name == *name),
            JobRoute::Calibration(hash) => self.shards.iter().find(|s| s.calibration == *hash),
            JobRoute::Any => self.least_loaded(),
        };
        let shard = match matched {
            Some(shard) => shard,
            None => match (route, self.fallback) {
                // `Any` already means least-loaded; reaching here means
                // the pool is empty, which no policy can save.
                (JobRoute::Any, _) | (_, FallbackPolicy::Reject) => {
                    return Err(ServiceError::NoMatchingShard {
                        requested: describe(route),
                    });
                }
                (_, FallbackPolicy::LeastLoaded) => {
                    let shard =
                        self.least_loaded()
                            .ok_or_else(|| ServiceError::NoMatchingShard {
                                requested: describe(route),
                            })?;
                    self.fallback_routed.fetch_add(1, Ordering::Relaxed);
                    shard
                }
            },
        };
        shard.service.submit(spec)
    }

    /// Point-in-time per-shard counter snapshots, in shard order.
    pub fn shard_metrics(&self) -> Vec<ShardMetrics> {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        self.shards
            .iter()
            .map(|s| {
                let m: &ServiceMetrics = s.service.metrics();
                ShardMetrics {
                    name: s.name.clone(),
                    calibration_hash: s.calibration,
                    jobs_submitted: load(&m.jobs_submitted),
                    jobs_completed: load(&m.jobs_completed),
                    jobs_failed: load(&m.jobs_failed),
                    queue_depth: load(&m.queue_depth),
                    cache_hits: load(&m.cache_hits),
                    cache_misses: load(&m.cache_misses),
                    cache_hit_rate: m.cache_hit_rate(),
                }
            })
            .collect()
    }

    /// A human-readable report: one line per shard plus aggregate totals
    /// and the fallback count.
    pub fn report(&self) -> String {
        let mut out = String::from("service pool\n");
        let shards = self.shard_metrics();
        let mut submitted = 0u64;
        let mut completed = 0u64;
        let mut failed = 0u64;
        let mut hits = 0u64;
        let mut misses = 0u64;
        for m in &shards {
            submitted += m.jobs_submitted;
            completed += m.jobs_completed;
            failed += m.jobs_failed;
            hits += m.cache_hits;
            misses += m.cache_misses;
            out.push_str(&format!(
                "  shard `{}` (cal {:#018x}): {} submitted, {} completed, {} failed, \
                 cache {}/{} ({:.1}% hit rate)\n",
                m.name,
                m.calibration_hash,
                m.jobs_submitted,
                m.jobs_completed,
                m.jobs_failed,
                m.cache_hits,
                m.cache_hits + m.cache_misses,
                100.0 * m.cache_hit_rate,
            ));
        }
        let lookups = hits + misses;
        let rate = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };
        out.push_str(&format!(
            "  aggregate: {} shards, {} submitted, {} completed, {} failed, \
             cache {}/{} ({:.1}% hit rate), {} fallback-routed",
            shards.len(),
            submitted,
            completed,
            failed,
            hits,
            lookups,
            100.0 * rate,
            self.fallback_routed(),
        ));
        out
    }

    /// Stops the background flusher, shuts every shard down (queued jobs
    /// drain first), and — when the pool has a store — saves each
    /// shard's final cache contents as that calibration's snapshot.
    /// Returns the per-shard save reports, in shard order (empty without
    /// a store).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Store`] on the first failed save; shards not yet
    /// drained are still shut down gracefully (by drop), only their
    /// final snapshots are not written.
    pub fn shutdown(mut self) -> Result<Vec<(String, SaveReport)>, ServiceError> {
        if let Some(flusher) = self.flusher.take() {
            flusher.stop();
        }
        let mut reports = Vec::new();
        let store = self.store.take();
        for shard in self.shards.drain(..) {
            // Keep the cache alive past the service so the post-drain
            // state (including syntheses from jobs that completed during
            // shutdown) is what gets persisted.
            let cache = shard.service.cache().clone();
            shard.service.shutdown();
            if let Some(store) = &store {
                let report = store.save(shard.calibration, &export(&cache))?;
                reports.push((shard.name, report));
            }
        }
        Ok(reports)
    }

    fn least_loaded(&self) -> Option<&Shard> {
        self.shards
            .iter()
            .min_by_key(|s| s.service.metrics().queue_depth.load(Ordering::Relaxed))
    }
}

/// Snapshots a live cache into storable entries.
fn export(cache: &SharedSynthCache) -> Vec<StoredEntry> {
    cache
        .export_entries()
        .into_iter()
        .map(|(key, target_fp, value)| StoredEntry {
            key,
            target_fp,
            value,
        })
        .collect()
}

fn describe(route: &JobRoute) -> String {
    match route {
        JobRoute::Name(name) => format!("name `{name}`"),
        JobRoute::Calibration(hash) => format!("calibration {hash:#018x}"),
        JobRoute::Any => "any".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsb_circuit::generators;
    use nsb_device::{BasisStrategy, DeviceConfig};

    fn two_devices() -> (Device, Device) {
        let a = Device::build(3, 2, DeviceConfig::fast_test()).expect("device a");
        let mut cfg = DeviceConfig::fast_test();
        cfg.seed = 7;
        let b = Device::build(3, 2, cfg).expect("device b");
        (a, b)
    }

    fn small() -> ServiceConfig {
        ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            cache_capacity: 128,
            ..ServiceConfig::default()
        }
    }

    fn two_shard_pool(config: PoolConfig) -> ServicePool {
        let (a, b) = two_devices();
        ServicePool::new(
            vec![
                ShardSpec::new("alpha", a).with_config(small()),
                ShardSpec::new("beta", b).with_config(small()),
            ],
            config,
        )
        .expect("pool")
    }

    #[test]
    fn routes_by_name_and_calibration() {
        let pool = two_shard_pool(PoolConfig::default());
        assert_eq!(pool.len(), 2);
        let beta_cal = pool.shard("beta").expect("beta").calibration_hash();
        pool.submit(
            &JobRoute::Name("alpha".into()),
            JobSpec::new(generators::ghz(3), BasisStrategy::Criterion1),
        )
        .expect("submit alpha")
        .wait()
        .expect("compile alpha");
        pool.submit(
            &JobRoute::Calibration(beta_cal),
            JobSpec::new(generators::ghz(3), BasisStrategy::Criterion1),
        )
        .expect("submit beta")
        .wait()
        .expect("compile beta");
        let metrics = pool.shard_metrics();
        assert_eq!(metrics[0].jobs_completed, 1);
        assert_eq!(metrics[1].jobs_completed, 1);
        assert_eq!(pool.fallback_routed(), 0);
        let report = pool.report();
        assert!(report.contains("shard `alpha`"));
        assert!(report.contains("2 shards"));
    }

    #[test]
    fn reject_policy_fails_unknown_routes() {
        let pool = two_shard_pool(PoolConfig::default());
        let err = pool
            .submit(
                &JobRoute::Name("gamma".into()),
                JobSpec::new(generators::ghz(3), BasisStrategy::Baseline),
            )
            .err()
            .expect("must reject");
        match err {
            ServiceError::NoMatchingShard { requested } => {
                assert!(requested.contains("gamma"));
            }
            other => panic!("expected NoMatchingShard, got {other:?}"),
        }
    }

    #[test]
    fn least_loaded_fallback_compiles_anyway() {
        let pool = two_shard_pool(PoolConfig {
            fallback: FallbackPolicy::LeastLoaded,
            ..PoolConfig::default()
        });
        pool.submit(
            &JobRoute::Name("gamma".into()),
            JobSpec::new(generators::ghz(3), BasisStrategy::Baseline),
        )
        .expect("fallback submit")
        .wait()
        .expect("fallback compile");
        assert_eq!(pool.fallback_routed(), 1);
        // `Any` routes without counting as a fallback.
        pool.submit(
            &JobRoute::Any,
            JobSpec::new(generators::ghz(3), BasisStrategy::Baseline),
        )
        .expect("any submit")
        .wait()
        .expect("any compile");
        assert_eq!(pool.fallback_routed(), 1);
    }

    #[test]
    fn empty_pool_rejects_everything() {
        let pool = ServicePool::new(
            Vec::new(),
            PoolConfig {
                fallback: FallbackPolicy::LeastLoaded,
                ..PoolConfig::default()
            },
        )
        .expect("empty pool");
        assert!(pool.is_empty());
        for route in [JobRoute::Any, JobRoute::Name("x".into())] {
            assert!(matches!(
                pool.submit(
                    &route,
                    JobSpec::new(generators::ghz(3), BasisStrategy::Baseline)
                ),
                Err(ServiceError::NoMatchingShard { .. })
            ));
        }
    }

    #[test]
    fn shutdown_persists_and_next_pool_warm_starts() {
        let dir = std::env::temp_dir().join(format!("nsb-pool-warm-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = PoolConfig {
            fallback: FallbackPolicy::Reject,
            store_dir: Some(dir.clone()),
            flush_interval: None,
        };

        let cold = two_shard_pool(config.clone());
        for (_, report) in cold.warm_reports() {
            assert!(!report.found, "no snapshot exists yet");
        }
        cold.submit(
            &JobRoute::Name("alpha".into()),
            JobSpec::new(generators::qft(4, true), BasisStrategy::Baseline),
        )
        .expect("submit")
        .wait()
        .expect("compile");
        let saved = cold.shutdown().expect("drain");
        assert_eq!(saved.len(), 2);
        let alpha_saved = saved[0].1.entries;
        assert!(alpha_saved > 0, "alpha compiled, so it must persist");

        let warm = two_shard_pool(config);
        let alpha_report = &warm.warm_reports()[0].1;
        assert!(alpha_report.found);
        assert_eq!(alpha_report.loaded, alpha_saved);
        assert_eq!(alpha_report.skipped, 0);
        assert_eq!(
            warm.shard("alpha").expect("alpha").cache().stats().entries,
            alpha_saved
        );
        warm.shutdown().expect("second drain");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn background_flusher_writes_snapshots_while_serving() {
        let dir = std::env::temp_dir().join(format!("nsb-pool-flush-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let pool = two_shard_pool(PoolConfig {
            fallback: FallbackPolicy::Reject,
            store_dir: Some(dir.clone()),
            flush_interval: Some(Duration::from_millis(5)),
        });
        pool.submit(
            &JobRoute::Name("alpha".into()),
            JobSpec::new(generators::qft(4, true), BasisStrategy::Baseline),
        )
        .expect("submit")
        .wait()
        .expect("compile");
        // Wait for at least one flush after the compile.
        let store = SnapshotStore::open(&dir).expect("open");
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let alpha_cal = pool.shard("alpha").expect("alpha").calibration_hash();
        loop {
            let outcome = store.load(alpha_cal).expect("load");
            if outcome.report.found && outcome.report.loaded > 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "flusher never persisted the warm cache"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        pool.shutdown().expect("shutdown");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
