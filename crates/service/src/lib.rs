//! # nsb-service
//!
//! A concurrent compilation service over the MICRO 2022 nonstandard-basis
//! toolchain: a bounded job queue feeding a `std::thread` worker pool,
//! with a shared, thread-safe synthesis cache so every worker reuses the
//! two-qubit decompositions any other worker has already computed.
//!
//! The paper's compilation flow spends almost all of its time in
//! numerical two-qubit synthesis, and the same targets (CPhase angles,
//! CNOT, SWAP per edge) recur across circuits job after job. Batch
//! compilation therefore parallelizes almost perfectly *and* speeds up
//! further as the [`SharedSynthCache`] warms: cache hits are
//! bit-identical to fresh syntheses (keys carry a full target
//! fingerprint — see [`nsb_synth::SynthCache`]), so results never depend
//! on cache state or scheduling order.
//!
//! Jobs support per-job deadlines and cooperative cancellation, checked
//! between pipeline stages (route, lower, schedule); shutdown is
//! graceful — accepted jobs drain before the workers exit. Jobs may also
//! request *verified compilation* ([`JobSpec::with_verification`]): the
//! output runs through the `nsb-verify` suite and is rejected — with the
//! full violation report — if any static check fails; verified successes
//! carry their clean report ([`JobHandle::wait_full`]), and
//! [`ServiceConfig::verify_sample`] spot-checks every Nth job. Everything
//! is `std`-only.
//!
//! For multiple devices, a [`ServicePool`] runs one service per
//! calibration and routes jobs by [`JobRoute`]; given a store directory
//! it persists every shard's synthesis cache through `nsb-store` —
//! warm start on construction, optional periodic background flush,
//! drain on shutdown.
//!
//! ```
//! use nsb_circuit::generators;
//! use nsb_compiler::VerifyLevel;
//! use nsb_device::{BasisStrategy, Device, DeviceConfig};
//! use nsb_service::{CompileService, JobSpec, ServiceConfig};
//!
//! let device = Device::build(3, 2, DeviceConfig::fast_test()).unwrap();
//! let service = CompileService::new(device, ServiceConfig::default()).unwrap();
//! let handle = service
//!     .submit(
//!         JobSpec::new(generators::qft(4, true), BasisStrategy::Criterion2)
//!             .with_verification(VerifyLevel::Full),
//!     )
//!     .unwrap();
//! let compiled = handle.wait().unwrap();
//! assert!(compiled.fidelity > 0.9);
//! println!("{}", service.metrics().report());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounded;
mod cache;
mod error;
mod job;
mod metrics;
mod pool;
mod service;

pub use bounded::{BoundedQueue, PushError};
pub use cache::{CacheStats, SharedSynthCache};
pub use error::ServiceError;
pub use job::{JobHandle, JobOutput, JobSpec};
pub use metrics::ServiceMetrics;
pub use pool::{FallbackPolicy, JobRoute, PoolConfig, ServicePool, ShardMetrics, ShardSpec};
pub use service::{CompileService, ServiceConfig};
