//! Service-level error type.

use nsb_compiler::CompileError;
use std::error::Error;
use std::fmt;

/// Why a submitted job did not produce a compiled circuit.
#[derive(Clone, Debug)]
pub enum ServiceError {
    /// The bounded job queue was full; the caller should back off and
    /// resubmit.
    QueueFull {
        /// The queue's capacity at the time of rejection.
        capacity: usize,
    },
    /// The service is shutting down and no longer accepts jobs.
    ShuttingDown,
    /// The job's deadline elapsed before compilation finished.
    DeadlineExceeded {
        /// The pipeline stage (or `"queued"`) the deadline fired in.
        stage: &'static str,
    },
    /// The job was canceled through its [`JobHandle`](crate::JobHandle).
    Canceled,
    /// Compilation itself failed (a numerical synthesis did not
    /// converge).
    Compile(CompileError),
    /// The worker processing the job disappeared without reporting a
    /// result (only possible if a worker thread panicked).
    Disconnected,
    /// The service could not spawn a worker thread at startup.
    WorkerSpawn {
        /// The operating system's error message.
        reason: String,
    },
    /// A pool submission named a route no shard matches (and the pool's
    /// fallback policy is [`FallbackPolicy::Reject`](crate::FallbackPolicy)).
    NoMatchingShard {
        /// Human-readable description of the requested route.
        requested: String,
    },
    /// A persistent-store operation (warm start, drain, flush setup)
    /// failed.
    Store(nsb_store::StoreError),
    /// A [`ServiceConfig`](crate::ServiceConfig) field holds a value the
    /// service cannot run with (e.g. `intra_job_threads == 0`).
    InvalidConfig {
        /// The offending config field.
        field: &'static str,
        /// What the field needs instead.
        reason: &'static str,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull { capacity } => {
                write!(f, "job queue full (capacity {capacity})")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded during stage `{stage}`")
            }
            ServiceError::Canceled => write!(f, "job canceled"),
            ServiceError::Compile(e) => write!(f, "{e}"),
            ServiceError::Disconnected => write!(f, "worker disconnected before reporting"),
            ServiceError::WorkerSpawn { reason } => {
                write!(f, "failed to spawn worker thread: {reason}")
            }
            ServiceError::NoMatchingShard { requested } => {
                write!(f, "no pool shard matches route {requested}")
            }
            ServiceError::Store(e) => write!(f, "{e}"),
            ServiceError::InvalidConfig { field, reason } => {
                write!(f, "invalid service config: `{field}` {reason}")
            }
        }
    }
}

impl Error for ServiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServiceError::Compile(e) => Some(e),
            ServiceError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompileError> for ServiceError {
    fn from(e: CompileError) -> Self {
        ServiceError::Compile(e)
    }
}

impl From<nsb_store::StoreError> for ServiceError {
    fn from(e: nsb_store::StoreError) -> Self {
        ServiceError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServiceError::QueueFull { capacity: 8 };
        assert!(e.to_string().contains("capacity 8"));
        assert!(e.source().is_none());
        let d = ServiceError::DeadlineExceeded { stage: "lower" };
        assert!(d.to_string().contains("lower"));
    }

    #[test]
    fn wrapping_variants_display_and_chain() {
        let compile = ServiceError::Compile(CompileError::Route(
            nsb_compiler::RouteError::NoSwapCandidates { qubits: (0, 1) },
        ));
        assert!(compile.source().is_some(), "Compile wraps its cause");
        assert!(compile.to_string().contains("routing stalled"));

        let spawn = ServiceError::WorkerSpawn {
            reason: "resource exhausted".into(),
        };
        assert!(spawn.to_string().contains("resource exhausted"));
        assert!(spawn.source().is_none());

        let store = ServiceError::Store(nsb_store::StoreError::BadMagic {
            path: "cache.nsb".into(),
        });
        assert!(store.source().is_some(), "Store wraps its cause");
        assert!(store.to_string().contains("cache.nsb"));
    }
}
