//! Lock-free service counters and the text report.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counters the service updates on every job; all atomic, so they can be
/// read at any time from any thread without stalling workers.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Jobs accepted into the queue.
    pub jobs_submitted: AtomicU64,
    /// Jobs that produced a compiled circuit.
    pub jobs_completed: AtomicU64,
    /// Jobs that failed with a compilation error.
    pub jobs_failed: AtomicU64,
    /// Jobs that ran past their deadline (queued or mid-pipeline).
    pub jobs_timed_out: AtomicU64,
    /// Jobs canceled through their handle.
    pub jobs_canceled: AtomicU64,
    /// Jobs currently sitting in the queue.
    pub queue_depth: AtomicU64,
    /// Shared-cache hits (mirrored from the cache).
    pub cache_hits: AtomicU64,
    /// Shared-cache misses (mirrored from the cache).
    pub cache_misses: AtomicU64,
    /// Shared-cache misses that were coalesced onto another thread's
    /// in-flight synthesis instead of recomputing (mirrored from the
    /// cache's single-flight path).
    pub coalesced_misses: AtomicU64,
    /// Total nanoseconds spent in SABRE routing.
    pub route_nanos: AtomicU64,
    /// Total nanoseconds spent lowering (includes synthesis).
    pub lower_nanos: AtomicU64,
    /// Total nanoseconds spent scheduling and fidelity evaluation.
    pub schedule_nanos: AtomicU64,
    /// Total nanoseconds spent in post-compile verification.
    pub verify_nanos: AtomicU64,
    /// Jobs whose output ran through the verifier suite.
    pub jobs_verified: AtomicU64,
    /// Jobs verified only because the service's sampling mode
    /// (`ServiceConfig::verify_sample`) picked them (a subset of
    /// `jobs_verified`).
    pub jobs_verify_sampled: AtomicU64,
    /// Total verifier violations across all verified jobs (every one of
    /// these also failed its job with a verification error).
    pub verification_violations: AtomicU64,
}

impl ServiceMetrics {
    /// Fraction of shared-cache lookups that hit, in `[0, 1]`; `0` when
    /// no lookup has happened yet.
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Adds a stage latency sample.
    pub(crate) fn record_stage(&self, stage: Stage, elapsed: Duration) {
        let nanos = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        let counter = match stage {
            Stage::Route => &self.route_nanos,
            Stage::Lower => &self.lower_nanos,
            Stage::Schedule => &self.schedule_nanos,
            Stage::Verify => &self.verify_nanos,
        };
        counter.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Renders all counters as a small human-readable report.
    pub fn report(&self) -> String {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let ms = |c: &AtomicU64| load(c) as f64 / 1e6;
        format!(
            "service metrics\n\
             \x20 jobs: {} submitted, {} completed, {} failed, {} timed out, {} canceled\n\
             \x20 queue depth: {}\n\
             \x20 cache: {} hits, {} misses ({:.1}% hit rate), {} coalesced\n\
             \x20 verification: {} jobs verified ({} sampled), {} violations\n\
             \x20 stage latency sums: route {:.1} ms, lower {:.1} ms, schedule {:.1} ms, \
             verify {:.1} ms",
            load(&self.jobs_submitted),
            load(&self.jobs_completed),
            load(&self.jobs_failed),
            load(&self.jobs_timed_out),
            load(&self.jobs_canceled),
            load(&self.queue_depth),
            load(&self.cache_hits),
            load(&self.cache_misses),
            100.0 * self.cache_hit_rate(),
            load(&self.coalesced_misses),
            load(&self.jobs_verified),
            load(&self.jobs_verify_sampled),
            load(&self.verification_violations),
            ms(&self.route_nanos),
            ms(&self.lower_nanos),
            ms(&self.schedule_nanos),
            ms(&self.verify_nanos),
        )
    }
}

/// Pipeline stages with tracked latency.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Stage {
    Route,
    Lower,
    Schedule,
    Verify,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_lookups() {
        let m = ServiceMetrics::default();
        assert_eq!(m.cache_hit_rate(), 0.0);
        m.cache_hits.store(3, Ordering::Relaxed);
        m.cache_misses.store(1, Ordering::Relaxed);
        assert!((m.cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn report_mentions_all_counters() {
        let m = ServiceMetrics::default();
        m.jobs_submitted.store(5, Ordering::Relaxed);
        m.record_stage(Stage::Route, Duration::from_millis(2));
        let r = m.report();
        assert!(r.contains("5 submitted"));
        assert!(r.contains("route 2.0 ms"));
        assert!(r.contains("hit rate"));
    }
}
