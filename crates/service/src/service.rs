//! The concurrent compilation service: worker pool, staged pipeline,
//! deadlines, cancellation and graceful shutdown.

use crate::bounded::{BoundedQueue, PushError};
use crate::cache::SharedSynthCache;
use crate::error::ServiceError;
use crate::job::{Job, JobHandle, JobOutput, JobSpec};
use crate::metrics::{ServiceMetrics, Stage};
use nsb_compiler::{default_mode, sabre_route, CompiledCircuit, Lowerer, SabreConfig};
use nsb_compiler::{schedule, to_schedule_facts, to_verify_ops, CompileError};
use nsb_device::Device;
use nsb_store::{LoadReport, SaveReport, SnapshotStore, StoreError, StoredEntry};
use nsb_synth::SynthCache;
use nsb_verify::{VerifierSuite, VerifyTarget};
use std::num::NonZeroU64;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

/// Service sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads compiling jobs. Defaults to the machine's
    /// available parallelism, capped at 8.
    pub workers: usize,
    /// Bounded job-queue capacity; submissions beyond it fail with
    /// [`ServiceError::QueueFull`].
    pub queue_capacity: usize,
    /// Approximate shared synthesis-cache capacity (entries).
    pub cache_capacity: usize,
    /// Verification sampling: `Some(n)` runs the full verifier suite on
    /// every `n`-th job *in addition to* jobs that request verification
    /// themselves — spot checks for high-throughput deployments where
    /// verifying every job is too expensive. `Some(1)` verifies
    /// everything; `None` (the default) samples nothing.
    pub verify_sample: Option<NonZeroU64>,
    /// Threads a single job may fan out to while lowering: the worker
    /// prewarms its synthesis cache by decomposing a circuit's distinct
    /// two-qubit targets in parallel before the (still serial, still
    /// bit-identical) lowering pass. `1` (the default) keeps lowering
    /// fully serial; values above the machine's available parallelism
    /// are clamped down to it; `0` is rejected at
    /// [`CompileService::new`] with [`ServiceError::InvalidConfig`] —
    /// mirroring how [`SharedSynthCache`] clamps a zero capacity rather
    /// than panicking deep in a worker.
    pub intra_job_threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(8),
            queue_capacity: 256,
            cache_capacity: 4096,
            verify_sample: None,
            intra_job_threads: 1,
        }
    }
}

/// A concurrent compilation service over one device.
///
/// Jobs are submitted with [`submit`](CompileService::submit) and run on
/// a fixed worker pool; all workers share one [`SharedSynthCache`], so a
/// two-qubit target any job has decomposed before is reused by every
/// later job (bit-identically — compiled output never depends on cache
/// state). Dropping the service shuts it down gracefully: queued jobs
/// still run, then workers exit.
pub struct CompileService {
    device: Arc<Device>,
    queue: Arc<BoundedQueue<Job>>,
    cache: Arc<SharedSynthCache>,
    metrics: Arc<ServiceMetrics>,
    accepting: Arc<AtomicBool>,
    next_id: AtomicU64,
    workers: Vec<JoinHandle<()>>,
}

/// Per-worker verification-sampling state: a shared job counter plus the
/// configured stride. `None` stride disables sampling.
#[derive(Clone)]
struct SampleState {
    stride: Option<NonZeroU64>,
    counter: Arc<AtomicU64>,
}

impl SampleState {
    /// Whether the next job should be verified by sampling. Advances the
    /// shared counter only when sampling is enabled, so the stride is
    /// exact across all workers.
    fn pick(&self) -> bool {
        match self.stride {
            Some(n) => self
                .counter
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(n.get()),
            None => false,
        }
    }
}

impl CompileService {
    /// Starts the worker pool for `device`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::WorkerSpawn`] when the operating system refuses to
    /// start a worker thread; any workers already started are joined
    /// before returning. [`ServiceError::InvalidConfig`] when
    /// `config.intra_job_threads` is `0` — there is no sensible meaning
    /// for "zero threads", so the service refuses to start rather than
    /// silently reinterpreting it.
    pub fn new(device: Device, config: ServiceConfig) -> Result<Self, ServiceError> {
        if config.intra_job_threads == 0 {
            return Err(ServiceError::InvalidConfig {
                field: "intra_job_threads",
                reason: "must be at least 1 (1 = serial lowering)",
            });
        }
        let intra_job_threads = config.intra_job_threads.min(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        );
        let device = Arc::new(device);
        let metrics = Arc::new(ServiceMetrics::default());
        let cache =
            Arc::new(SharedSynthCache::new(config.cache_capacity).with_metrics(metrics.clone()));
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity.max(1)));
        let accepting = Arc::new(AtomicBool::new(true));
        let sampling = SampleState {
            stride: config.verify_sample,
            counter: Arc::new(AtomicU64::new(0)),
        };
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let device = device.clone();
            let queue_for_worker = queue.clone();
            let cache = cache.clone();
            let metrics = metrics.clone();
            let sampling = sampling.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("nsb-service-worker-{i}"))
                .spawn(move || {
                    worker_loop(
                        &device,
                        &queue_for_worker,
                        &cache,
                        &metrics,
                        &sampling,
                        intra_job_threads,
                    )
                });
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    queue.close();
                    for worker in workers {
                        let _ = worker.join();
                    }
                    return Err(ServiceError::WorkerSpawn {
                        reason: e.to_string(),
                    });
                }
            }
        }
        Ok(CompileService {
            device,
            queue,
            cache,
            metrics,
            accepting,
            next_id: AtomicU64::new(0),
            workers,
        })
    }

    /// The device jobs compile onto.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Live service counters.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// The shared synthesis cache (e.g. for
    /// [`stats`](SharedSynthCache::stats)).
    pub fn cache(&self) -> &Arc<SharedSynthCache> {
        &self.cache
    }

    /// Stable fingerprint of this service's device calibration — the key
    /// under which snapshots are persisted (see
    /// [`SnapshotStore::path_for`]).
    pub fn calibration_hash(&self) -> u64 {
        self.device.calibration_hash()
    }

    /// Preloads the shared cache from the store's snapshot for this
    /// device's calibration. A missing snapshot is not an error (the
    /// report simply says zero entries found); corrupted records are
    /// skipped and counted in the report.
    ///
    /// # Errors
    ///
    /// [`StoreError`] only for I/O failures reading an existing snapshot.
    pub fn warm_start_from(&self, store: &SnapshotStore) -> Result<LoadReport, StoreError> {
        let outcome = store.load(self.calibration_hash())?;
        self.cache.preload(
            outcome
                .entries
                .into_iter()
                .map(|e| (e.key, e.target_fp, e.value)),
        );
        Ok(outcome.report)
    }

    /// Writes the shared cache's current entries to the store as this
    /// device's snapshot (atomically replacing any previous one).
    ///
    /// # Errors
    ///
    /// [`StoreError`] on any I/O failure; the previous snapshot (if any)
    /// is left untouched in that case.
    pub fn drain_to(&self, store: &SnapshotStore) -> Result<SaveReport, StoreError> {
        let entries: Vec<StoredEntry> = self
            .cache
            .export_entries()
            .into_iter()
            .map(|(key, target_fp, value)| StoredEntry {
                key,
                target_fp,
                value,
            })
            .collect();
        store.save(self.calibration_hash(), &entries)
    }

    /// Submits a job without blocking.
    ///
    /// # Errors
    ///
    /// [`ServiceError::QueueFull`] when the bounded queue is at
    /// capacity, [`ServiceError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, ServiceError> {
        if !self.accepting.load(Ordering::Relaxed) {
            return Err(ServiceError::ShuttingDown);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (result_tx, result_rx) = mpsc::channel();
        let cancel = Arc::new(AtomicBool::new(false));
        let deadline = spec.deadline.map(|d| Instant::now() + d);
        let job = Job {
            spec,
            deadline,
            cancel: cancel.clone(),
            result_tx,
        };
        match self.queue.try_push(job) {
            Ok(()) => {
                self.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);
                self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
                Ok(JobHandle {
                    id,
                    cancel,
                    result_rx,
                })
            }
            Err(PushError::Full(_)) => Err(ServiceError::QueueFull {
                capacity: self.queue.capacity(),
            }),
            Err(PushError::Closed(_)) => Err(ServiceError::ShuttingDown),
        }
    }

    /// Stops accepting jobs, lets the workers drain everything already
    /// queued, and joins them. Called automatically on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.accepting.store(false, Ordering::Relaxed);
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for CompileService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One worker: pop, compile in stages, report. Exits when the queue is
/// closed and drained.
fn worker_loop(
    device: &Device,
    queue: &BoundedQueue<Job>,
    cache: &Arc<SharedSynthCache>,
    metrics: &ServiceMetrics,
    sampling: &SampleState,
    intra_job_threads: usize,
) {
    while let Some(job) = queue.pop() {
        metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        let outcome = run_job(
            device,
            cache,
            metrics,
            &job,
            sampling.pick(),
            intra_job_threads,
        );
        match &outcome {
            Ok(_) => metrics.jobs_completed.fetch_add(1, Ordering::Relaxed),
            Err(ServiceError::Canceled) => metrics.jobs_canceled.fetch_add(1, Ordering::Relaxed),
            Err(ServiceError::DeadlineExceeded { .. }) => {
                metrics.jobs_timed_out.fetch_add(1, Ordering::Relaxed)
            }
            Err(_) => metrics.jobs_failed.fetch_add(1, Ordering::Relaxed),
        };
        // The caller may have dropped its handle; that is fine.
        let _ = job.result_tx.send(outcome);
    }
}

/// Checks the two abort conditions between pipeline stages.
fn abort_check(job: &Job, stage: &'static str) -> Result<(), ServiceError> {
    if job.cancel.load(Ordering::Relaxed) {
        return Err(ServiceError::Canceled);
    }
    if let Some(deadline) = job.deadline {
        if Instant::now() >= deadline {
            return Err(ServiceError::DeadlineExceeded { stage });
        }
    }
    Ok(())
}

/// The staged compile pipeline — the same passes as
/// [`nsb_compiler::Transpiler::compile`], with cancellation/deadline
/// checks between stages and per-stage latency accounting. `sampled`
/// forces verification for this job (the service's sampling mode picked
/// it) even if the spec itself runs unverified.
fn run_job(
    device: &Device,
    cache: &Arc<SharedSynthCache>,
    metrics: &ServiceMetrics,
    job: &Job,
    sampled: bool,
    intra_job_threads: usize,
) -> Result<JobOutput, ServiceError> {
    abort_check(job, "queued")?;

    let started = Instant::now();
    let routed = sabre_route(
        &job.spec.circuit,
        device.topology(),
        &SabreConfig::default(),
    );
    metrics.record_stage(Stage::Route, started.elapsed());
    let routed = routed.map_err(|e| ServiceError::Compile(e.into()))?;
    abort_check(job, "route")?;

    let started = Instant::now();
    let mode = job
        .spec
        .mode
        .unwrap_or_else(|| default_mode(job.spec.strategy));
    let mut lowerer = Lowerer::new(device, job.spec.strategy, mode)
        .with_shared_cache(cache.clone() as Arc<dyn SynthCache>);
    // Prewarm fans the circuit's distinct synthesis targets across a
    // scoped thread pool; the serial `lower` below then hits the cache on
    // every one of them, so its output is bit-identical to a fully
    // serial lowering regardless of `intra_job_threads`.
    lowerer.prewarm(&routed.circuit, intra_job_threads);
    let lowered = lowerer.lower(&routed.circuit);
    metrics.record_stage(Stage::Lower, started.elapsed());
    let ops = lowered.map_err(|e| ServiceError::Compile(e.into()))?;
    abort_check(job, "lower")?;

    let started = Instant::now();
    let n_qubits = device.topology().n_qubits();
    let sched = schedule(&ops, n_qubits, device.config().t_1q);
    let fidelity = sched.coherence_fidelity(device.config().coherence_time);
    metrics.record_stage(Stage::Schedule, started.elapsed());
    abort_check(job, "schedule")?;

    let mut verify_report = None;
    if job.spec.verify.is_enabled() || sampled {
        let started = Instant::now();
        let suite = VerifierSuite::standard();
        let vops = to_verify_ops(&ops, device, job.spec.strategy);
        let target = VerifyTarget::new(device, job.spec.strategy, vops)
            .with_source(&routed.circuit)
            .with_schedule(to_schedule_facts(&sched));
        let report = suite.run(&target);
        metrics.record_stage(Stage::Verify, started.elapsed());
        metrics.jobs_verified.fetch_add(1, Ordering::Relaxed);
        if sampled && !job.spec.verify.is_enabled() {
            metrics.jobs_verify_sampled.fetch_add(1, Ordering::Relaxed);
        }
        if !report.is_clean() {
            metrics
                .verification_violations
                .fetch_add(report.violations.len() as u64, Ordering::Relaxed);
            return Err(ServiceError::Compile(CompileError::Verification {
                stage: "service",
                report,
            }));
        }
        verify_report = Some(report);
    }

    Ok(JobOutput {
        circuit: CompiledCircuit {
            ops,
            n_qubits,
            initial_layout: routed.initial_layout,
            final_layout: routed.final_layout,
            swaps_inserted: routed.swaps_inserted,
            schedule: sched,
            fidelity,
        },
        verify: verify_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsb_circuit::generators;
    use nsb_device::{BasisStrategy, DeviceConfig};
    use std::time::Duration;

    fn test_device() -> Device {
        Device::build(3, 2, DeviceConfig::fast_test()).expect("test device")
    }

    fn small_config() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 256,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn compiles_like_the_plain_transpiler() {
        let device = test_device();
        let logical = generators::qft(4, true);
        let expected = nsb_compiler::Transpiler::new(&device, BasisStrategy::Criterion2)
            .compile(&logical)
            .expect("direct compile");
        let service = CompileService::new(device, small_config()).expect("service");
        let handle = service
            .submit(JobSpec::new(logical, BasisStrategy::Criterion2))
            .expect("submit");
        let compiled = handle.wait().expect("service compile");
        assert_eq!(compiled.ops.len(), expected.ops.len());
        assert_eq!(compiled.fidelity.to_bits(), expected.fidelity.to_bits());
        assert_eq!(service.metrics().jobs_completed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn zero_intra_job_threads_is_rejected_not_panicked() {
        let config = ServiceConfig {
            intra_job_threads: 0,
            ..small_config()
        };
        match CompileService::new(test_device(), config) {
            Err(ServiceError::InvalidConfig { field, .. }) => {
                assert_eq!(field, "intra_job_threads");
            }
            Ok(_) => panic!("zero intra_job_threads must be rejected"),
            Err(other) => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn oversized_intra_job_threads_is_clamped_and_works() {
        // Far above any machine's parallelism; `new` clamps rather than
        // erroring, and jobs still compile.
        let config = ServiceConfig {
            intra_job_threads: 1 << 20,
            ..small_config()
        };
        let service = CompileService::new(test_device(), config).expect("service");
        let handle = service
            .submit(JobSpec::new(generators::ghz(4), BasisStrategy::Baseline))
            .expect("submit");
        handle.wait().expect("clamped service still compiles");
    }

    #[test]
    fn intra_job_parallelism_is_bit_identical_and_verified() {
        use nsb_compiler::VerifyLevel;
        let logical = generators::qft(5, true);
        let mut outputs = Vec::new();
        for threads in [1usize, 4] {
            let config = ServiceConfig {
                intra_job_threads: threads,
                ..small_config()
            };
            let service = CompileService::new(test_device(), config).expect("service");
            let handle = service
                .submit(
                    JobSpec::new(logical.clone(), BasisStrategy::Baseline)
                        .with_mode(nsb_compiler::LoweringMode::Direct)
                        .with_verification(VerifyLevel::Full),
                )
                .expect("submit");
            let output = handle.wait_full().expect("verified compile");
            let report = output.verify.as_ref().expect("full verification report");
            assert!(
                report.is_clean(),
                "verification must stay clean at {threads} threads"
            );
            outputs.push(output);
        }
        let serial = &outputs[0];
        let fanned = &outputs[1];
        assert_eq!(
            serial.circuit.fidelity.to_bits(),
            fanned.circuit.fidelity.to_bits()
        );
        // Debug output round-trips f64 bit patterns, so string equality
        // is bit-identity of the compiled ops.
        assert_eq!(
            format!("{:?}", serial.circuit.ops),
            format!("{:?}", fanned.circuit.ops),
            "compiled circuit must not depend on intra_job_threads"
        );
    }

    #[test]
    fn zero_deadline_times_out() {
        let service = CompileService::new(test_device(), small_config()).expect("service");
        let spec = JobSpec::new(generators::ghz(4), BasisStrategy::Criterion1)
            .with_deadline(Duration::ZERO);
        let handle = service.submit(spec).expect("submit");
        match handle.wait() {
            Err(ServiceError::DeadlineExceeded { .. }) => {}
            other => panic!("expected deadline error, got {other:?}"),
        }
        assert_eq!(service.metrics().jobs_timed_out.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn queue_full_is_reported() {
        let service = CompileService::new(
            test_device(),
            ServiceConfig {
                workers: 1,
                queue_capacity: 1,
                cache_capacity: 16,
                ..ServiceConfig::default()
            },
        )
        .expect("service");
        // Saturate: keep submitting until the bounded queue rejects one.
        let mut handles = Vec::new();
        let mut saw_full = false;
        for _ in 0..64 {
            match service.submit(JobSpec::new(
                generators::qft(5, true),
                BasisStrategy::Baseline,
            )) {
                Ok(h) => handles.push(h),
                Err(ServiceError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 1);
                    saw_full = true;
                    break;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_full, "queue never filled");
        for h in handles {
            h.wait().expect("queued jobs still complete");
        }
    }

    #[test]
    fn shutdown_drains_inflight_jobs() {
        let service = CompileService::new(
            test_device(),
            ServiceConfig {
                workers: 1,
                queue_capacity: 16,
                cache_capacity: 256,
                ..ServiceConfig::default()
            },
        )
        .expect("service");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                service
                    .submit(JobSpec::new(generators::ghz(4), BasisStrategy::Criterion2))
                    .expect("submit")
            })
            .collect();
        service.shutdown();
        for h in handles {
            h.wait().expect("accepted job must finish across shutdown");
        }
    }

    #[test]
    fn rejects_after_shutdown() {
        let device = test_device();
        let service = CompileService::new(device.clone(), small_config()).expect("service");
        service.accepting.store(false, Ordering::Relaxed);
        match service.submit(JobSpec::new(generators::ghz(3), BasisStrategy::Baseline)) {
            Err(ServiceError::ShuttingDown) => {}
            other => panic!("expected shutting-down, got {:?}", other.map(|h| h.id())),
        }
    }

    #[test]
    fn cancel_while_queued() {
        let service = CompileService::new(
            test_device(),
            ServiceConfig {
                workers: 1,
                queue_capacity: 16,
                cache_capacity: 256,
                ..ServiceConfig::default()
            },
        )
        .expect("service");
        // Occupy the single worker with slow jobs, then cancel a queued
        // one before it can start.
        let slow: Vec<_> = (0..2)
            .map(|_| {
                service
                    .submit(JobSpec::new(
                        generators::qft(6, true),
                        BasisStrategy::Baseline,
                    ))
                    .expect("submit slow")
            })
            .collect();
        let victim = service
            .submit(JobSpec::new(generators::ghz(4), BasisStrategy::Criterion1))
            .expect("submit victim");
        victim.cancel();
        match victim.wait() {
            Err(ServiceError::Canceled) => {}
            Ok(_) => panic!("victim ran to completion despite cancellation"),
            Err(other) => panic!("unexpected {other:?}"),
        }
        for h in slow {
            h.wait().expect("slow jobs unaffected");
        }
        assert_eq!(service.metrics().jobs_canceled.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn wait_full_surfaces_a_clean_verify_report() {
        use nsb_verify::VerifyLevel;
        let service = CompileService::new(test_device(), small_config()).expect("service");
        let verified = service
            .submit(
                JobSpec::new(generators::ghz(4), BasisStrategy::Criterion2)
                    .with_verification(VerifyLevel::Full),
            )
            .expect("submit")
            .wait_full()
            .expect("verified compile");
        let report = verified.verify.expect("verified job carries a report");
        assert!(report.is_clean());
        assert!(!report.checks_run.is_empty());
        let unverified = service
            .submit(
                JobSpec::new(generators::ghz(4), BasisStrategy::Criterion2)
                    .with_verification(VerifyLevel::Off),
            )
            .expect("submit")
            .wait_full()
            .expect("unverified compile");
        assert!(unverified.verify.is_none());
    }

    #[test]
    fn verify_sampling_checks_every_nth_job() {
        use nsb_verify::VerifyLevel;
        let service = CompileService::new(
            test_device(),
            ServiceConfig {
                workers: 1,
                queue_capacity: 16,
                cache_capacity: 256,
                verify_sample: NonZeroU64::new(2),
                ..ServiceConfig::default()
            },
        )
        .expect("service");
        let mut reports = 0;
        for _ in 0..4 {
            let out = service
                .submit(
                    JobSpec::new(generators::ghz(3), BasisStrategy::Criterion1)
                        .with_verification(VerifyLevel::Off),
                )
                .expect("submit")
                .wait_full()
                .expect("compile");
            if out.verify.is_some() {
                reports += 1;
            }
        }
        let m = service.metrics();
        assert_eq!(m.jobs_verified.load(Ordering::Relaxed), 2);
        assert_eq!(m.jobs_verify_sampled.load(Ordering::Relaxed), 2);
        assert_eq!(reports, 2, "sampled jobs still surface their report");
        assert_eq!(m.verification_violations.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn warm_start_and_drain_round_trip_through_a_store() {
        use nsb_store::SnapshotStore;
        let dir =
            std::env::temp_dir().join(format!("nsb-service-warm-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir).expect("open store");

        let cold = CompileService::new(test_device(), small_config()).expect("cold service");
        cold.submit(JobSpec::new(
            generators::qft(4, true),
            BasisStrategy::Baseline,
        ))
        .expect("submit")
        .wait()
        .expect("cold compile");
        let exported = cold.cache().stats().entries;
        assert!(exported > 0, "cold run must populate the cache");
        let saved = cold.drain_to(&store).expect("drain");
        assert_eq!(saved.entries, exported);
        cold.shutdown();

        let warm = CompileService::new(test_device(), small_config()).expect("warm service");
        assert_eq!(warm.calibration_hash(), {
            let d = test_device();
            d.calibration_hash()
        });
        let report = warm.warm_start_from(&store).expect("warm start");
        assert_eq!(report.loaded, exported);
        assert_eq!(report.skipped, 0);
        assert!(report.found);
        assert_eq!(warm.cache().stats().entries, exported);
        // The warmed service compiles with cache hits from the snapshot.
        warm.submit(JobSpec::new(
            generators::qft(4, true),
            BasisStrategy::Baseline,
        ))
        .expect("submit")
        .wait()
        .expect("warm compile");
        assert!(warm.cache().stats().hits > 0, "warm run must hit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_cache_fills_and_hits_across_jobs() {
        let service = CompileService::new(
            test_device(),
            ServiceConfig {
                workers: 1,
                queue_capacity: 16,
                cache_capacity: 256,
                ..ServiceConfig::default()
            },
        )
        .expect("service");
        // Baseline strategy lowers CPhase gates by direct decomposition,
        // which is what the shared cache accelerates.
        let spec = JobSpec::new(generators::qft(4, true), BasisStrategy::Baseline);
        service.submit(spec.clone()).unwrap().wait().unwrap();
        let after_first = service.cache().stats();
        assert!(after_first.entries > 0, "first job must populate the cache");
        service.submit(spec).unwrap().wait().unwrap();
        let after_second = service.cache().stats();
        assert!(
            after_second.hits > after_first.hits,
            "second identical job must hit the shared cache"
        );
        assert!(service.metrics().cache_hit_rate() > 0.0);
    }
}
