//! Concurrency stress test with verification enabled: a seeded workload
//! submitted from multiple threads, every job requesting a *verified*
//! compilation. All jobs must pass the verifier (zero violations), and
//! every result must be bit-identical to a serial compile of the same
//! job — verification must not perturb outputs, and concurrent verified
//! jobs must not interfere.

use nsb_circuit::{generators, Circuit, Gate};
use nsb_compiler::{Transpiler, VerifyLevel};
use nsb_device::{BasisStrategy, Device, DeviceConfig};
use nsb_service::{CompileService, JobSpec, ServiceConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Deterministic pseudo-random circuit: layers of rotations and CX/CPhase
/// on a seeded RNG, so every run stresses the same workload.
fn random_circuit(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..layers {
        for q in 0..n {
            let angle = rng.gen_range_f64(-3.0, 3.0);
            match rng.gen::<u64>() % 3 {
                0 => c.push(Gate::Rx(angle), &[q]),
                1 => c.push(Gate::Ry(angle), &[q]),
                _ => c.push(Gate::Rz(angle), &[q]),
            };
        }
        for _ in 0..n / 2 {
            let a = rng.gen::<u64>() as usize % n;
            let b = rng.gen::<u64>() as usize % n;
            if a != b {
                if rng.gen_bool(0.5) {
                    c.push(Gate::Cx, &[a, b]);
                } else {
                    c.push(Gate::CPhase(rng.gen_range_f64(0.1, 3.0)), &[a, b]);
                }
            }
        }
    }
    c
}

fn workload() -> Vec<(BasisStrategy, Circuit)> {
    let mut jobs = vec![
        (BasisStrategy::Baseline, generators::ghz(4)),
        (BasisStrategy::Criterion1, generators::qft(4, true)),
        (BasisStrategy::Criterion2, generators::bv_all_ones(5)),
    ];
    for (i, strategy) in BasisStrategy::ALL.into_iter().enumerate() {
        jobs.push((strategy, random_circuit(4, 2, 0x5eed + i as u64)));
    }
    jobs
}

#[test]
fn verified_concurrent_results_match_serial_and_stay_clean() {
    let device = Device::build(3, 2, DeviceConfig::fast_test()).expect("device");
    let jobs = workload();

    // Serial reference: the plain transpiler with full verification.
    let serial: Vec<u64> = jobs
        .iter()
        .map(|(strategy, circuit)| {
            Transpiler::new(&device, *strategy)
                .with_verification(VerifyLevel::Full)
                .compile(circuit)
                .expect("serial verified compile")
                .fidelity
                .to_bits()
        })
        .collect();

    let service = Arc::new(
        CompileService::new(
            device,
            ServiceConfig {
                workers: 4,
                queue_capacity: 4 * jobs.len(),
                cache_capacity: 1024,
                ..ServiceConfig::default()
            },
        )
        .expect("start service"),
    );

    let submitters: Vec<_> = (0..4)
        .map(|_| {
            let service = service.clone();
            let jobs = jobs.clone();
            std::thread::spawn(move || {
                let handles: Vec<_> = jobs
                    .into_iter()
                    .map(|(strategy, circuit)| {
                        service
                            .submit(
                                JobSpec::new(circuit, strategy)
                                    .with_verification(VerifyLevel::Full),
                            )
                            .expect("submit")
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.wait().expect("verified compile").fidelity.to_bits())
                    .collect::<Vec<u64>>()
            })
        })
        .collect();

    for submitter in submitters {
        let got = submitter.join().expect("submitter thread");
        assert_eq!(got, serial, "verified results diverged from serial");
    }

    let metrics = service.metrics();
    let verified = metrics.jobs_verified.load(Ordering::Relaxed);
    let violations = metrics.verification_violations.load(Ordering::Relaxed);
    assert_eq!(verified, 4 * jobs.len() as u64, "all jobs must verify");
    assert_eq!(violations, 0, "no verified job may report a violation");
    assert!(metrics.report().contains("0 violations"));
}
