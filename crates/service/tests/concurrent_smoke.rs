//! Concurrency smoke test: many threads submitting many circuits must
//! produce exactly the fidelities of a serial compilation of the same
//! jobs — shared-cache hits are bit-identical to fresh syntheses, so
//! neither scheduling order nor cache state may leak into results.

use nsb_circuit::{generators, Circuit};
use nsb_compiler::Transpiler;
use nsb_device::{BasisStrategy, Device, DeviceConfig};
use nsb_service::{CompileService, JobSpec, ServiceConfig};
use std::sync::Arc;

fn workload() -> Vec<(BasisStrategy, Circuit)> {
    let circuits = [
        generators::ghz(4),
        generators::qft(4, true),
        generators::qft(5, true),
        generators::bv_all_ones(5),
    ];
    circuits
        .iter()
        .flat_map(|c| {
            [
                BasisStrategy::Baseline,
                BasisStrategy::Criterion1,
                BasisStrategy::Criterion2,
            ]
            .into_iter()
            .map(move |s| (s, c.clone()))
        })
        .collect()
}

#[test]
fn concurrent_results_match_serial_exactly() {
    let device = Device::build(3, 2, DeviceConfig::fast_test()).expect("device");
    let jobs = workload();

    let serial: Vec<u64> = jobs
        .iter()
        .map(|(strategy, circuit)| {
            Transpiler::new(&device, *strategy)
                .compile(circuit)
                .expect("serial compile")
                .fidelity
                .to_bits()
        })
        .collect();

    let service = Arc::new(
        CompileService::new(
            device,
            ServiceConfig {
                workers: 4,
                queue_capacity: 4 * jobs.len(),
                cache_capacity: 1024,
                ..ServiceConfig::default()
            },
        )
        .expect("start service"),
    );

    // N submitter threads, each enqueueing the full M-job workload.
    let submitters: Vec<_> = (0..4)
        .map(|_| {
            let service = service.clone();
            let jobs = jobs.clone();
            std::thread::spawn(move || {
                let handles: Vec<_> = jobs
                    .into_iter()
                    .map(|(strategy, circuit)| {
                        service
                            .submit(JobSpec::new(circuit, strategy))
                            .expect("submit")
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.wait().expect("compile").fidelity.to_bits())
                    .collect::<Vec<u64>>()
            })
        })
        .collect();

    for submitter in submitters {
        let got = submitter.join().expect("submitter thread");
        assert_eq!(got, serial, "concurrent fidelities diverged from serial");
    }

    let stats = service.cache().stats();
    assert!(
        stats.hits > 0,
        "repeated workloads must hit the shared cache"
    );
}
