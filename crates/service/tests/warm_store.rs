//! Persistence integration tests: warm-started services must be
//! bit-identical to cold ones, and flushing must be safe while the
//! service is actively compiling.

use nsb_circuit::{generators, Circuit};
use nsb_device::{BasisStrategy, Device, DeviceConfig};
use nsb_service::{CompileService, JobSpec, ServiceConfig, ServicePool};
use nsb_service::{FallbackPolicy, JobRoute, PoolConfig, ShardSpec};
use nsb_store::{PeriodicFlusher, SnapshotStore, StoredEntry};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(label: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nsb-warm-it-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn device() -> Device {
    Device::build(3, 2, DeviceConfig::fast_test()).expect("device")
}

fn config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 1024,
        ..ServiceConfig::default()
    }
}

fn workload() -> Vec<(BasisStrategy, Circuit)> {
    [
        generators::ghz(4),
        generators::qft(4, true),
        generators::bv_all_ones(5),
    ]
    .iter()
    .flat_map(|c| {
        [BasisStrategy::Baseline, BasisStrategy::Criterion2]
            .into_iter()
            .map(move |s| (s, c.clone()))
    })
    .collect()
}

fn run_workload(service: &CompileService) -> Vec<u64> {
    workload()
        .into_iter()
        .map(|(strategy, circuit)| {
            service
                .submit(JobSpec::new(circuit, strategy))
                .expect("submit")
                .wait()
                .expect("compile")
                .fidelity
                .to_bits()
        })
        .collect()
}

/// The core warm-start guarantee: a service preloaded from a snapshot a
/// previous service drained produces bit-identical compiled output, with
/// a strictly better cache hit rate.
#[test]
fn warm_started_service_is_bit_identical_and_hits_more() {
    let dir = temp_dir("bitident");
    let store = SnapshotStore::open(&dir).expect("open store");

    let cold = CompileService::new(device(), config()).expect("cold service");
    let cold_bits = run_workload(&cold);
    let cold_stats = cold.cache().stats();
    let saved = cold.drain_to(&store).expect("drain");
    assert_eq!(saved.entries, cold_stats.entries);
    assert!(saved.entries > 0, "workload must populate the cache");
    cold.shutdown();

    let warm = CompileService::new(device(), config()).expect("warm service");
    let report = warm.warm_start_from(&store).expect("warm start");
    assert_eq!(report.loaded, saved.entries);
    assert_eq!(report.skipped, 0);
    let warm_bits = run_workload(&warm);
    assert_eq!(
        warm_bits, cold_bits,
        "warm-started compilation diverged from cold"
    );

    let warm_stats = warm.cache().stats();
    let cold_rate = cold_stats.hits as f64 / (cold_stats.hits + cold_stats.misses) as f64;
    let warm_rate = warm_stats.hits as f64 / (warm_stats.hits + warm_stats.misses) as f64;
    assert!(
        warm_rate > cold_rate,
        "warm hit rate {warm_rate:.3} must beat cold {cold_rate:.3}"
    );
    warm.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A background flusher snapshotting the live cache while worker threads
/// are compiling must never corrupt the store: every intermediate
/// snapshot loads cleanly, and the final state round-trips.
#[test]
fn concurrent_flush_while_serving_keeps_snapshots_loadable() {
    let dir = temp_dir("flushserve");
    let store = SnapshotStore::open(&dir).expect("open store");

    let service = Arc::new(CompileService::new(device(), config()).expect("service"));
    let calibration = service.calibration_hash();
    let cache = service.cache().clone();
    let flush_store = store.clone();
    let flusher = PeriodicFlusher::spawn(Duration::from_millis(2), move || {
        let entries: Vec<StoredEntry> = cache
            .export_entries()
            .into_iter()
            .map(|(key, target_fp, value)| StoredEntry {
                key,
                target_fp,
                value,
            })
            .collect();
        let _ = flush_store.save(calibration, &entries);
    })
    .expect("spawn flusher");

    // Hammer the service from several threads while the flusher runs,
    // loading the evolving snapshot concurrently from this thread.
    let submitters: Vec<_> = (0..3)
        .map(|_| {
            let service = service.clone();
            std::thread::spawn(move || {
                for (strategy, circuit) in workload() {
                    service
                        .submit(JobSpec::new(circuit, strategy))
                        .expect("submit")
                        .wait()
                        .expect("compile");
                }
            })
        })
        .collect();
    for _ in 0..20 {
        let outcome = store.load(calibration).expect("load mid-flight");
        assert_eq!(
            outcome.report.skipped, 0,
            "a flushed snapshot must never contain corrupt records"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    for s in submitters {
        s.join().expect("submitter");
    }
    flusher.stop();

    let final_outcome = store.load(calibration).expect("final load");
    assert!(final_outcome.report.found);
    assert_eq!(final_outcome.report.skipped, 0);
    assert_eq!(
        final_outcome.report.loaded,
        service.cache().stats().entries,
        "final flush must capture the full cache"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pool-level round trip across two calibrations: routed jobs compile on
/// their own shard, and a second pool warm-starts both shards from the
/// first pool's drained snapshots.
#[test]
fn pool_round_trips_two_calibrations_through_one_store() {
    let dir = temp_dir("pool");
    let make_pool = || {
        let a = device();
        let mut cfg = DeviceConfig::fast_test();
        cfg.seed = 11;
        let b = Device::build(3, 2, cfg).expect("device b");
        ServicePool::new(
            vec![
                ShardSpec::new("alpha", a).with_config(config()),
                ShardSpec::new("beta", b).with_config(config()),
            ],
            PoolConfig {
                fallback: FallbackPolicy::Reject,
                store_dir: Some(dir.clone()),
                flush_interval: None,
            },
        )
        .expect("pool")
    };

    let cold = make_pool();
    for name in ["alpha", "beta"] {
        cold.submit(
            &JobRoute::Name(name.into()),
            JobSpec::new(generators::qft(4, true), BasisStrategy::Baseline),
        )
        .expect("submit")
        .wait()
        .expect("compile");
    }
    let saved = cold.shutdown().expect("drain");
    assert_eq!(saved.len(), 2);
    assert!(saved.iter().all(|(_, r)| r.entries > 0));

    let warm = make_pool();
    for (i, (name, report)) in warm.warm_reports().iter().enumerate() {
        assert!(report.found, "shard `{name}` must find its snapshot");
        assert_eq!(report.loaded, saved[i].1.entries);
        assert_eq!(report.skipped, 0);
    }
    warm.shutdown().expect("second drain");
    let _ = std::fs::remove_dir_all(&dir);
}
