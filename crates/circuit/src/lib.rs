//! # nsb-circuit
//!
//! Quantum circuit IR, statevector simulation and benchmark generators for
//! the MICRO 2022 reproduction of *Let Each Quantum Bit Choose Its Basis
//! Gates*.
//!
//! The benchmark set matches the paper's Table II: QFT, Bernstein-Vazirani
//! (all-ones secret), the Cuccaro ripple-carry adder and QAOA (p = 1) on
//! Erdos-Renyi graphs, plus the Draper/Ruiz-Perez QFT adder mentioned in
//! the introduction.
//!
//! ```
//! use nsb_circuit::{generators, StateVector};
//!
//! let c = generators::ghz(3);
//! let mut s = StateVector::zero(3);
//! s.apply_circuit(&c);
//! assert!((s.probability(0b111) - 0.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod gate;
pub mod generators;
mod state;

pub use circuit::Circuit;
pub use gate::{Gate, Operation};
pub use state::{circuits_equivalent, StateVector};
