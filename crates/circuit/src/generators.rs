//! Benchmark circuit generators (paper Section VIII-C): QFT,
//! Bernstein-Vazirani, the Cuccaro ripple-carry adder, the Draper /
//! Ruiz-Perez QFT adder, QAOA on random graphs, and GHZ.

use crate::circuit::Circuit;
use crate::gate::Gate;
use rand::Rng;
use std::f64::consts::PI;

/// Quantum Fourier transform on `n` qubits (qubit 0 = most significant).
///
/// With `do_swaps`, the final qubit-reversal SWAPs are appended, matching
/// Qiskit's default QFT; without them, qubit `i` ends holding the phase
/// `exp(2 pi i B / 2^(n-i))` (the form used by the QFT adder).
pub fn qft(n: usize, do_swaps: bool) -> Circuit {
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.push(Gate::H, &[i]);
        for j in (i + 1)..n {
            let angle = PI / (1u64 << (j - i)) as f64;
            c.push(Gate::CPhase(angle), &[j, i]);
        }
    }
    if do_swaps {
        for i in 0..n / 2 {
            c.push(Gate::Swap, &[i, n - 1 - i]);
        }
    }
    c
}

/// Inverse QFT (no swaps), the adjoint of [`qft`] with `do_swaps = false`.
pub fn qft_inverse(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for i in (0..n).rev() {
        for j in ((i + 1)..n).rev() {
            let angle = -PI / (1u64 << (j - i)) as f64;
            c.push(Gate::CPhase(angle), &[j, i]);
        }
        c.push(Gate::H, &[i]);
    }
    c
}

/// Bernstein-Vazirani circuit for a hidden bit string `secret` over
/// `secret.len()` data qubits plus one ancilla (the last qubit).
pub fn bernstein_vazirani(secret: &[bool]) -> Circuit {
    let n = secret.len();
    let anc = n;
    let mut c = Circuit::new(n + 1);
    for q in 0..n {
        c.push(Gate::H, &[q]);
    }
    c.push(Gate::X, &[anc]);
    c.push(Gate::H, &[anc]);
    for (q, &bit) in secret.iter().enumerate() {
        if bit {
            c.push(Gate::Cx, &[q, anc]);
        }
    }
    for q in 0..n {
        c.push(Gate::H, &[q]);
    }
    c
}

/// Bernstein-Vazirani sized like the paper's benchmarks (`bv N` = N total
/// qubits, N-1 data bits): the hidden string is all-ones, the worst case
/// for routing since every data qubit must interact with the ancilla.
pub fn bv_all_ones(total_qubits: usize) -> Circuit {
    assert!(total_qubits >= 2);
    bernstein_vazirani(&vec![true; total_qubits - 1])
}

/// The Cuccaro ripple-carry adder on two `n`-bit registers:
/// `|c0=0, a, b, z=0> -> |0, a, a+b mod 2^n, carry>`.
///
/// Qubit layout: 0 = incoming carry, `1..=n` = a (LSB first),
/// `n+1..=2n` = b (LSB first), `2n+1` = carry out. Total `2n + 2` qubits
/// (`cuccaro 10` in the paper = 4-bit operands).
pub fn cuccaro_adder(n: usize) -> Circuit {
    assert!(n >= 1);
    let mut c = Circuit::new(2 * n + 2);
    let a = |i: usize| 1 + i;
    let b = |i: usize| 1 + n + i;
    let cin = 0usize;
    let cout = 2 * n + 1;
    // MAJ(x, y, z): x = running carry, y = b_i, z = a_i.
    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.push(Gate::Cx, &[z, y]);
        c.push(Gate::Cx, &[z, x]);
        c.ccx(x, y, z);
    };
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.ccx(x, y, z);
        c.push(Gate::Cx, &[z, x]);
        c.push(Gate::Cx, &[x, y]);
    };
    maj(&mut c, cin, b(0), a(0));
    for i in 1..n {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.push(Gate::Cx, &[a(n - 1), cout]);
    for i in (1..n).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, cin, b(0), a(0));
    c
}

/// The Draper / Ruiz-Perez QFT adder: `|a, b> -> |a, a + b mod 2^n>` using
/// phase arithmetic in the Fourier basis. Qubits `0..n` hold `a` (MSB
/// first), `n..2n` hold `b` (MSB first).
pub fn qft_adder(n: usize) -> Circuit {
    let mut c = Circuit::new(2 * n);
    // QFT (no swaps) on the b register.
    let f = qft(n, false).remapped(&(n..2 * n).collect::<Vec<_>>(), 2 * n);
    c.extend(&f);
    // Controlled phases: a bit j (weight 2^(n-1-j)) adds to b qubit i the
    // phase 2 pi 2^(n-1-j) / 2^(n-i).
    for i in 0..n {
        for j in 0..n {
            let exp = (n - 1 - j) as i64 - (n - i) as i64; // power of two
            if exp >= 0 {
                continue; // multiple of 2 pi
            }
            let angle = 2.0 * PI * (2.0f64).powi(exp as i32);
            c.push(Gate::CPhase(angle), &[j, n + i]);
        }
    }
    let inv = qft_inverse(n).remapped(&(n..2 * n).collect::<Vec<_>>(), 2 * n);
    c.extend(&inv);
    c
}

/// QAOA (p = 1) for MaxCut on a seeded Erdos-Renyi graph `G(n, edge_prob)`:
/// the cost layer applies `exp(-i gamma Z Z)` per edge, the mixer
/// `exp(-i beta X)` per qubit (paper Table II: `qaoa <edge_prob> <n>`).
pub fn qaoa_maxcut<R: Rng + ?Sized>(
    n: usize,
    edge_prob: f64,
    gamma: f64,
    beta: f64,
    rng: &mut R,
) -> Circuit {
    let edges = random_graph(n, edge_prob, rng);
    qaoa_from_edges(n, &edges, gamma, beta)
}

/// QAOA (p = 1) over an explicit edge list.
pub fn qaoa_from_edges(n: usize, edges: &[(usize, usize)], gamma: f64, beta: f64) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::H, &[q]);
    }
    for &(i, j) in edges {
        c.push(Gate::Rzz(2.0 * gamma), &[i, j]);
    }
    for q in 0..n {
        c.push(Gate::Rx(2.0 * beta), &[q]);
    }
    c
}

/// Samples an Erdos-Renyi graph `G(n, p)` edge list.
pub fn random_graph<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen::<f64>() < p {
                edges.push((i, j));
            }
        }
    }
    edges
}

/// GHZ state preparation on `n` qubits (used by the quickstart example).
pub fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.push(Gate::H, &[0]);
    for q in 1..n {
        c.push(Gate::Cx, &[q - 1, q]);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{circuits_equivalent, StateVector};
    use nsb_math::Complex64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn qft_matches_dft_matrix() {
        // QFT with swaps: amp[y] = omega^(x*y) / sqrt(N) for input |x>.
        let n = 3;
        let big_n = 1usize << n;
        for x in [0usize, 1, 5] {
            let mut s = StateVector::basis(n, x);
            s.apply_circuit(&qft(n, true));
            for y in 0..big_n {
                let expected = Complex64::cis(2.0 * PI * (x * y) as f64 / big_n as f64)
                    / (big_n as f64).sqrt();
                assert!(
                    s.amplitudes()[y].approx_eq(expected, 1e-9),
                    "x={x} y={y}: {} vs {}",
                    s.amplitudes()[y],
                    expected
                );
            }
        }
    }

    #[test]
    fn qft_inverse_inverts() {
        let n = 4;
        let mut c = qft(n, false);
        c.extend(&qft_inverse(n));
        let empty = Circuit::new(n);
        assert!(circuits_equivalent(&c, &empty, 1e-9));
    }

    #[test]
    fn bv_recovers_secret() {
        let secret = [true, false, true, true];
        let c = bernstein_vazirani(&secret);
        let mut s = StateVector::zero(5);
        s.apply_circuit(&c);
        // Data register must read the secret; the ancilla remains in |->.
        let data_bits: usize = secret
            .iter()
            .enumerate()
            .map(|(i, &b)| (b as usize) << (4 - i))
            .sum();
        let p = s.probability(data_bits) + s.probability(data_bits | 1);
        assert!((p - 1.0).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn cuccaro_adds_correctly() {
        let n = 3;
        let c = cuccaro_adder(n);
        let nq = 2 * n + 2;
        for (a, b) in [(0usize, 0usize), (1, 1), (3, 5), (7, 7), (4, 3)] {
            // Build the basis index: qubit 0 = cin = 0, a LSB-first at
            // qubits 1..=n, b at n+1..=2n, cout = 0. Qubit q is bit
            // (nq-1-q) of the index.
            let mut index = 0usize;
            for i in 0..n {
                if a >> i & 1 == 1 {
                    index |= 1 << (nq - 1 - (1 + i));
                }
                if b >> i & 1 == 1 {
                    index |= 1 << (nq - 1 - (1 + n + i));
                }
            }
            let mut s = StateVector::basis(nq, index);
            s.apply_circuit(&c);
            let out = s.most_probable();
            // Decode: b' and carry.
            let mut b_out = 0usize;
            for i in 0..n {
                if out >> (nq - 1 - (1 + n + i)) & 1 == 1 {
                    b_out |= 1 << i;
                }
            }
            let carry = out >> (nq - 1 - (2 * n + 1)) & 1;
            let sum = a + b;
            assert_eq!(b_out, sum % (1 << n), "a={a} b={b}");
            assert_eq!(carry, sum >> n & 1, "carry for a={a} b={b}");
            // a register must be restored.
            let mut a_out = 0usize;
            for i in 0..n {
                if out >> (nq - 1 - (1 + i)) & 1 == 1 {
                    a_out |= 1 << i;
                }
            }
            assert_eq!(a_out, a, "a register clobbered");
        }
    }

    #[test]
    fn qft_adder_adds_correctly() {
        let n = 3;
        let c = qft_adder(n);
        for (a, b) in [(0usize, 0usize), (1, 2), (3, 5), (7, 1), (6, 7)] {
            // MSB-first registers: a in qubits 0..n, b in n..2n.
            let index = (a << n) | b;
            let mut s = StateVector::basis(2 * n, index);
            s.apply_circuit(&c);
            let out = s.most_probable();
            let a_out = out >> n;
            let b_out = out & ((1 << n) - 1);
            assert_eq!(a_out, a, "a clobbered for ({a},{b})");
            assert_eq!(b_out, (a + b) % (1 << n), "sum wrong for ({a},{b})");
            assert!(s.probability(out) > 0.999, "diffuse output");
        }
    }

    #[test]
    fn qaoa_structure() {
        let mut rng = StdRng::seed_from_u64(42);
        let c = qaoa_maxcut(10, 0.33, 0.4, 0.3, &mut rng);
        assert_eq!(c.n_qubits(), 10);
        let rzz = c.count_by_name("rzz");
        assert!(rzz > 5 && rzz < 45, "edge count {rzz}");
        assert_eq!(c.count_by_name("h"), 10);
        assert_eq!(c.count_by_name("rx"), 10);
    }

    #[test]
    fn random_graph_is_seed_deterministic() {
        let g1 = random_graph(8, 0.3, &mut StdRng::seed_from_u64(7));
        let g2 = random_graph(8, 0.3, &mut StdRng::seed_from_u64(7));
        assert_eq!(g1, g2);
    }

    #[test]
    fn ghz_superposition() {
        let c = ghz(4);
        let mut s = StateVector::zero(4);
        s.apply_circuit(&c);
        assert!((s.probability(0b0000) - 0.5).abs() < 1e-12);
        assert!((s.probability(0b1111) - 0.5).abs() < 1e-12);
    }
}
