//! The gate set of the circuit IR.

use nsb_math::{Mat2, Mat4};
use std::fmt;

/// A quantum gate. One- and two-qubit gates only; multi-qubit primitives
/// (e.g. Toffoli) are expanded by the benchmark generators.
#[derive(Clone, Debug, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Phase gate S.
    S,
    /// S dagger.
    Sdg,
    /// T gate.
    T,
    /// T dagger.
    Tdg,
    /// Sqrt-X.
    Sx,
    /// X rotation.
    Rx(f64),
    /// Y rotation.
    Ry(f64),
    /// Z rotation.
    Rz(f64),
    /// Phase gate `diag(1, e^{i lambda})`.
    Phase(f64),
    /// Generic single-qubit gate (OpenQASM U3 convention).
    U3(f64, f64, f64),
    /// Arbitrary single-qubit unitary.
    Unitary1(Mat2),
    /// CNOT (control is the first qubit).
    Cx,
    /// Controlled-Z.
    Cz,
    /// SWAP.
    Swap,
    /// iSWAP.
    ISwap,
    /// Controlled phase.
    CPhase(f64),
    /// ZZ rotation `exp(-i theta/2 ZZ)`.
    Rzz(f64),
    /// Arbitrary two-qubit unitary.
    Unitary2(Box<Mat4>),
}

impl Gate {
    /// Number of qubits the gate acts on (1 or 2).
    pub fn arity(&self) -> usize {
        match self {
            Gate::H
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Sx
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::Phase(_)
            | Gate::U3(..)
            | Gate::Unitary1(_) => 1,
            _ => 2,
        }
    }

    /// The 2x2 matrix of a single-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics when called on a two-qubit gate.
    pub fn mat2(&self) -> Mat2 {
        match self {
            Gate::H => Mat2::h(),
            Gate::X => Mat2::x(),
            Gate::Y => Mat2::y(),
            Gate::Z => Mat2::z(),
            Gate::S => Mat2::s(),
            Gate::Sdg => Mat2::s().adjoint(),
            Gate::T => Mat2::t(),
            Gate::Tdg => Mat2::t().adjoint(),
            Gate::Sx => Mat2::sx(),
            Gate::Rx(t) => Mat2::rx(*t),
            Gate::Ry(t) => Mat2::ry(*t),
            Gate::Rz(t) => Mat2::rz(*t),
            Gate::Phase(l) => Mat2::phase(*l),
            Gate::U3(t, p, l) => Mat2::u3(*t, *p, *l),
            Gate::Unitary1(m) => *m,
            other => panic!("mat2 called on two-qubit gate {other}"), // lint: allow(no-panic) — documented arity contract
        }
    }

    /// The 4x4 matrix of a two-qubit gate (first qubit = high bit).
    ///
    /// # Panics
    ///
    /// Panics when called on a single-qubit gate.
    pub fn mat4(&self) -> Mat4 {
        match self {
            Gate::Cx => Mat4::cnot(),
            Gate::Cz => Mat4::cz(),
            Gate::Swap => Mat4::swap(),
            Gate::ISwap => Mat4::iswap(),
            Gate::CPhase(l) => Mat4::cphase(*l),
            Gate::Rzz(t) => Mat4::rzz(*t),
            Gate::Unitary2(m) => *m.clone(),
            other => panic!("mat4 called on single-qubit gate {other}"), // lint: allow(no-panic) — documented arity contract
        }
    }

    /// Returns true when the gate is symmetric under qubit exchange (so the
    /// router may flip its operands freely).
    pub fn is_symmetric(&self) -> bool {
        matches!(
            self,
            Gate::Cz | Gate::Swap | Gate::ISwap | Gate::CPhase(_) | Gate::Rzz(_)
        )
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::H => write!(f, "h"),
            Gate::X => write!(f, "x"),
            Gate::Y => write!(f, "y"),
            Gate::Z => write!(f, "z"),
            Gate::S => write!(f, "s"),
            Gate::Sdg => write!(f, "sdg"),
            Gate::T => write!(f, "t"),
            Gate::Tdg => write!(f, "tdg"),
            Gate::Sx => write!(f, "sx"),
            Gate::Rx(t) => write!(f, "rx({t:.4})"),
            Gate::Ry(t) => write!(f, "ry({t:.4})"),
            Gate::Rz(t) => write!(f, "rz({t:.4})"),
            Gate::Phase(l) => write!(f, "p({l:.4})"),
            Gate::U3(t, p, l) => write!(f, "u3({t:.4},{p:.4},{l:.4})"),
            Gate::Unitary1(_) => write!(f, "u1q"),
            Gate::Cx => write!(f, "cx"),
            Gate::Cz => write!(f, "cz"),
            Gate::Swap => write!(f, "swap"),
            Gate::ISwap => write!(f, "iswap"),
            Gate::CPhase(l) => write!(f, "cp({l:.4})"),
            Gate::Rzz(t) => write!(f, "rzz({t:.4})"),
            Gate::Unitary2(_) => write!(f, "u2q"),
        }
    }
}

/// A gate applied to specific qubits.
#[derive(Clone, Debug, PartialEq)]
pub struct Operation {
    /// The gate.
    pub gate: Gate,
    /// Operand qubits; length matches `gate.arity()`.
    pub qubits: Vec<usize>,
}

impl Operation {
    /// Creates an operation, validating arity.
    ///
    /// # Panics
    ///
    /// Panics when the qubit count does not match the gate arity or when
    /// a two-qubit gate addresses the same qubit twice.
    pub fn new(gate: Gate, qubits: Vec<usize>) -> Self {
        assert_eq!(gate.arity(), qubits.len(), "gate arity mismatch");
        if qubits.len() == 2 {
            assert_ne!(qubits[0], qubits[1], "two-qubit gate on a single qubit");
        }
        Operation { gate, qubits }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ", self.gate)?;
        let strs: Vec<String> = self.qubits.iter().map(|q| format!("q{q}")).collect();
        write!(f, "{}", strs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arities() {
        assert_eq!(Gate::H.arity(), 1);
        assert_eq!(Gate::Rz(0.3).arity(), 1);
        assert_eq!(Gate::Cx.arity(), 2);
        assert_eq!(Gate::CPhase(0.1).arity(), 2);
    }

    #[test]
    fn matrices_are_unitary() {
        let ones = [
            Gate::H,
            Gate::X,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Rx(0.3),
            Gate::U3(0.1, 0.2, 0.3),
        ];
        for g in ones {
            assert!(g.mat2().is_unitary(1e-12), "{g}");
        }
        let twos = [Gate::Cx, Gate::Cz, Gate::Swap, Gate::ISwap, Gate::Rzz(1.0)];
        for g in twos {
            assert!(g.mat4().is_unitary(1e-12), "{g}");
        }
    }

    #[test]
    fn sdg_is_s_inverse() {
        let p = Gate::S.mat2() * Gate::Sdg.mat2();
        assert!(p.approx_eq(&Mat2::identity(), 1e-12));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_validation() {
        let _ = Operation::new(Gate::Cx, vec![0]);
    }

    #[test]
    #[should_panic(expected = "single qubit")]
    fn distinct_qubits_validation() {
        let _ = Operation::new(Gate::Cx, vec![1, 1]);
    }
}
