//! The circuit container and common construction helpers.

use crate::gate::{Gate, Operation};
use std::fmt;

/// A quantum circuit: an ordered list of operations on `n` qubits.
///
/// # Examples
///
/// ```
/// use nsb_circuit::{Circuit, Gate};
/// let mut c = Circuit::new(2);
/// c.push(Gate::H, &[0]);
/// c.push(Gate::Cx, &[0, 1]);
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.two_qubit_count(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    ops: Vec<Operation>,
}

impl Circuit {
    /// Creates an empty circuit on `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            ops: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns true when the circuit has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations in order.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics when a qubit index is out of range or arity mismatches.
    pub fn push(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        for &q in qubits {
            assert!(q < self.n_qubits, "qubit {q} out of range");
        }
        self.ops.push(Operation::new(gate, qubits.to_vec()));
        self
    }

    /// Appends all operations of another circuit (qubit counts must match).
    ///
    /// # Panics
    ///
    /// Panics when the other circuit uses more qubits.
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert!(other.n_qubits <= self.n_qubits, "qubit count mismatch");
        self.ops.extend(other.ops.iter().cloned());
        self
    }

    /// Appends a Toffoli (CCX) expanded into the standard 6-CNOT network.
    pub fn ccx(&mut self, a: usize, b: usize, t: usize) -> &mut Self {
        self.push(Gate::H, &[t]);
        self.push(Gate::Cx, &[b, t]);
        self.push(Gate::Tdg, &[t]);
        self.push(Gate::Cx, &[a, t]);
        self.push(Gate::T, &[t]);
        self.push(Gate::Cx, &[b, t]);
        self.push(Gate::Tdg, &[t]);
        self.push(Gate::Cx, &[a, t]);
        self.push(Gate::T, &[b]);
        self.push(Gate::T, &[t]);
        self.push(Gate::H, &[t]);
        self.push(Gate::Cx, &[a, b]);
        self.push(Gate::T, &[a]);
        self.push(Gate::Tdg, &[b]);
        self.push(Gate::Cx, &[a, b]);
        self
    }

    /// Number of two-qubit operations.
    pub fn two_qubit_count(&self) -> usize {
        self.ops.iter().filter(|o| o.gate.arity() == 2).count()
    }

    /// Count of operations by display name (useful in tests and reports).
    pub fn count_by_name(&self, name: &str) -> usize {
        self.ops
            .iter()
            .filter(|o| o.gate.to_string().starts_with(name))
            .count()
    }

    /// Circuit depth: the length of the longest qubit-dependency chain.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.n_qubits];
        let mut max = 0;
        for op in &self.ops {
            let start = op.qubits.iter().map(|&q| level[q]).max().unwrap_or(0);
            for &q in &op.qubits {
                level[q] = start + 1;
            }
            max = max.max(start + 1);
        }
        max
    }

    /// Returns a copy with qubits relabeled through `map` (old -> new), on
    /// a register of `new_n` qubits.
    ///
    /// # Panics
    ///
    /// Panics when the map is too short or targets are out of range.
    pub fn remapped(&self, map: &[usize], new_n: usize) -> Circuit {
        let mut out = Circuit::new(new_n);
        for op in &self.ops {
            let qubits: Vec<usize> = op.qubits.iter().map(|&q| map[q]).collect();
            for &q in &qubits {
                assert!(q < new_n, "remap target {q} out of range");
            }
            out.ops.push(Operation::new(op.gate.clone(), qubits));
        }
        out
    }

    /// Greedy partition of the circuit into layers of operations acting on
    /// disjoint qubits (an as-soon-as-possible schedule by dependency).
    pub fn layers(&self) -> Vec<Vec<&Operation>> {
        let mut level_of_qubit = vec![0usize; self.n_qubits];
        let mut layers: Vec<Vec<&Operation>> = Vec::new();
        for op in &self.ops {
            let lvl = op
                .qubits
                .iter()
                .map(|&q| level_of_qubit[q])
                .max()
                .unwrap_or(0);
            if lvl >= layers.len() {
                layers.resize_with(lvl + 1, Vec::new);
            }
            layers[lvl].push(op);
            for &q in &op.qubits {
                level_of_qubit[q] = lvl + 1;
            }
        }
        layers
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit on {} qubits:", self.n_qubits)?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_computation() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::H, &[1]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::H, &[2]);
        assert_eq!(c.depth(), 2);
        assert_eq!(c.layers().len(), 2);
        assert_eq!(c.layers()[0].len(), 3);
    }

    #[test]
    fn remap_permutes_operands() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        let r = c.remapped(&[5, 2], 6);
        assert_eq!(r.ops()[0].qubits, vec![5, 2]);
        assert_eq!(r.n_qubits(), 6);
    }

    #[test]
    fn ccx_expansion_counts() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        assert_eq!(c.two_qubit_count(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut c = Circuit::new(1);
        c.push(Gate::H, &[3]);
    }
}
