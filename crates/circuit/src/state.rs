//! A dense statevector simulator, used to verify circuit identities and
//! compiled-circuit equivalence on small registers.

use crate::circuit::Circuit;
use crate::gate::Operation;
use nsb_math::Complex64;

/// A pure state of `n` qubits as a dense amplitude vector.
///
/// Qubit 0 is the most significant bit of the basis index (big-endian),
/// matching the `kron(first, second)` convention of `nsb-math`.
#[derive(Clone, Debug)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros computational basis state.
    pub fn zero(n_qubits: usize) -> Self {
        assert!(n_qubits <= 24, "statevector limited to 24 qubits");
        let mut amps = vec![Complex64::ZERO; 1 << n_qubits];
        amps[0] = Complex64::ONE;
        StateVector { n_qubits, amps }
    }

    /// A computational basis state given by `bits` (bit of qubit 0 first).
    pub fn basis(n_qubits: usize, index: usize) -> Self {
        let mut s = StateVector::zero(n_qubits);
        s.amps[0] = Complex64::ZERO;
        s.amps[index] = Complex64::ONE;
        s
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Amplitude slice.
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Applies a whole circuit in order.
    ///
    /// # Panics
    ///
    /// Panics when the circuit has more qubits than the state.
    pub fn apply_circuit(&mut self, c: &Circuit) {
        assert!(c.n_qubits() <= self.n_qubits);
        for op in c.ops() {
            self.apply(op);
        }
    }

    /// Applies a single operation.
    pub fn apply(&mut self, op: &Operation) {
        match op.qubits.len() {
            1 => self.apply_1q(op),
            2 => self.apply_2q(op),
            _ => unreachable!("operations are 1 or 2 qubits"),
        }
    }

    fn apply_1q(&mut self, op: &Operation) {
        let m = op.gate.mat2();
        let q = op.qubits[0];
        let bit = 1usize << (self.n_qubits - 1 - q);
        let n = self.amps.len();
        let mut i = 0;
        while i < n {
            if i & bit == 0 {
                let j = i | bit;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = m.at(0, 0) * a0 + m.at(0, 1) * a1;
                self.amps[j] = m.at(1, 0) * a0 + m.at(1, 1) * a1;
            }
            i += 1;
        }
    }

    fn apply_2q(&mut self, op: &Operation) {
        let m = op.gate.mat4();
        let (q0, q1) = (op.qubits[0], op.qubits[1]);
        let b0 = 1usize << (self.n_qubits - 1 - q0);
        let b1 = 1usize << (self.n_qubits - 1 - q1);
        let n = self.amps.len();
        for i in 0..n {
            if i & b0 == 0 && i & b1 == 0 {
                let idx = [i, i | b1, i | b0, i | b0 | b1];
                let old = [
                    self.amps[idx[0]],
                    self.amps[idx[1]],
                    self.amps[idx[2]],
                    self.amps[idx[3]],
                ];
                for (r, &dst) in idx.iter().enumerate() {
                    let mut acc = Complex64::ZERO;
                    for (c, &amp) in old.iter().enumerate() {
                        acc += m.at(r, c) * amp;
                    }
                    self.amps[dst] = acc;
                }
            }
        }
    }

    /// Probability of measuring basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Index of the most probable basis state.
    pub fn most_probable(&self) -> usize {
        let mut best = (0usize, -1.0f64);
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if p > best.1 {
                best = (i, p);
            }
        }
        best.0
    }

    /// Fidelity `|<self|other>|^2` between two states.
    ///
    /// # Panics
    ///
    /// Panics when dimensions differ.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.amps.len(), other.amps.len());
        let ov: Complex64 = self
            .amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum();
        ov.norm_sqr()
    }

    /// Overlap `|<self|other>|` ignoring a global phase, robust comparison
    /// for circuit equivalence tests.
    pub fn overlap(&self, other: &StateVector) -> f64 {
        self.fidelity(other).sqrt()
    }

    /// L2 norm of the state (should be 1 for unitary circuits).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }
}

/// Checks that two circuits implement the same unitary up to global phase,
/// by comparing their action on a deterministic set of random-ish product
/// states plus a handful of basis states.
pub fn circuits_equivalent(a: &Circuit, b: &Circuit, tol: f64) -> bool {
    assert_eq!(a.n_qubits(), b.n_qubits());
    let n = a.n_qubits();
    // Basis states probe the permutation structure; superposition states
    // probe relative phases.
    let mut indices: Vec<usize> = (0..(1usize << n).min(4)).collect();
    indices.push((1 << n) - 1);
    for &idx in &indices {
        let mut sa = StateVector::basis(n, idx);
        let mut sb = StateVector::basis(n, idx);
        sa.apply_circuit(a);
        sb.apply_circuit(b);
        // Compare up to a per-state phase is not enough (global phase must
        // be consistent across states), so compare overlap per state and
        // cross-check one superposition below.
        if (sa.overlap(&sb) - 1.0).abs() > tol {
            return false;
        }
    }
    // Superposition probe: H on every qubit first.
    let mut sa = StateVector::zero(n);
    let mut sb = StateVector::zero(n);
    let mut h_all = Circuit::new(n);
    for q in 0..n {
        h_all.push(crate::gate::Gate::H, &[q]);
    }
    sa.apply_circuit(&h_all);
    sb.apply_circuit(&h_all);
    sa.apply_circuit(a);
    sb.apply_circuit(b);
    (sa.overlap(&sb) - 1.0).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        let mut s = StateVector::zero(2);
        s.apply_circuit(&c);
        assert!((s.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((s.probability(0b11) - 0.5).abs() < 1e-12);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_gate_swaps() {
        let mut c = Circuit::new(2);
        c.push(Gate::Swap, &[0, 1]);
        let mut s = StateVector::basis(2, 0b10); // qubit0 = 1
        s.apply_circuit(&c);
        assert!((s.probability(0b01) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cx_direction_matters() {
        let mut c01 = Circuit::new(2);
        c01.push(Gate::Cx, &[0, 1]);
        let mut s = StateVector::basis(2, 0b10);
        s.apply_circuit(&c01);
        assert!((s.probability(0b11) - 1.0).abs() < 1e-12);
        let mut c10 = Circuit::new(2);
        c10.push(Gate::Cx, &[1, 0]);
        let mut s = StateVector::basis(2, 0b10);
        s.apply_circuit(&c10);
        assert!((s.probability(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn equivalence_checker_accepts_cz_symmetry() {
        let mut a = Circuit::new(2);
        a.push(Gate::Cz, &[0, 1]);
        let mut b = Circuit::new(2);
        b.push(Gate::Cz, &[1, 0]);
        assert!(circuits_equivalent(&a, &b, 1e-9));
    }

    #[test]
    fn equivalence_checker_rejects_different() {
        let mut a = Circuit::new(2);
        a.push(Gate::Cx, &[0, 1]);
        let mut b = Circuit::new(2);
        b.push(Gate::Cx, &[1, 0]);
        assert!(!circuits_equivalent(&a, &b, 1e-9));
    }

    #[test]
    fn ccx_expansion_is_toffoli() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        for (input, expect) in [
            (0b000, 0b000),
            (0b010, 0b010),
            (0b100, 0b100),
            (0b110, 0b111),
            (0b111, 0b110),
        ] {
            let mut s = StateVector::basis(3, input);
            s.apply_circuit(&c);
            assert!(
                (s.probability(expect) - 1.0).abs() < 1e-9,
                "input {input:03b} gave {:03b}",
                s.most_probable()
            );
        }
    }
}
