//! Synthesis-capability regions in the Weyl chamber (paper Section V and
//! Figure 4).
//!
//! The sets of basis-gate classes able to synthesize SWAP in three layers
//! (`S_SWAP,3`) and CNOT in two layers (`S_CNOT,2`) are characterized by
//! their complements, which are unions of explicit tetrahedra. The
//! complement volumes reproduce the paper's numbers: `S_SWAP,3` covers
//! 68.5% of the chamber and `S_CNOT,2` covers 75%.

use crate::coord::dist_to_segment;
use crate::{entangling_power, WeylCoord};
use rand::Rng;

/// A tetrahedron in Cartan-coordinate space, stored by its four vertices.
#[derive(Clone, Copy, Debug)]
pub struct Tetrahedron {
    /// The four vertices.
    pub vertices: [WeylCoord; 4],
}

impl Tetrahedron {
    /// Creates a tetrahedron from four vertices.
    pub const fn new(vertices: [WeylCoord; 4]) -> Self {
        Tetrahedron { vertices }
    }

    /// Signed volume of the tetrahedron.
    pub fn volume(&self) -> f64 {
        let [a, b, c, d] = self.vertices;
        let u = [b.x - a.x, b.y - a.y, b.z - a.z];
        let v = [c.x - a.x, c.y - a.y, c.z - a.z];
        let w = [d.x - a.x, d.y - a.y, d.z - a.z];
        let cross = [
            v[1] * w[2] - v[2] * w[1],
            v[2] * w[0] - v[0] * w[2],
            v[0] * w[1] - v[1] * w[0],
        ];
        (u[0] * cross[0] + u[1] * cross[1] + u[2] * cross[2]).abs() / 6.0
    }

    /// Barycentric coordinates of `p` with respect to the four vertices
    /// (they sum to 1). Returns `None` for a degenerate tetrahedron.
    pub fn barycentric(&self, p: WeylCoord) -> Option<[f64; 4]> {
        let [a, b, c, d] = self.vertices;
        // Solve [b-a, c-a, d-a] w = p - a for barycentric w (3x3 Cramer).
        let m = [
            [b.x - a.x, c.x - a.x, d.x - a.x],
            [b.y - a.y, c.y - a.y, d.y - a.y],
            [b.z - a.z, c.z - a.z, d.z - a.z],
        ];
        let rhs = [p.x - a.x, p.y - a.y, p.z - a.z];
        let det3 = |m: &[[f64; 3]; 3]| -> f64 {
            m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
                - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
                + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
        };
        let det = det3(&m);
        if det.abs() < 1e-15 {
            return None;
        }
        let mut w = [0.0f64; 3];
        for k in 0..3 {
            let mut mk = m;
            for r in 0..3 {
                mk[r][k] = rhs[r];
            }
            w[k] = det3(&mk) / det;
        }
        Some([1.0 - w[0] - w[1] - w[2], w[0], w[1], w[2]])
    }

    /// Tests whether `p` lies strictly inside the tetrahedron: all
    /// barycentric weights exceed `eps`.
    pub fn contains(&self, p: WeylCoord, eps: f64) -> bool {
        match self.barycentric(p) {
            Some(w) => w.iter().all(|&v| v > eps),
            None => false,
        }
    }

    /// Tests whether `p` lies inside the *closed* tetrahedron within `eps`.
    pub fn contains_closed(&self, p: WeylCoord, eps: f64) -> bool {
        match self.barycentric(p) {
            Some(w) => w.iter().all(|&v| v >= -eps),
            None => false,
        }
    }
}

/// A complement tetrahedron together with its "apex" vertex index.
///
/// The complements of the synthesis-capability regions are closed solids,
/// *except* on the exit face opposite the apex (the face the paper uses to
/// locate the fastest usable gate): a trajectory point lying exactly on the
/// exit face already counts as able. For the bottom tetrahedra the apex is
/// the identity vertex; for the top ones it is SWAP.
#[derive(Clone, Copy, Debug)]
pub struct ComplementTet {
    /// The tetrahedron.
    pub tet: Tetrahedron,
    /// Index of the apex vertex (exit face is the face opposite it).
    pub apex: usize,
}

impl ComplementTet {
    /// Returns true when `p` is in the complement (NOT able): inside the
    /// closed tetrahedron but not on the exit face.
    pub fn excludes(&self, p: WeylCoord) -> bool {
        const EPS: f64 = 1e-9;
        match self.tet.barycentric(p) {
            Some(w) => w.iter().all(|&v| v >= -EPS) && w[self.apex] > EPS,
            None => false,
        }
    }
}

/// The four tetrahedra forming the complement of `S_SWAP,3` (gates NOT able
/// to synthesize SWAP in three layers), from Figure 4(d). Apexes: the
/// identity vertices for the bottom pair, SWAP for the top pair.
pub fn swap3_complement() -> [ComplementTet; 4] {
    let f = |x: f64, y: f64, z: f64| WeylCoord::new(x, y, z);
    [
        ComplementTet {
            tet: Tetrahedron::new([
                WeylCoord::IDENTITY,
                WeylCoord::CNOT,
                f(0.25, 0.25, 0.0),
                f(1.0 / 6.0, 1.0 / 6.0, 1.0 / 6.0),
            ]),
            apex: 0,
        },
        ComplementTet {
            tet: Tetrahedron::new([
                WeylCoord::IDENTITY_1,
                WeylCoord::CNOT,
                f(0.75, 0.25, 0.0),
                f(5.0 / 6.0, 1.0 / 6.0, 1.0 / 6.0),
            ]),
            apex: 0,
        },
        ComplementTet {
            tet: Tetrahedron::new([
                WeylCoord::SWAP,
                f(0.5, 1.0 / 6.0, 1.0 / 6.0),
                f(1.0 / 6.0, 1.0 / 6.0, 1.0 / 6.0),
                f(1.0 / 3.0, 1.0 / 3.0, 1.0 / 6.0),
            ]),
            apex: 0,
        },
        ComplementTet {
            tet: Tetrahedron::new([
                WeylCoord::SWAP,
                f(0.5, 1.0 / 6.0, 1.0 / 6.0),
                f(5.0 / 6.0, 1.0 / 6.0, 1.0 / 6.0),
                f(2.0 / 3.0, 1.0 / 3.0, 1.0 / 6.0),
            ]),
            apex: 0,
        },
    ]
}

/// The three tetrahedra forming the complement of `S_CNOT,2` (gates NOT
/// able to synthesize CNOT in two layers), from Figure 4(e).
///
/// The paper's caption lists a vertex "(1/4, 1/4, 1/4)" for the first
/// tetrahedron which duplicates the sqrt(SWAP) vertex; the geometrically
/// consistent vertex — confirmed by the quoted 75% volume — is
/// `(1/4, 1/4, 0)`, which we use (and mirror for the second tetrahedron).
pub fn cnot2_complement() -> [ComplementTet; 3] {
    let f = |x: f64, y: f64, z: f64| WeylCoord::new(x, y, z);
    [
        ComplementTet {
            tet: Tetrahedron::new([
                WeylCoord::IDENTITY,
                f(0.25, 0.0, 0.0),
                f(0.25, 0.25, 0.0),
                WeylCoord::SQRT_SWAP,
            ]),
            apex: 0,
        },
        ComplementTet {
            tet: Tetrahedron::new([
                WeylCoord::IDENTITY_1,
                f(0.75, 0.0, 0.0),
                f(0.75, 0.25, 0.0),
                WeylCoord::SQRT_SWAP_DAG,
            ]),
            apex: 0,
        },
        ComplementTet {
            tet: Tetrahedron::new([
                WeylCoord::SWAP,
                WeylCoord::SQRT_SWAP,
                WeylCoord::SQRT_SWAP_DAG,
                f(0.5, 0.5, 0.25),
            ]),
            apex: 0,
        },
    ]
}

/// Tests whether a gate class can synthesize SWAP in one layer (it must be
/// the SWAP class itself).
pub fn can_swap_in_1(c: WeylCoord, tol: f64) -> bool {
    c.canonicalize().dist(WeylCoord::SWAP) <= tol
}

/// Tests whether a gate class can synthesize SWAP in two layers *using two
/// copies of itself*: it must lie on the self-mirror segments L0
/// (B gate to sqrt(SWAP)) or L1 (B gate to sqrt(SWAP)^dagger).
pub fn can_swap_in_2_self(c: WeylCoord, tol: f64) -> bool {
    let p = c.canonicalize();
    let l0 = dist_to_segment(p, WeylCoord::B_GATE, WeylCoord::SQRT_SWAP);
    // L1 lives on the x >= 1/2 side; compare against the mirrored image too
    // because canonicalization folds bottom-face points to x <= 1/2.
    let b1 = WeylCoord::new(0.5, 0.25, 0.0);
    let l1 = dist_to_segment(p, b1, WeylCoord::SQRT_SWAP_DAG);
    l0 <= tol || l1 <= tol
}

/// Tests whether a pair of (possibly different) gate classes can synthesize
/// SWAP in two layers: they must be mirror partners (Appendix B).
pub fn can_swap_in_2_pair(b: WeylCoord, c: WeylCoord, tol: f64) -> bool {
    b.mirror().class_eq(c, tol)
}

/// Tests whether a gate class can synthesize SWAP in three layers
/// (membership in `S_SWAP,3`): inside the chamber and outside all four
/// complement tetrahedra.
///
/// # Examples
///
/// ```
/// use nsb_weyl::{can_swap_in_3, WeylCoord};
/// assert!(can_swap_in_3(WeylCoord::CNOT));
/// assert!(can_swap_in_3(WeylCoord::SQRT_ISWAP)); // on the boundary face
/// assert!(!can_swap_in_3(WeylCoord::new(0.1, 0.05, 0.0)));
/// ```
pub fn can_swap_in_3(c: WeylCoord) -> bool {
    let p = c.canonicalize();
    !swap3_complement().iter().any(|t| t.excludes(p))
}

/// Tests whether a gate class can synthesize CNOT in two layers
/// (membership in `S_CNOT,2`).
pub fn can_cnot_in_2(c: WeylCoord) -> bool {
    let p = c.canonicalize();
    !cnot2_complement().iter().any(|t| t.excludes(p))
}

/// Minimum number of layers of this basis gate needed to synthesize SWAP,
/// or `None` when more than three layers are required.
pub fn min_layers_for_swap(c: WeylCoord) -> Option<u32> {
    if can_swap_in_1(c, 1e-9) {
        Some(1)
    } else if can_swap_in_2_self(c, 1e-9) {
        Some(2)
    } else if can_swap_in_3(c) {
        Some(3)
    } else {
        None
    }
}

/// The selection criteria for picking a basis gate off a trajectory
/// (paper Section V-E).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SelectionCriterion {
    /// Criterion 1: the fastest gate able to synthesize SWAP in 3 layers.
    SwapIn3,
    /// Criterion 2: the fastest gate able to synthesize SWAP in 3 layers
    /// AND CNOT in 2 layers.
    SwapIn3CnotIn2,
    /// The fastest perfect entangler that also synthesizes SWAP in 3 layers
    /// (mentioned as an alternative criterion in Section V-E).
    PerfectEntanglerSwapIn3,
}

impl SelectionCriterion {
    /// Evaluates the criterion's predicate on a coordinate.
    pub fn accepts(self, c: WeylCoord) -> bool {
        match self {
            SelectionCriterion::SwapIn3 => can_swap_in_3(c),
            SelectionCriterion::SwapIn3CnotIn2 => can_swap_in_3(c) && can_cnot_in_2(c),
            SelectionCriterion::PerfectEntanglerSwapIn3 => {
                can_swap_in_3(c) && crate::is_perfect_entangler(c, 1e-9)
            }
        }
    }
}

/// Volume of the Weyl chamber tetrahedron (1/24).
pub fn chamber_volume() -> f64 {
    Tetrahedron::new([
        WeylCoord::IDENTITY,
        WeylCoord::IDENTITY_1,
        WeylCoord::ISWAP,
        WeylCoord::SWAP,
    ])
    .volume()
}

/// Draws a point uniformly from the Weyl chamber by rejection sampling.
pub fn sample_chamber<R: Rng + ?Sized>(rng: &mut R) -> WeylCoord {
    loop {
        let x = rng.gen::<f64>();
        let y = rng.gen::<f64>() * 0.5;
        let z = rng.gen::<f64>() * 0.5;
        let p = WeylCoord::new(x, y, z);
        if p.in_chamber(0.0) && p.z <= p.y && p.y <= p.x.min(1.0 - p.x) + 0.5 {
            // The quick pre-filter above keeps rejection cheap; the real
            // test is in_chamber.
            if y <= x && x + y <= 1.0 && z <= y {
                return p;
            }
        }
    }
}

/// Monte-Carlo estimate of the chamber volume fraction satisfying `pred`.
pub fn volume_fraction<R: Rng + ?Sized>(
    pred: impl Fn(WeylCoord) -> bool,
    samples: u32,
    rng: &mut R,
) -> f64 {
    let mut hits = 0u32;
    for _ in 0..samples {
        if pred(sample_chamber(rng)) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

/// Finds the first index in a coordinate sequence (a Cartan trajectory
/// sampled in time order) that satisfies the selection criterion, requiring
/// a minimum entangling power to skip spurious early points.
pub fn first_crossing(
    coords: &[WeylCoord],
    criterion: SelectionCriterion,
    min_entangling_power: f64,
) -> Option<usize> {
    coords
        .iter()
        .position(|&c| criterion.accepts(c) && entangling_power(c) >= min_entangling_power)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complement_volumes_match_paper() {
        let chamber = chamber_volume();
        assert!((chamber - 1.0 / 24.0).abs() < 1e-12);
        let swap3: f64 = swap3_complement().iter().map(|t| t.tet.volume()).sum();
        // 2/288 + 2/324 = 0.0131173...; fraction 31.48%.
        assert!(
            ((swap3 / chamber) - 0.31481).abs() < 1e-4,
            "{}",
            swap3 / chamber
        );
        let cnot2: f64 = cnot2_complement().iter().map(|t| t.tet.volume()).sum();
        assert!(
            ((cnot2 / chamber) - 0.25).abs() < 1e-9,
            "{}",
            cnot2 / chamber
        );
    }

    #[test]
    fn monte_carlo_volumes_match_paper() {
        let mut rng = StdRng::seed_from_u64(99);
        let s3 = volume_fraction(can_swap_in_3, 40_000, &mut rng);
        assert!((s3 - 0.685).abs() < 0.01, "S_SWAP,3 fraction {s3}");
        let c2 = volume_fraction(can_cnot_in_2, 40_000, &mut rng);
        assert!((c2 - 0.75).abs() < 0.01, "S_CNOT,2 fraction {c2}");
        let pe = volume_fraction(|p| crate::is_perfect_entangler(p, 0.0), 40_000, &mut rng);
        assert!((pe - 0.5).abs() < 0.01, "PE fraction {pe}");
    }

    #[test]
    fn known_gates_swap_layers() {
        assert_eq!(min_layers_for_swap(WeylCoord::SWAP), Some(1));
        assert_eq!(min_layers_for_swap(WeylCoord::B_GATE), Some(2));
        assert_eq!(min_layers_for_swap(WeylCoord::SQRT_SWAP), Some(2));
        assert_eq!(min_layers_for_swap(WeylCoord::CNOT), Some(3));
        assert_eq!(min_layers_for_swap(WeylCoord::ISWAP), Some(3));
        assert_eq!(min_layers_for_swap(WeylCoord::SQRT_ISWAP), Some(3));
        assert_eq!(min_layers_for_swap(WeylCoord::new(0.05, 0.02, 0.01)), None);
    }

    #[test]
    fn cnot_two_layer_anchors() {
        assert!(can_cnot_in_2(WeylCoord::SQRT_ISWAP));
        assert!(can_cnot_in_2(WeylCoord::CNOT));
        assert!(can_cnot_in_2(WeylCoord::B_GATE));
        assert!(!can_cnot_in_2(WeylCoord::new(0.1, 0.05, 0.02)));
        // Near-SWAP gates cannot do CNOT in 2 layers.
        assert!(!can_cnot_in_2(WeylCoord::new(0.5, 0.45, 0.4)));
    }

    #[test]
    fn mirror_pair_synthesis() {
        assert!(can_swap_in_2_pair(WeylCoord::CNOT, WeylCoord::ISWAP, 1e-9));
        assert!(!can_swap_in_2_pair(WeylCoord::CNOT, WeylCoord::CNOT, 1e-6));
        assert!(can_swap_in_2_pair(
            WeylCoord::B_GATE,
            WeylCoord::B_GATE,
            1e-9
        ));
    }

    #[test]
    fn criterion_predicates() {
        // sqrt(iSWAP) satisfies both criteria (it is on the boundary faces).
        assert!(SelectionCriterion::SwapIn3.accepts(WeylCoord::SQRT_ISWAP));
        assert!(SelectionCriterion::SwapIn3CnotIn2.accepts(WeylCoord::SQRT_ISWAP));
        // A near-SWAP point: able to synthesize SWAP in 3 layers but not
        // CNOT in 2 layers (inside the top CNOT-complement tetrahedron).
        let p = WeylCoord::new(0.5, 0.5, 0.3);
        assert!(SelectionCriterion::SwapIn3.accepts(p));
        assert!(!SelectionCriterion::SwapIn3CnotIn2.accepts(p));
        // A point before the x + y = 1/2 face fails both criteria.
        let q = WeylCoord::new(0.26, 0.22, 0.0);
        assert!(!SelectionCriterion::SwapIn3.accepts(q));
        assert!(!SelectionCriterion::SwapIn3CnotIn2.accepts(q));
    }

    #[test]
    fn first_crossing_on_xy_trajectory() {
        // Idealized XY trajectory from I toward iSWAP: (t/2, t/2, 0).
        let coords: Vec<WeylCoord> = (0..=100)
            .map(|k| {
                let t = k as f64 / 100.0;
                WeylCoord::new(t / 2.0, t / 2.0, 0.0)
            })
            .collect();
        let i1 = first_crossing(&coords, SelectionCriterion::SwapIn3, 0.0).unwrap();
        // Crossing of the x + y = 1/2 face happens at t = 1/2 (sqrt-iSWAP).
        assert_eq!(i1, 50);
        let i2 = first_crossing(&coords, SelectionCriterion::SwapIn3CnotIn2, 0.0).unwrap();
        assert_eq!(i2, 50);
    }

    #[test]
    fn sample_chamber_stays_inside() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(sample_chamber(&mut rng).in_chamber(0.0));
        }
    }
}
