//! Entangling power and the perfect-entangler polyhedron.

use crate::WeylCoord;

/// Entangling power of a two-qubit gate, as a function of its Cartan
/// coordinates (Zanardi-Zalka-Faoro): values lie in `[0, 2/9]`.
///
/// `ep = (2/9) (1 - cx^2 cy^2 cz^2 - sx^2 sy^2 sz^2)` with
/// `c = cos(pi t)`, `s = sin(pi t)`.
///
/// # Examples
///
/// ```
/// use nsb_weyl::{entangling_power, WeylCoord};
/// assert!(entangling_power(WeylCoord::IDENTITY).abs() < 1e-12);
/// assert!((entangling_power(WeylCoord::CNOT) - 2.0 / 9.0).abs() < 1e-12);
/// assert!(entangling_power(WeylCoord::SWAP).abs() < 1e-12);
/// ```
pub fn entangling_power(c: WeylCoord) -> f64 {
    let pi = std::f64::consts::PI;
    let (cx, sx) = ((pi * c.x).cos(), (pi * c.x).sin());
    let (cy, sy) = ((pi * c.y).cos(), (pi * c.y).sin());
    let (cz, sz) = ((pi * c.z).cos(), (pi * c.z).sin());
    let cprod = cx * cx * cy * cy * cz * cz;
    let sprod = sx * sx * sy * sy * sz * sz;
    (2.0 / 9.0) * (1.0 - cprod - sprod)
}

/// Tests whether a gate class is a *perfect entangler*: able to produce a
/// maximally entangled state from a product state.
///
/// Perfect entanglers form a polyhedron occupying exactly half the Weyl
/// chamber, with vertices CNOT, iSWAP, sqrt(SWAP), sqrt(SWAP)^dagger and
/// the two copies of sqrt(iSWAP). Inside the chamber the membership test
/// reduces to three half-space conditions.
pub fn is_perfect_entangler(c: WeylCoord, tol: f64) -> bool {
    let p = c.canonicalize();
    // The canonical representative may sit on either side of x = 1/2 for
    // z = 0 points; the conditions below are symmetric under the bottom-face
    // identification x -> 1 - x only partially, so test both images.
    let test = |q: WeylCoord| -> bool {
        q.x + q.y >= 0.5 - tol && q.x - q.y <= 0.5 + tol && q.y + q.z <= 0.5 + tol
    };
    if test(p) {
        return true;
    }
    let mirror_image = WeylCoord::new(1.0 - p.x, p.y, p.z);
    p.z.abs() <= tol && mirror_image.in_chamber(tol) && test(mirror_image)
}

/// Tests whether a gate class is a *special perfect entangler* (entangling
/// power exactly `2/9`): these lie on the segment from CNOT to iSWAP.
pub fn is_special_perfect_entangler(c: WeylCoord, tol: f64) -> bool {
    (entangling_power(c) - 2.0 / 9.0).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entangling_power_anchors() {
        assert!((entangling_power(WeylCoord::SQRT_ISWAP) - 1.0 / 6.0).abs() < 1e-12);
        assert!((entangling_power(WeylCoord::SQRT_SWAP) - 1.0 / 6.0).abs() < 1e-12);
        assert!((entangling_power(WeylCoord::B_GATE) - 2.0 / 9.0).abs() < 1e-12);
        assert!((entangling_power(WeylCoord::ISWAP) - 2.0 / 9.0).abs() < 1e-12);
        assert!(entangling_power(WeylCoord::IDENTITY_1).abs() < 1e-12);
    }

    #[test]
    fn perfect_entangler_vertices_and_interior() {
        for v in [
            WeylCoord::CNOT,
            WeylCoord::ISWAP,
            WeylCoord::SQRT_SWAP,
            WeylCoord::SQRT_SWAP_DAG,
            WeylCoord::SQRT_ISWAP,
            WeylCoord::SQRT_ISWAP_MIRROR,
            WeylCoord::B_GATE,
        ] {
            assert!(is_perfect_entangler(v, 1e-9), "{v}");
        }
        for v in [
            WeylCoord::IDENTITY,
            WeylCoord::IDENTITY_1,
            WeylCoord::SWAP,
            WeylCoord::new(0.1, 0.05, 0.0),
            WeylCoord::new(0.45, 0.45, 0.45),
        ] {
            assert!(!is_perfect_entangler(v, 1e-9), "{v}");
        }
    }

    #[test]
    fn special_perfect_entanglers_on_cnot_iswap_segment() {
        for k in 0..=10 {
            let t = k as f64 / 10.0;
            let p = WeylCoord::new(0.5, 0.5 * t, 0.0);
            assert!(is_special_perfect_entangler(p, 1e-9), "{p}");
        }
        assert!(!is_special_perfect_entangler(WeylCoord::SQRT_ISWAP, 1e-6));
    }

    #[test]
    fn perfect_entanglers_have_ep_at_least_one_sixth() {
        // Grid scan over the chamber.
        let n = 24;
        for i in 0..=n {
            for j in 0..=n / 2 {
                for k in 0..=n / 2 {
                    let p = WeylCoord::new(
                        i as f64 / n as f64,
                        j as f64 / n as f64,
                        k as f64 / n as f64,
                    );
                    if !p.in_chamber(0.0) {
                        continue;
                    }
                    if is_perfect_entangler(p, -1e-9) {
                        assert!(
                            entangling_power(p) >= 1.0 / 6.0 - 1e-9,
                            "{p} ep={}",
                            entangling_power(p)
                        );
                    }
                }
            }
        }
    }
}
