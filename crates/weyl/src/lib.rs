//! # nsb-weyl
//!
//! Weyl-chamber geometry of two-qubit gates, the theoretical core of the
//! MICRO 2022 paper *Let Each Quantum Bit Choose Its Basis Gates*.
//!
//! Provides:
//!
//! * [`WeylCoord`] — Cartan coordinates with canonicalization into the
//!   chamber tetrahedron (`CNOT = (1/2,0,0)`, `SWAP = (1/2,1/2,1/2)`).
//! * [`kak_vector`] — coordinates of an arbitrary 4x4 unitary via the magic
//!   basis; [`local_invariants`] — Makhlin invariants.
//! * [`entangling_power`], [`is_perfect_entangler`] — entanglement metrics.
//! * [`WeylCoord::mirror`] — the Appendix-B mirror construction for 2-layer
//!   SWAP synthesis.
//! * [`can_swap_in_3`], [`can_cnot_in_2`], [`SelectionCriterion`] — the
//!   Figure-4 region geometry used to select basis gates from trajectories.
//!
//! ## Example: selecting a basis gate from a trajectory
//!
//! ```
//! use nsb_weyl::{first_crossing, SelectionCriterion, WeylCoord};
//!
//! // An idealized XY trajectory sampled at 100 points.
//! let coords: Vec<WeylCoord> = (0..=100)
//!     .map(|k| WeylCoord::new(k as f64 / 200.0, k as f64 / 200.0, 0.0))
//!     .collect();
//! let idx = first_crossing(&coords, SelectionCriterion::SwapIn3, 0.0).unwrap();
//! assert_eq!(idx, 50); // the sqrt(iSWAP) point
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coord;
mod entangle;
mod kak;
mod regions;

pub use coord::{dist_to_segment, WeylCoord, COORD_EPS};
pub use entangle::{entangling_power, is_perfect_entangler, is_special_perfect_entangler};
pub use kak::{canonical_gate, kak_vector, local_invariants, locally_equivalent, magic_basis};
pub use regions::{
    can_cnot_in_2, can_swap_in_1, can_swap_in_2_pair, can_swap_in_2_self, can_swap_in_3,
    chamber_volume, cnot2_complement, first_crossing, min_layers_for_swap, sample_chamber,
    swap3_complement, volume_fraction, ComplementTet, SelectionCriterion, Tetrahedron,
};
