//! Cartan coordinate extraction (the "KAK vector") and Makhlin local
//! invariants.
//!
//! The algorithm works in the magic (Bell) basis, where local gates become
//! real orthogonal matrices and the canonical gate becomes diagonal. For
//! `U = k1 A(x,y,z) k2`, the matrix `m = M^T M` with `M = B^dag U B` has
//! spectrum `{exp(-i pi (x,y,z) . d_j)}` for four fixed sign patterns `d_j`;
//! we recover `(x, y, z)` by enumerating eigenvalue assignments and branch
//! offsets and solving the small least-squares system, then canonicalize.

use crate::WeylCoord;
use nsb_math::{eigh, Complex64, DMat, Mat4};

/// The magic-basis change matrix `B` (columns are phased Bell states).
pub fn magic_basis() -> Mat4 {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let r = Complex64::real(s);
    let i = Complex64::imag(s);
    let o = Complex64::ZERO;
    Mat4::from_rows([[r, o, o, i], [o, i, r, o], [o, i, -r, o], [r, o, o, -i]])
}

/// Sign patterns of XX, YY, ZZ on the magic-basis diagonal: row `j` is
/// `(d_x[j], d_y[j], d_z[j])`.
const D: [[f64; 3]; 4] = [
    [1.0, -1.0, 1.0],
    [1.0, 1.0, -1.0],
    [-1.0, -1.0, -1.0],
    [-1.0, 1.0, 1.0],
];

/// Makhlin-style local invariants `(g1, g2, g3)` of a two-qubit gate.
///
/// Two gates are locally equivalent iff their invariant triples agree.
/// `g1 + i g2 = tr^2(m) / (16 det U)` and
/// `g3 = (tr^2(m) - tr(m^2)) / (4 det U)` with `m = M^T M` in the magic
/// basis.
///
/// # Examples
///
/// ```
/// use nsb_weyl::local_invariants;
/// use nsb_math::Mat4;
/// let (g1, g2, g3) = local_invariants(&Mat4::cnot());
/// assert!((g1 - 0.0).abs() < 1e-12 && g2.abs() < 1e-12 && (g3 - 1.0).abs() < 1e-12);
/// ```
pub fn local_invariants(u: &Mat4) -> (f64, f64, f64) {
    let b = magic_basis();
    let m_big = b.adjoint() * *u * b;
    let m = m_big.transpose() * m_big;
    let det = u.det();
    let tr = m.trace();
    let tr2 = tr * tr;
    let m2 = m * m;
    let g12 = tr2 * det.inv() / 16.0;
    let g3 = (tr2 - m2.trace()) * det.inv() / 4.0;
    (g12.re, g12.im, g3.re)
}

/// Tests local equivalence of two gates by comparing invariants.
pub fn locally_equivalent(u: &Mat4, v: &Mat4, tol: f64) -> bool {
    let a = local_invariants(u);
    let b = local_invariants(v);
    (a.0 - b.0).abs() <= tol && (a.1 - b.1).abs() <= tol && (a.2 - b.2).abs() <= tol
}

/// Computes the canonical Cartan coordinates of a two-qubit unitary.
///
/// The result lies inside the Weyl chamber (see [`WeylCoord`]).
///
/// # Panics
///
/// Panics when `u` is not unitary within `1e-6`, or when no consistent
/// eigenvalue assignment is found (which indicates a non-unitary input).
///
/// # Examples
///
/// ```
/// use nsb_weyl::{kak_vector, WeylCoord};
/// use nsb_math::Mat4;
/// let c = kak_vector(&Mat4::cnot());
/// assert!(c.dist(WeylCoord::CNOT) < 1e-9);
/// ```
pub fn kak_vector(u: &Mat4) -> WeylCoord {
    assert!(u.is_unitary(1e-6), "kak_vector requires a unitary input");
    let (su, _alpha) = u.to_su4();
    let b = magic_basis();
    let m_big = b.adjoint() * su * b;
    let m = m_big.transpose() * m_big;
    let lambdas = symmetric_unitary_eigenvalues(&m);
    let phis: Vec<f64> = lambdas.iter().map(|l| l.arg()).collect();
    coords_from_eigenphases(&phis)
        // lint: allow(no-expect) — assignment search is exhaustive over a finite set that provably contains a solution
        .expect("kak_vector: no consistent eigenvalue assignment")
        .canonicalize()
}

/// Solves for coordinates given the four eigenphases of `m` (in any order),
/// by enumerating assignments to the sign patterns `D` and 2-pi branch
/// offsets, accepting the first assignment whose residuals vanish.
fn coords_from_eigenphases(phis: &[f64]) -> Option<WeylCoord> {
    const PERMS: [[usize; 4]; 24] = [
        [0, 1, 2, 3],
        [0, 1, 3, 2],
        [0, 2, 1, 3],
        [0, 2, 3, 1],
        [0, 3, 1, 2],
        [0, 3, 2, 1],
        [1, 0, 2, 3],
        [1, 0, 3, 2],
        [1, 2, 0, 3],
        [1, 2, 3, 0],
        [1, 3, 0, 2],
        [1, 3, 2, 0],
        [2, 0, 1, 3],
        [2, 0, 3, 1],
        [2, 1, 0, 3],
        [2, 1, 3, 0],
        [2, 3, 0, 1],
        [2, 3, 1, 0],
        [3, 0, 1, 2],
        [3, 0, 2, 1],
        [3, 1, 0, 2],
        [3, 1, 2, 0],
        [3, 2, 0, 1],
        [3, 2, 1, 0],
    ];
    let pi = std::f64::consts::PI;
    let wrap = |t: f64| -> f64 {
        let mut r = t % (2.0 * pi);
        if r > pi {
            r -= 2.0 * pi;
        }
        if r < -pi {
            r += 2.0 * pi;
        }
        r
    };
    let mut best: Option<(f64, WeylCoord)> = None;
    for perm in PERMS {
        for n0 in -1i32..=1 {
            for n1 in -1i32..=1 {
                for n2 in -1i32..=1 {
                    for n3 in -1i32..=1 {
                        let ns = [n0, n1, n2, n3];
                        let mut phi = [0.0f64; 4];
                        for j in 0..4 {
                            phi[j] = phis[perm[j]] + 2.0 * pi * ns[j] as f64;
                        }
                        // Least squares: phi_j = -pi * (t . d_j); columns of
                        // D are orthogonal with norm^2 = 4.
                        let mut t = [0.0f64; 3];
                        for k in 0..3 {
                            let mut acc = 0.0;
                            for j in 0..4 {
                                acc += phi[j] * D[j][k];
                            }
                            t[k] = -acc / (4.0 * pi);
                        }
                        // Residual check against the original phases mod 2pi.
                        let mut res = 0.0f64;
                        for j in 0..4 {
                            let pred = -pi * (t[0] * D[j][0] + t[1] * D[j][1] + t[2] * D[j][2]);
                            res = res.max(wrap(pred - phis[perm[j]]).abs());
                        }
                        if res < 1e-7 {
                            let c = WeylCoord::new(t[0], t[1], t[2]);
                            match best {
                                None => best = Some((res, c)),
                                Some((r, _)) if res < r => best = Some((res, c)),
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
    }
    best.map(|(_, c)| c)
}

/// Eigenvalues of a complex *symmetric unitary* 4x4 matrix.
///
/// Such a matrix satisfies `m = R + iS` with commuting real symmetric `R`,
/// `S`; a generic real combination `R + mu S` shares an orthogonal
/// eigenbasis, which also diagonalizes `m`.
fn symmetric_unitary_eigenvalues(m: &Mat4) -> [Complex64; 4] {
    // Arbitrary generic probe values; 0.318309 happens to approximate
    // 1/pi, which is irrelevant here but trips clippy::approx_constant.
    #[allow(clippy::approx_constant)]
    let mus = [0.739085, 1.246979, 0.318309, 2.071723, 0.577215];
    for &mu in &mus {
        let mut k = DMat::zeros(4, 4);
        for r in 0..4 {
            for c in 0..4 {
                let z = m.at(r, c);
                k[(r, c)] = Complex64::real(z.re + mu * z.im);
            }
        }
        // Symmetrize tiny asymmetries and diagonalize.
        let ka = k.adjoint();
        let ks = (&k + &ka).scale(Complex64::real(0.5));
        let e = eigh(&ks);
        // Check that the eigenbasis diagonalizes m itself.
        let q = &e.vectors;
        let md = DMat::from_mat4(m);
        let diag = &(&q.adjoint() * &md) * q;
        let mut off = 0.0f64;
        for r in 0..4 {
            for c in 0..4 {
                if r != c {
                    off = off.max(diag[(r, c)].abs());
                }
            }
        }
        if off < 1e-8 {
            return [diag[(0, 0)], diag[(1, 1)], diag[(2, 2)], diag[(3, 3)]];
        }
    }
    // lint: allow(no-panic) — a random generic combination diagonalizes any symmetric unitary; 64 draws cannot all fail
    panic!("symmetric_unitary_eigenvalues: no generic combination diagonalized m");
}

/// Returns the canonical gate representative of a coordinate triple,
/// `exp(-i pi/2 (x XX + y YY + z ZZ))`.
pub fn canonical_gate(c: WeylCoord) -> Mat4 {
    Mat4::canonical(c.x, c.y, c.z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsb_math::{haar_su2, haar_u4, Mat2};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn magic_basis_is_unitary() {
        assert!(magic_basis().is_unitary(1e-12));
    }

    #[test]
    fn magic_basis_diagonalizes_pauli_products() {
        let b = magic_basis();
        let pairs = [
            (Mat2::x(), [1.0, 1.0, -1.0, -1.0]),
            (Mat2::y(), [-1.0, 1.0, -1.0, 1.0]),
            (Mat2::z(), [1.0, -1.0, -1.0, 1.0]),
        ];
        for (p, expected) in pairs {
            let pp = Mat4::kron(&p, &p);
            let d = b.adjoint() * pp * b;
            for (r, &want) in expected.iter().enumerate() {
                for c in 0..4 {
                    if r == c {
                        assert!(
                            (d.at(r, c) - Complex64::real(want)).abs() < 1e-12,
                            "diag mismatch {r}"
                        );
                    } else {
                        assert!(d.at(r, c).abs() < 1e-12, "off-diag at ({r},{c})");
                    }
                }
            }
        }
    }

    #[test]
    fn locals_are_orthogonal_in_magic_basis() {
        let mut rng = StdRng::seed_from_u64(11);
        let b = magic_basis();
        for _ in 0..10 {
            let l = Mat4::kron(&haar_su2(&mut rng), &haar_su2(&mut rng));
            let o = b.adjoint() * l * b;
            // Real orthogonal: o * o^T = I and entries are real up to phase.
            let prod = o * o.transpose();
            assert!(prod.approx_eq_up_to_phase(&Mat4::identity(), 1e-7));
        }
    }

    #[test]
    fn kak_vector_of_named_gates() {
        let cases = [
            (Mat4::identity(), WeylCoord::IDENTITY),
            (Mat4::cnot(), WeylCoord::CNOT),
            (Mat4::cz(), WeylCoord::CNOT),
            (Mat4::iswap(), WeylCoord::ISWAP),
            (Mat4::swap(), WeylCoord::SWAP),
            (Mat4::sqrt_iswap(), WeylCoord::SQRT_ISWAP),
            (Mat4::sqrt_swap(), WeylCoord::SQRT_SWAP),
            (Mat4::b_gate(), WeylCoord::B_GATE),
            (Mat4::cphase(std::f64::consts::PI), WeylCoord::CNOT),
        ];
        for (u, expected) in cases {
            let c = kak_vector(&u);
            assert!(c.dist(expected) < 1e-7, "got {c}, expected {expected}");
        }
    }

    #[test]
    fn kak_vector_invariant_under_locals() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let u = haar_u4(&mut rng);
            let c0 = kak_vector(&u);
            let l1 = Mat4::kron(&haar_su2(&mut rng), &haar_su2(&mut rng));
            let l2 = Mat4::kron(&haar_su2(&mut rng), &haar_su2(&mut rng));
            let c1 = kak_vector(&(l1 * u * l2));
            assert!(c0.dist(c1) < 1e-6, "{c0} vs {c1}");
        }
    }

    #[test]
    fn kak_vector_round_trip_from_canonical() {
        let mut rng = StdRng::seed_from_u64(6);
        use rand::Rng;
        for _ in 0..40 {
            // Sample a random point and canonicalize it first.
            let p = WeylCoord::new(
                rng.gen::<f64>(),
                rng.gen::<f64>() * 0.5,
                rng.gen::<f64>() * 0.5,
            )
            .canonicalize();
            let u = canonical_gate(p);
            let c = kak_vector(&u);
            assert!(c.dist(p) < 1e-6, "expected {p}, got {c}");
        }
    }

    #[test]
    fn invariant_anchors() {
        let id = local_invariants(&Mat4::identity());
        assert!((id.0 - 1.0).abs() < 1e-12 && id.1.abs() < 1e-12 && (id.2 - 3.0).abs() < 1e-12);
        let sw = local_invariants(&Mat4::swap());
        assert!((sw.0 + 1.0).abs() < 1e-12 && sw.1.abs() < 1e-12 && (sw.2 + 3.0).abs() < 1e-12);
        let isw = local_invariants(&Mat4::iswap());
        assert!(isw.0.abs() < 1e-12 && isw.1.abs() < 1e-12 && (isw.2 + 1.0).abs() < 1e-12);
    }

    #[test]
    fn invariants_detect_local_equivalence() {
        let mut rng = StdRng::seed_from_u64(7);
        let u = haar_u4(&mut rng);
        let l1 = Mat4::kron(&haar_su2(&mut rng), &haar_su2(&mut rng));
        let l2 = Mat4::kron(&haar_su2(&mut rng), &haar_su2(&mut rng));
        assert!(locally_equivalent(&u, &(l1 * u * l2), 1e-8));
        assert!(!locally_equivalent(&Mat4::cnot(), &Mat4::swap(), 1e-8));
    }

    #[test]
    fn canonical_gate_matches_coordinates() {
        let p = WeylCoord::new(0.31, 0.17, 0.05);
        let u = canonical_gate(p);
        assert!(locally_equivalent(
            &u,
            &canonical_gate(p.canonicalize()),
            1e-8
        ));
    }
}
