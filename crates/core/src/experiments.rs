//! Shared experiment harness: the benchmark suite of Table II and the
//! end-to-end device -> compile -> evaluate flows that the table/figure
//! binaries and examples reuse.

use nsb_circuit::{generators, Circuit};
use nsb_compiler::{CompiledCircuit, Transpiler};
use nsb_device::{BasisStrategy, Device, DeviceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A named benchmark instance.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Display name matching the paper's Table II rows (e.g. `qft 10`).
    pub name: String,
    /// The logical circuit.
    pub circuit: Circuit,
}

/// The benchmark suite of Table II: `qft 10/20`, `bv 9..99`,
/// `cuccaro 10/20`, `qaoa 0.1/0.33 x sizes` (all p = 1). Graph instances
/// are seeded deterministically.
pub fn table2_suite(seed: u64) -> Vec<Benchmark> {
    let mut suite = Vec::new();
    for n in [10usize, 20] {
        suite.push(Benchmark {
            name: format!("qft {n}"),
            circuit: generators::qft(n, true),
        });
    }
    for n in (9..=99).step_by(10) {
        suite.push(Benchmark {
            name: format!("bv {n}"),
            circuit: generators::bv_all_ones(n),
        });
    }
    for n in [10usize, 20] {
        // `cuccaro N` = N total qubits = 2k + 2 for k-bit operands.
        let bits = (n - 2) / 2;
        suite.push(Benchmark {
            name: format!("cuccaro {n}"),
            circuit: generators::cuccaro_adder(bits),
        });
    }
    // Extension rows: the QFT adder the paper's introduction motivates
    // (Ruiz-Perez / Garcia-Escartin); `qft_add N` uses two N/2-bit
    // registers.
    for n in [10usize, 20] {
        suite.push(Benchmark {
            name: format!("qft_add {n}"),
            circuit: generators::qft_adder(n / 2),
        });
    }
    let (gamma, beta) = (0.4, 0.3);
    for (prob, sizes) in [(0.1f64, vec![10usize, 20, 30, 40]), (0.33, vec![10, 20])] {
        for n in sizes {
            let mut rng = StdRng::seed_from_u64(seed ^ ((n as u64) << 8) ^ prob.to_bits());
            suite.push(Benchmark {
                name: format!("qaoa {prob} {n}"),
                circuit: generators::qaoa_maxcut(n, prob, gamma, beta, &mut rng),
            });
        }
    }
    suite
}

/// A smaller suite for quick runs and integration tests.
pub fn small_suite(seed: u64) -> Vec<Benchmark> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        Benchmark {
            name: "qft 5".into(),
            circuit: generators::qft(5, true),
        },
        Benchmark {
            name: "bv 5".into(),
            circuit: generators::bv_all_ones(5),
        },
        Benchmark {
            name: "cuccaro 6".into(),
            circuit: generators::cuccaro_adder(2),
        },
        Benchmark {
            name: "qaoa 0.33 5".into(),
            circuit: generators::qaoa_maxcut(5, 0.33, 0.4, 0.3, &mut rng),
        },
    ]
}

/// One row of a Table II style report.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Logical two-qubit gate count.
    pub logical_2q: usize,
    /// Per-strategy results in [`BasisStrategy::ALL`] order.
    pub results: [StrategyResult; 3],
}

/// Compilation metrics for one strategy.
#[derive(Clone, Debug)]
pub struct StrategyResult {
    /// Coherence-limited circuit fidelity.
    pub fidelity: f64,
    /// Total circuit duration (ns).
    pub duration: f64,
    /// SWAPs inserted by routing.
    pub swaps: usize,
    /// Native entangler applications after lowering.
    pub entanglers: usize,
}

/// Compiles one benchmark under every strategy.
///
/// # Errors
///
/// Returns the compile error of the first failing strategy.
pub fn evaluate_benchmark(
    device: &Device,
    bench: &Benchmark,
) -> Result<Table2Row, nsb_compiler::CompileError> {
    let mut results = Vec::with_capacity(3);
    for strategy in BasisStrategy::ALL {
        let compiled = Transpiler::new(device, strategy).compile(&bench.circuit)?;
        results.push(StrategyResult {
            fidelity: compiled.fidelity,
            duration: compiled.schedule.duration,
            swaps: compiled.swaps_inserted,
            entanglers: compiled.schedule.entangler_count,
        });
    }
    Ok(Table2Row {
        name: bench.name.clone(),
        logical_2q: bench.circuit.two_qubit_count(),
        results: [results[0].clone(), results[1].clone(), results[2].clone()],
    })
}

/// Convenience: compiles a circuit under one strategy.
///
/// # Errors
///
/// Propagates compile errors.
pub fn compile_on(
    device: &Device,
    strategy: BasisStrategy,
    circuit: &Circuit,
) -> Result<CompiledCircuit, nsb_compiler::CompileError> {
    Transpiler::new(device, strategy).compile(circuit)
}

/// Builds the paper's full 10x10 case-study device (expensive: simulates
/// 180 edges; a few minutes of CPU, parallelized).
///
/// # Errors
///
/// Propagates device build errors.
pub fn build_case_study_device(seed: u64) -> Result<Device, nsb_device::DeviceBuildError> {
    Device::build(
        10,
        10,
        DeviceConfig {
            seed,
            ..DeviceConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table2_rows() {
        let suite = table2_suite(7);
        assert_eq!(suite.len(), 2 + 10 + 2 + 2 + 6);
        let names: Vec<&str> = suite.iter().map(|b| b.name.as_str()).collect();
        assert!(names.contains(&"qft 20"));
        assert!(names.contains(&"bv 99"));
        assert!(names.contains(&"cuccaro 10"));
        assert!(names.contains(&"qft_add 20"));
        assert!(names.contains(&"qaoa 0.33 20"));
        // Qubit budgets all fit the 10x10 grid.
        for b in &suite {
            assert!(b.circuit.n_qubits() <= 100, "{} too large", b.name);
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let a = table2_suite(7);
        let b = table2_suite(7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.circuit, y.circuit, "{}", x.name);
        }
    }

    #[test]
    fn cuccaro_sizing_matches_names() {
        let suite = table2_suite(7);
        let c10 = suite.iter().find(|b| b.name == "cuccaro 10").unwrap();
        assert_eq!(c10.circuit.n_qubits(), 10);
        let c20 = suite.iter().find(|b| b.name == "cuccaro 20").unwrap();
        assert_eq!(c20.circuit.n_qubits(), 20);
    }
}
