//! # nsb-core
//!
//! Facade crate for the reproduction of *Let Each Quantum Bit Choose Its
//! Basis Gates* (MICRO 2022): re-exports every subsystem and provides the
//! shared experiment harness used by the table/figure regeneration
//! binaries.
//!
//! ## Subsystems
//!
//! * [`math`] — complex linear algebra built from scratch.
//! * [`weyl`] — Weyl-chamber geometry, Cartan coordinates, synthesis
//!   regions (the paper's theoretical framework, Section V).
//! * [`synth`] — numerical gate synthesis with the analytic depth oracle
//!   (Section VII).
//! * [`sim`] — the transmon-coupler-transmon pulse simulator
//!   (Section VIII-B, Appendix A).
//! * [`circuit`] — circuit IR, statevector simulation, benchmarks.
//! * [`device`] — the simulated 10x10 device, per-edge basis-gate
//!   selection and the calibration protocol (Sections V-E, VI).
//! * [`compiler`] — SABRE mapping and per-edge basis lowering.
//! * [`service`] — concurrent compilation service with a shared
//!   synthesis cache, deadlines and metrics; [`ServicePool`](service::ServicePool)
//!   shards it across multiple device calibrations.
//! * [`store`] — persistent snapshot store for the synthesis cache:
//!   checksummed on-disk format, atomic replacement, warm starts.
//! * [`verify`] — static verification of compiled programs: basis
//!   legality, connectivity, Weyl canonicality, schedule sanity and
//!   unitary equivalence.
//! * [`experiments`] — Table I / Table II harness.
//!
//! ## Quickstart
//!
//! ```
//! use nsb_core::prelude::*;
//!
//! // Identify a good 2Q basis gate on an idealized nonstandard trajectory.
//! let coords: Vec<WeylCoord> = (0..=60)
//!     .map(|k| {
//!         let t = k as f64 / 60.0;
//!         WeylCoord::new(0.55 * t, 0.50 * t, 0.08 * t)
//!     })
//!     .collect();
//! let idx = first_crossing(&coords, SelectionCriterion::SwapIn3CnotIn2, 0.15).unwrap();
//! assert!(can_swap_in_3(coords[idx]) && can_cnot_in_2(coords[idx]));
//! ```
//!
//! Compiling many circuits? Run them through the concurrent service —
//! jobs fan out over a worker pool and share one synthesis cache:
//!
//! ```
//! use nsb_core::prelude::*;
//!
//! let device = Device::build(3, 2, DeviceConfig::fast_test()).unwrap();
//! let service = CompileService::new(device, ServiceConfig::default()).unwrap();
//! let handles: Vec<_> = (3..=4)
//!     .map(|n| {
//!         let spec = JobSpec::new(generators::qft(n, true), BasisStrategy::Criterion2);
//!         service.submit(spec).unwrap()
//!     })
//!     .collect();
//! for handle in handles {
//!     assert!(handle.wait().unwrap().fidelity > 0.9);
//! }
//! println!("{}", service.metrics().report());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use nsb_circuit as circuit;
pub use nsb_compiler as compiler;
pub use nsb_device as device;
pub use nsb_math as math;
pub use nsb_service as service;
pub use nsb_sim as sim;
pub use nsb_store as store;
pub use nsb_synth as synth;
pub use nsb_verify as verify;
pub use nsb_weyl as weyl;

pub mod experiments;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::experiments::{
        build_case_study_device, compile_on, evaluate_benchmark, small_suite, table2_suite,
        Benchmark, StrategyResult, Table2Row,
    };
    pub use nsb_circuit::{generators, Circuit, Gate, StateVector};
    pub use nsb_compiler::{verify_compiled, CompiledCircuit, LoweringMode, Transpiler};
    pub use nsb_device::{
        BasisStrategy, Device, DeviceConfig, FrequencyPlan, GridTopology, Table1Row,
    };
    pub use nsb_math::{Complex64, DMat, Mat2, Mat4};
    pub use nsb_service::{
        CompileService, FallbackPolicy, JobOutput, JobRoute, JobSpec, PoolConfig, ServiceConfig,
        ServiceError, ServiceMetrics, ServicePool, ShardSpec,
    };
    pub use nsb_sim::{
        CartanTrajectory, DriveParams, PreparedCell, TrajectoryConfig, UnitCellParams,
    };
    pub use nsb_store::{LoadReport, SaveReport, SnapshotStore, StoredEntry};
    pub use nsb_synth::{Decomposer, DecomposerConfig, Synthesized2Q};
    pub use nsb_verify::{VerifierSuite, VerifyLevel, VerifyReport, ViolationKind};
    pub use nsb_weyl::{
        can_cnot_in_2, can_swap_in_3, entangling_power, first_crossing, is_perfect_entangler,
        kak_vector, SelectionCriterion, WeylCoord,
    };
}
