//! Compile-time thread-safety and error-trait audit.
//!
//! The compilation service shares `Device`, decomposers and the
//! synthesis cache across worker threads; these assertions pin the
//! `Send`/`Sync` guarantees so an accidental `Rc`/`RefCell`/raw-pointer
//! regression fails to compile rather than failing at a distance.

use nsb_core::compiler::{CompileError, CompiledCircuit, Lowerer, Transpiler};
use nsb_core::device::{Device, DeviceBuildError};
use nsb_core::service::{
    CompileService, JobHandle, JobSpec, ServiceError, ServiceMetrics, SharedSynthCache,
};
use nsb_core::synth::{Decomposer, SynthesisFailed, Synthesized2Q};

fn assert_send_sync<T: Send + Sync>() {}
fn assert_send<T: Send>() {}
fn assert_error<T: std::error::Error + std::fmt::Display>() {}

#[test]
fn shared_types_are_send_and_sync() {
    assert_send_sync::<Device>();
    assert_send_sync::<Transpiler<'static>>();
    assert_send_sync::<Lowerer<'static>>();
    assert_send_sync::<Decomposer>();
    assert_send_sync::<Synthesized2Q>();
    assert_send_sync::<CompiledCircuit>();
    assert_send_sync::<SharedSynthCache>();
    assert_send_sync::<CompileService>();
    assert_send_sync::<ServiceMetrics>();
    assert_send_sync::<ServiceError>();
    assert_send_sync::<JobSpec>();
}

#[test]
fn job_handles_move_across_threads() {
    // A handle owns an `mpsc::Receiver`, which is Send but not Sync:
    // one thread at a time may wait on it, and that is the contract.
    assert_send::<JobHandle>();
}

#[test]
fn failure_types_are_std_errors() {
    assert_error::<SynthesisFailed>();
    assert_error::<CompileError>();
    assert_error::<DeviceBuildError>();
    assert_error::<ServiceError>();
}
