//! SABRE layout and routing (Li, Ding, Xie, ASPLOS 2019), the mapping
//! method the paper uses through Qiskit's transpiler, re-implemented here:
//! front-layer scheduling, lookahead ("extended set") swap scoring with
//! decay factors, and the reverse-traversal initial-layout refinement.

use nsb_circuit::{Circuit, Gate, Operation};
use nsb_device::GridTopology;
use std::fmt;

/// Routing failure: the swap search could not make progress.
#[derive(Clone, Debug)]
pub enum RouteError {
    /// A blocked front gate produced no swap candidates, which can only
    /// happen on a degenerate topology (isolated qubits).
    NoSwapCandidates {
        /// Logical qubits of the first blocked gate.
        qubits: (usize, usize),
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::NoSwapCandidates { qubits: (a, b) } => write!(
                f,
                "routing stalled: no swap candidates for blocked gate on logical qubits {a},{b}"
            ),
        }
    }
}

impl std::error::Error for RouteError {}

/// A logical-to-physical qubit assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layout {
    /// `logical_to_physical[l]` is the physical qubit hosting logical `l`.
    pub logical_to_physical: Vec<usize>,
}

impl Layout {
    /// The trivial layout `l -> l` for `n_logical` qubits.
    pub fn trivial(n_logical: usize) -> Self {
        Layout {
            logical_to_physical: (0..n_logical).collect(),
        }
    }

    /// Physical host of a logical qubit.
    pub fn physical(&self, logical: usize) -> usize {
        self.logical_to_physical[logical]
    }

    /// Applies a SWAP between two *physical* qubits.
    fn swap_physical(&mut self, p1: usize, p2: usize) {
        for p in &mut self.logical_to_physical {
            if *p == p1 {
                *p = p2;
            } else if *p == p2 {
                *p = p1;
            }
        }
    }
}

/// Routing output: the circuit rewritten on physical qubits with SWAPs
/// inserted, plus the initial and final layouts.
#[derive(Clone, Debug)]
pub struct RoutedCircuit {
    /// Physical-qubit circuit (includes inserted `Gate::Swap`s).
    pub circuit: Circuit,
    /// Layout before the first gate.
    pub initial_layout: Layout,
    /// Layout after the last gate.
    pub final_layout: Layout,
    /// Number of SWAPs inserted by routing.
    pub swaps_inserted: usize,
}

/// SABRE tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct SabreConfig {
    /// Extended-set (lookahead) size.
    pub extended_set_size: usize,
    /// Weight of the extended-set term in the swap score.
    pub extended_set_weight: f64,
    /// Decay increment per swap touching a qubit.
    pub decay_increment: f64,
    /// Rounds between decay resets.
    pub decay_reset_interval: usize,
    /// Layout refinement iterations (forward/backward passes).
    pub layout_iterations: usize,
}

impl Default for SabreConfig {
    fn default() -> Self {
        SabreConfig {
            extended_set_size: 20,
            extended_set_weight: 0.5,
            decay_increment: 0.001,
            decay_reset_interval: 5,
            layout_iterations: 2,
        }
    }
}

/// Runs SABRE: refines an initial layout by forward/backward traversal,
/// then routes the circuit.
///
/// # Panics
///
/// Panics when the circuit needs more qubits than the topology provides.
///
/// # Errors
///
/// Returns [`RouteError`] when the swap search stalls, which cannot
/// happen on a connected grid topology.
pub fn sabre_route(
    circuit: &Circuit,
    topology: &GridTopology,
    config: &SabreConfig,
) -> Result<RoutedCircuit, RouteError> {
    assert!(
        circuit.n_qubits() <= topology.n_qubits(),
        "circuit does not fit on the device"
    );
    let dist = topology.distances();
    // Layout refinement by reverse traversal.
    let mut layout = compact_initial_layout(circuit.n_qubits(), topology);
    let reversed = reversed_circuit(circuit);
    for _ in 0..config.layout_iterations {
        let fwd = route_once(circuit, topology, &dist, layout.clone(), config)?;
        let bwd = route_once(&reversed, topology, &dist, fwd.final_layout, config)?;
        layout = bwd.final_layout;
    }
    route_once(circuit, topology, &dist, layout, config)
}

/// A compact starting layout: fills the grid row-wise from the center
/// outward so logical qubits start clustered.
fn compact_initial_layout(n_logical: usize, topology: &GridTopology) -> Layout {
    let n = topology.n_qubits();
    let (cx, cy) = (
        (topology.width() as f64 - 1.0) / 2.0,
        (topology.height() as f64 - 1.0) / 2.0,
    );
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let (ra, ca) = topology.position(a);
        let (rb, cb) = topology.position(b);
        let da = (ra as f64 - cy).abs() + (ca as f64 - cx).abs();
        let db = (rb as f64 - cy).abs() + (cb as f64 - cx).abs();
        da.total_cmp(&db).then(a.cmp(&b))
    });
    Layout {
        logical_to_physical: order.into_iter().take(n_logical).collect(),
    }
}

fn reversed_circuit(c: &Circuit) -> Circuit {
    let mut r = Circuit::new(c.n_qubits());
    for op in c.ops().iter().rev() {
        r.push(op.gate.clone(), &op.qubits);
    }
    r
}

fn route_once(
    circuit: &Circuit,
    topology: &GridTopology,
    dist: &[Vec<usize>],
    mut layout: Layout,
    config: &SabreConfig,
) -> Result<RoutedCircuit, RouteError> {
    let initial_layout = layout.clone();
    let ops = circuit.ops();
    let n_ops = ops.len();
    // Dependency DAG: per-op predecessor count and successors via qubits.
    let mut pred_count = vec![0usize; n_ops];
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n_ops];
    let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.n_qubits()];
    for (i, op) in ops.iter().enumerate() {
        for &q in &op.qubits {
            if let Some(prev) = last_on_qubit[q] {
                successors[prev].push(i);
                pred_count[i] += 1;
            }
            last_on_qubit[q] = Some(i);
        }
    }
    let mut front: Vec<usize> = (0..n_ops).filter(|&i| pred_count[i] == 0).collect();
    let mut out = Circuit::new(topology.n_qubits());
    let mut swaps_inserted = 0usize;
    let mut decay = vec![1.0f64; topology.n_qubits()];
    let mut rounds_since_reset = 0usize;
    let mut done = vec![false; n_ops];
    while !front.is_empty() {
        // Execute every currently executable front gate.
        let mut progressed = true;
        while progressed {
            progressed = false;
            let mut next_front = Vec::with_capacity(front.len());
            for &i in &front {
                let op = &ops[i];
                let executable = match op.qubits.len() {
                    1 => true,
                    _ => {
                        let p0 = layout.physical(op.qubits[0]);
                        let p1 = layout.physical(op.qubits[1]);
                        topology.are_adjacent(p0, p1)
                    }
                };
                if executable {
                    let phys: Vec<usize> = op.qubits.iter().map(|&q| layout.physical(q)).collect();
                    out.push(op.gate.clone(), &phys);
                    done[i] = true;
                    for &s in &successors[i] {
                        pred_count[s] -= 1;
                        if pred_count[s] == 0 {
                            next_front.push(s);
                        }
                    }
                    progressed = true;
                } else {
                    next_front.push(i);
                }
            }
            front = next_front;
        }
        if front.is_empty() {
            break;
        }
        // All front gates are blocked two-qubit gates: choose a SWAP.
        let extended = extended_set(&front, ops, &successors, &pred_count, config);
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for &i in &front {
            for &q in &ops[i].qubits {
                let p = layout.physical(q);
                for nb in topology.neighbors(p) {
                    let pair = (p.min(nb), p.max(nb));
                    if !candidates.contains(&pair) {
                        candidates.push(pair);
                    }
                }
            }
        }
        let mut best: Option<((usize, usize), f64)> = None;
        for &(p1, p2) in &candidates {
            let mut trial = layout.clone();
            trial.swap_physical(p1, p2);
            let mut score = 0.0;
            for &i in &front {
                let a = trial.physical(ops[i].qubits[0]);
                let b = trial.physical(ops[i].qubits[1]);
                score += dist[a][b] as f64;
            }
            if !extended.is_empty() {
                let mut ext = 0.0;
                for &i in &extended {
                    let a = trial.physical(ops[i].qubits[0]);
                    let b = trial.physical(ops[i].qubits[1]);
                    ext += dist[a][b] as f64;
                }
                score += config.extended_set_weight * ext / extended.len() as f64;
            }
            score *= decay[p1].max(decay[p2]);
            let better = match &best {
                None => true,
                Some((_, s)) => score < *s - 1e-12,
            };
            if better {
                best = Some(((p1, p2), score));
            }
        }
        let Some(((p1, p2), _)) = best else {
            let op = &ops[front[0]];
            return Err(RouteError::NoSwapCandidates {
                qubits: (op.qubits[0], op.qubits[1]),
            });
        };
        out.push(Gate::Swap, &[p1, p2]);
        layout.swap_physical(p1, p2);
        swaps_inserted += 1;
        decay[p1] += config.decay_increment;
        decay[p2] += config.decay_increment;
        rounds_since_reset += 1;
        if rounds_since_reset >= config.decay_reset_interval {
            decay.iter_mut().for_each(|d| *d = 1.0);
            rounds_since_reset = 0;
        }
    }
    debug_assert!(done.iter().all(|&d| d), "routing dropped gates");
    Ok(RoutedCircuit {
        circuit: out,
        initial_layout,
        final_layout: layout,
        swaps_inserted,
    })
}

/// The lookahead set: the next two-qubit gates reachable from the front
/// layer in dependency order.
fn extended_set(
    front: &[usize],
    ops: &[Operation],
    successors: &[Vec<usize>],
    pred_count: &[usize],
    config: &SabreConfig,
) -> Vec<usize> {
    let mut ext = Vec::new();
    let mut queue: Vec<usize> = front.to_vec();
    let mut virtual_pred: Vec<isize> = pred_count.iter().map(|&c| c as isize).collect();
    let mut seen = vec![false; ops.len()];
    while let Some(i) = queue.pop() {
        for &s in &successors[i] {
            virtual_pred[s] -= 1;
            if virtual_pred[s] <= 0 && !seen[s] {
                seen[s] = true;
                if ops[s].qubits.len() == 2 {
                    ext.push(s);
                    if ext.len() >= config.extended_set_size {
                        return ext;
                    }
                }
                queue.push(s);
            }
        }
    }
    ext
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsb_circuit::generators;

    fn routed_respects_topology(r: &RoutedCircuit, topo: &GridTopology) {
        for op in r.circuit.ops() {
            if op.qubits.len() == 2 {
                assert!(
                    topo.are_adjacent(op.qubits[0], op.qubits[1]),
                    "gate {op} not on an edge"
                );
            }
        }
    }

    #[test]
    fn adjacent_circuit_needs_no_swaps() {
        let topo = GridTopology::new(3, 1);
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        let r = sabre_route(&c, &topo, &SabreConfig::default()).expect("route");
        assert_eq!(r.swaps_inserted, 0);
        routed_respects_topology(&r, &topo);
    }

    #[test]
    fn cycle_interaction_on_line_needs_swaps() {
        // A 5-cycle of interactions cannot embed in a 5-qubit line, so at
        // least one SWAP is required no matter how good the layout is.
        let topo = GridTopology::new(5, 1);
        let mut c = Circuit::new(5);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)] {
            c.push(Gate::Cx, &[a, b]);
        }
        let r = sabre_route(&c, &topo, &SabreConfig::default()).expect("route");
        routed_respects_topology(&r, &topo);
        assert!(r.swaps_inserted >= 1, "C5 on a line requires swaps");
    }

    #[test]
    fn single_distant_gate_is_layout_solvable() {
        // SABRE's reverse-traversal layout places the two qubits of the
        // only gate adjacently, needing zero swaps.
        let topo = GridTopology::new(5, 1);
        let mut c = Circuit::new(5);
        c.push(Gate::Cx, &[0, 4]);
        let r = sabre_route(&c, &topo, &SabreConfig::default()).expect("route");
        routed_respects_topology(&r, &topo);
        assert_eq!(r.swaps_inserted, 0);
    }

    #[test]
    fn qft_routes_on_grid() {
        let topo = GridTopology::new(4, 4);
        let c = generators::qft(10, true);
        let r = sabre_route(&c, &topo, &SabreConfig::default()).expect("route");
        routed_respects_topology(&r, &topo);
        // All original two-qubit gates present plus swaps.
        let original_2q = c.two_qubit_count();
        assert_eq!(r.circuit.two_qubit_count(), original_2q + r.swaps_inserted);
    }

    #[test]
    fn bv_routes_with_bounded_overhead() {
        let topo = GridTopology::new(5, 5);
        let c = generators::bv_all_ones(20);
        let r = sabre_route(&c, &topo, &SabreConfig::default()).expect("route");
        routed_respects_topology(&r, &topo);
        // 19 CX through one ancilla on a 5x5 grid: swap count stays modest.
        assert!(
            r.swaps_inserted <= 3 * c.two_qubit_count(),
            "{} swaps for {} gates",
            r.swaps_inserted,
            c.two_qubit_count()
        );
    }

    #[test]
    fn layout_is_injective() {
        let topo = GridTopology::new(4, 4);
        let c = generators::qft(12, false);
        let r = sabre_route(&c, &topo, &SabreConfig::default()).expect("route");
        let mut seen = vec![false; topo.n_qubits()];
        for &p in &r.initial_layout.logical_to_physical {
            assert!(!seen[p], "duplicate physical qubit {p}");
            seen[p] = true;
        }
    }

    #[test]
    fn route_error_names_the_blocked_gate() {
        let e = RouteError::NoSwapCandidates { qubits: (4, 7) };
        assert!(e.to_string().contains("4,7"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
