//! Scheduling of lowered programs and the paper's coherence-limited
//! circuit fidelity: each qubit contributes `exp(-(t_f - t_i)/T)` with
//! `t_i`/`t_f` the start of its first and end of its last gate
//! (Section VIII-C).
//!
//! Gate *end* times come from an as-soon-as-possible pass; per-qubit
//! *start* times from an as-late-as-possible pass (the slack of a qubit's
//! first gate). This mirrors the Qiskit flow the paper uses (ALAP
//! scheduling, measurement immediately after a qubit's last gate): a qubit
//! whose one CNOT happens late in a serial circuit is initialized late and
//! released early instead of idling the whole time.

use crate::lower::LoweredOp;

/// Schedule summary for a lowered program.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Total circuit duration (ns), from the ASAP pass.
    pub duration: f64,
    /// Per-qubit active windows `(t_i, t_f)` — ALAP start of the first
    /// gate, ASAP end of the last gate; `None` for untouched qubits.
    pub windows: Vec<Option<(f64, f64)>>,
    /// Per-qubit total busy time (sum of gate durations), a lower bound on
    /// the active window.
    pub busy: Vec<f64>,
    /// Number of entangler applications.
    pub entangler_count: usize,
    /// Number of (merged) local gates.
    pub local_count: usize,
}

impl Schedule {
    /// Active-window length of one qubit: at least its busy time, at most
    /// `t_f - t_i`.
    pub fn window_length(&self, q: usize) -> f64 {
        match self.windows[q] {
            None => 0.0,
            Some((ti, tf)) => (tf - ti).max(self.busy[q]),
        }
    }

    /// The paper's decoherence-limited circuit fidelity for a uniform
    /// coherence time `t_coh`.
    pub fn coherence_fidelity(&self, t_coh: f64) -> f64 {
        let mut f = 1.0;
        for q in 0..self.windows.len() {
            if self.windows[q].is_some() {
                f *= (-self.window_length(q) / t_coh).exp();
            }
        }
        f
    }

    /// Number of qubits that executed at least one gate.
    pub fn active_qubits(&self) -> usize {
        self.windows.iter().flatten().count()
    }
}

/// Computes the schedule of a lowered program.
///
/// `t_1q` is the duration of every (merged) local gate; entanglers carry
/// their own durations.
pub fn schedule(ops: &[LoweredOp], n_qubits: usize, t_1q: f64) -> Schedule {
    let dur_of = |op: &LoweredOp| match op {
        LoweredOp::Local { .. } => t_1q,
        LoweredOp::Entangler { duration, .. } => *duration,
    };
    // Forward (ASAP) pass: end time of every qubit's last gate.
    let mut avail = vec![0.0f64; n_qubits];
    let mut t_end: Vec<Option<f64>> = vec![None; n_qubits];
    let mut busy = vec![0.0f64; n_qubits];
    let mut entangler_count = 0;
    let mut local_count = 0;
    let mut duration = 0.0f64;
    for op in ops {
        let dur = dur_of(op);
        match op {
            LoweredOp::Local { .. } => local_count += 1,
            LoweredOp::Entangler { .. } => entangler_count += 1,
        }
        let qs = op.qubits();
        let start = qs.iter().map(|&q| avail[q]).fold(0.0f64, f64::max);
        let end = start + dur;
        for &q in &qs {
            avail[q] = end;
            t_end[q] = Some(end);
            busy[q] += dur;
        }
        duration = duration.max(end);
    }
    // Backward (ALAP) pass: the latest time each qubit's FIRST gate can
    // start; iterating in reverse leaves the first gate's value last.
    let mut avail_rev = vec![0.0f64; n_qubits];
    let mut t_start: Vec<Option<f64>> = vec![None; n_qubits];
    for op in ops.iter().rev() {
        let dur = dur_of(op);
        let qs = op.qubits();
        let start_rev = qs.iter().map(|&q| avail_rev[q]).fold(0.0f64, f64::max);
        let end_rev = start_rev + dur;
        for &q in &qs {
            avail_rev[q] = end_rev;
            t_start[q] = Some(duration - end_rev);
        }
    }
    let windows = (0..n_qubits)
        .map(|q| match (t_start[q], t_end[q]) {
            (Some(ti), Some(tf)) => Some((ti, tf)),
            _ => None,
        })
        .collect();
    Schedule {
        duration,
        windows,
        busy,
        entangler_count,
        local_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsb_math::{Mat2, Mat4};

    fn loc(q: usize) -> LoweredOp {
        LoweredOp::Local {
            qubit: q,
            unitary: Mat2::h(),
        }
    }

    fn ent(q0: usize, q1: usize, d: f64) -> LoweredOp {
        LoweredOp::Entangler {
            qubits: (q0, q1),
            duration: d,
            gate: Mat4::cnot(),
        }
    }

    #[test]
    fn serial_chain_adds_durations() {
        let ops = vec![loc(0), ent(0, 1, 50.0), loc(1)];
        let s = schedule(&ops, 2, 20.0);
        assert!((s.duration - 90.0).abs() < 1e-12);
        assert_eq!(s.entangler_count, 1);
        assert_eq!(s.local_count, 2);
        // No slack anywhere: qubit 0 runs [0, 70], qubit 1 [20, 90].
        assert_eq!(s.windows[0], Some((0.0, 70.0)));
        assert_eq!(s.windows[1], Some((20.0, 90.0)));
        assert!((s.busy[0] - 70.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_gates_overlap() {
        let ops = vec![loc(0), loc(1), loc(2), loc(3)];
        let s = schedule(&ops, 4, 20.0);
        assert!((s.duration - 20.0).abs() < 1e-12);
        assert_eq!(s.active_qubits(), 4);
    }

    #[test]
    fn fidelity_matches_hand_computation() {
        let ops = vec![ent(0, 1, 100.0)];
        let s = schedule(&ops, 3, 20.0);
        let t = 80_000.0;
        let f = s.coherence_fidelity(t);
        let expected = (-100.0 / t).exp().powi(2);
        assert!((f - expected).abs() < 1e-12);
        assert_eq!(s.active_qubits(), 2);
    }

    #[test]
    fn alap_start_removes_leading_idle_time() {
        // Qubit 1's lone local gate has slack: it can wait until just
        // before the entangler instead of idling from t = 0.
        let ops = vec![loc(1), loc(0), loc(0), loc(0), ent(0, 1, 10.0)];
        let s = schedule(&ops, 2, 20.0);
        let (ti, tf) = s.windows[1].unwrap();
        assert!((ti - 40.0).abs() < 1e-12, "ALAP start {ti}");
        assert!((tf - 70.0).abs() < 1e-12);
        assert!((s.window_length(1) - 30.0).abs() < 1e-12);
        // Qubit 0 has no slack.
        assert_eq!(s.windows[0], Some((0.0, 70.0)));
    }

    #[test]
    fn window_never_shorter_than_busy_time() {
        // A qubit whose only gate is early (ASAP end small) but whose ALAP
        // start is late still pays at least its busy time.
        let ops = vec![loc(1), loc(0), loc(0), ent(0, 2, 10.0)];
        let s = schedule(&ops, 3, 20.0);
        // Qubit 1: single local, ASAP end = 20, ALAP start = 50 - 20 = 30.
        assert!((s.window_length(1) - 20.0).abs() < 1e-12);
    }
}
