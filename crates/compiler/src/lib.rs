//! # nsb-compiler
//!
//! The transpiler of the MICRO 2022 reproduction: SABRE layout and routing
//! onto the grid device, lowering of routed circuits into each edge's own
//! (possibly nonstandard) basis gate via cached numerical decompositions,
//! single-qubit gate merging, ASAP scheduling and the paper's
//! coherence-limited fidelity model.
//!
//! ```no_run
//! use nsb_circuit::generators;
//! use nsb_compiler::Transpiler;
//! use nsb_device::{BasisStrategy, Device, DeviceConfig};
//!
//! let device = Device::build(10, 10, DeviceConfig::default()).unwrap();
//! let qft = generators::qft(10, true);
//! let compiled = Transpiler::new(&device, BasisStrategy::Criterion2)
//!     .compile(&qft)
//!     .unwrap();
//! println!("duration {:.1} ns, fidelity {:.3}", compiled.schedule.duration, compiled.fidelity);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lower;
mod pipeline;
mod sabre;
mod schedule;

pub use lower::{
    merge_locals, mode_tag, swap_conjugate, CacheKey, LowerError, LoweredOp, Lowerer, LoweringMode,
};
pub use pipeline::{
    default_mode, to_schedule_facts, to_verify_ops, verify_compiled, CompileError, CompiledCircuit,
    Transpiler,
};
pub use sabre::{sabre_route, Layout, RouteError, RoutedCircuit, SabreConfig};
pub use schedule::{schedule, Schedule};

// Re-export the verification vocabulary so downstream crates can configure
// the pipeline without depending on nsb-verify directly.
pub use nsb_verify::{VerifyConfig, VerifyLevel, VerifyReport};
