//! Lowering a routed physical circuit into per-edge native basis gates
//! plus local unitaries (paper Section VII), with 1Q-gate merging.

use nsb_circuit::{Circuit, Gate};
use nsb_device::{BasisStrategy, Device, SelectedBasis};
use nsb_math::{Mat2, Mat4};
use nsb_synth::{SynthCache, SynthesisFailed, Synthesized2Q};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Lowering failure.
#[derive(Clone, Debug)]
pub enum LowerError {
    /// A numerical decomposition did not converge.
    Synthesis(SynthesisFailed),
    /// A two-qubit gate addressed a pair of qubits with no device edge —
    /// the input circuit was not (correctly) routed.
    NotCoupled {
        /// First operand.
        q0: usize,
        /// Second operand.
        q1: usize,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::Synthesis(e) => write!(f, "{e}"),
            LowerError::NotCoupled { q0, q1 } => {
                write!(
                    f,
                    "two-qubit gate on uncoupled qubits {q0},{q1} (circuit not routed?)"
                )
            }
        }
    }
}

impl std::error::Error for LowerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LowerError::Synthesis(e) => Some(e),
            LowerError::NotCoupled { .. } => None,
        }
    }
}

impl From<SynthesisFailed> for LowerError {
    fn from(e: SynthesisFailed) -> Self {
        LowerError::Synthesis(e)
    }
}

/// One operation of the lowered (hardware-level) program.
///
/// `Entangler` carries its full `Mat4` inline; lowered programs are short
/// and iterated once, so locality beats boxing the large variant.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum LoweredOp {
    /// A merged local unitary on one qubit.
    Local {
        /// Physical qubit.
        qubit: usize,
        /// The unitary.
        unitary: Mat2,
    },
    /// One application of an edge's native basis gate.
    Entangler {
        /// Physical qubits in the gate's tensor order (low-frequency qubit
        /// first).
        qubits: (usize, usize),
        /// Pulse duration (ns).
        duration: f64,
        /// The gate unitary (for verification and reporting).
        gate: Mat4,
    },
}

impl LoweredOp {
    /// Qubits the operation touches.
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            LoweredOp::Local { qubit, .. } => vec![*qubit],
            LoweredOp::Entangler { qubits, .. } => vec![qubits.0, qubits.1],
        }
    }
}

/// How parametrized two-qubit gates are converted into basis gates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoweringMode {
    /// Expand into CNOTs (plus local rotations) and use the per-edge
    /// cached CNOT decomposition — the paper's minimalist approach for the
    /// nonstandard criteria (only SWAP and CNOT are pre-decomposed).
    ViaCnot,
    /// Numerically decompose each distinct target directly into the basis
    /// gate (the paper's baseline path, standing in for the analytic
    /// sqrt(iSWAP) formulas of Huang et al.), with an angle-keyed cache.
    Direct,
}

/// Key identifying a decomposition target in the per-compilation cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    edge: usize,
    strategy_tag: u8,
    kind: u64,
}

/// The lowering pass.
pub struct Lowerer<'d> {
    device: &'d Device,
    strategy: BasisStrategy,
    mode: LoweringMode,
    cache: HashMap<CacheKey, Synthesized2Q>,
    shared: Option<Arc<dyn SynthCache>>,
}

impl<'d> Lowerer<'d> {
    /// Creates a lowerer for a device and strategy.
    pub fn new(device: &'d Device, strategy: BasisStrategy, mode: LoweringMode) -> Self {
        Lowerer {
            device,
            strategy,
            mode,
            cache: HashMap::new(),
            shared: None,
        }
    }

    /// Attaches a shared synthesis cache consulted (and filled) whenever
    /// the per-compilation cache misses. Results served from the shared
    /// cache are bit-identical to fresh decompositions, so lowering
    /// output does not depend on cache state.
    pub fn with_shared_cache(mut self, cache: Arc<dyn SynthCache>) -> Self {
        self.shared = Some(cache);
        self
    }

    /// Lowers a routed physical circuit. Two-qubit operations must already
    /// sit on device edges.
    ///
    /// # Errors
    ///
    /// Returns [`LowerError::Synthesis`] when a direct decomposition does
    /// not converge, [`LowerError::NotCoupled`] when a two-qubit gate is
    /// not on a device edge.
    pub fn lower(&mut self, routed: &Circuit) -> Result<Vec<LoweredOp>, LowerError> {
        let mut out = Vec::with_capacity(routed.len() * 4);
        for op in routed.ops() {
            match op.qubits.len() {
                1 => out.push(LoweredOp::Local {
                    qubit: op.qubits[0],
                    unitary: op.gate.mat2(),
                }),
                _ => self.lower_2q(&op.gate, op.qubits[0], op.qubits[1], &mut out)?,
            }
        }
        Ok(merge_locals(out, routed.n_qubits()))
    }

    fn lower_2q(
        &mut self,
        gate: &Gate,
        q0: usize,
        q1: usize,
        out: &mut Vec<LoweredOp>,
    ) -> Result<(), LowerError> {
        let edge_idx = self
            .device
            .topology()
            .edge_index(q0, q1)
            .ok_or(LowerError::NotCoupled { q0, q1 })?;
        let cal = &self.device.edges()[edge_idx];
        let basis = cal.basis(self.strategy);
        let (g0, g1) = cal.gate_order;
        let aligned = (q0, q1) == (g0, g1);
        match gate {
            Gate::Swap => {
                self.emit(basis, &basis.swap.circuit.clone(), g0, g1, out);
                Ok(())
            }
            Gate::Cx => {
                if aligned {
                    self.emit(basis, &basis.cnot.circuit.clone(), g0, g1, out);
                } else {
                    // Reversed CNOT = (H (x) H) CNOT (H (x) H).
                    out.push(local(g0, Mat2::h()));
                    out.push(local(g1, Mat2::h()));
                    self.emit(basis, &basis.cnot.circuit.clone(), g0, g1, out);
                    out.push(local(g0, Mat2::h()));
                    out.push(local(g1, Mat2::h()));
                }
                Ok(())
            }
            Gate::Cz if self.mode == LoweringMode::ViaCnot => {
                // CZ = (I (x) H) CX (I (x) H) with q1 as target.
                out.push(local(q1, Mat2::h()));
                self.lower_2q(&Gate::Cx, q0, q1, out)?;
                out.push(local(q1, Mat2::h()));
                Ok(())
            }
            Gate::CPhase(lambda) if self.mode == LoweringMode::ViaCnot => {
                out.push(local(q0, Mat2::phase(lambda / 2.0)));
                self.lower_2q(&Gate::Cx, q0, q1, out)?;
                out.push(local(q1, Mat2::phase(-lambda / 2.0)));
                self.lower_2q(&Gate::Cx, q0, q1, out)?;
                out.push(local(q1, Mat2::phase(lambda / 2.0)));
                Ok(())
            }
            Gate::Rzz(theta) if self.mode == LoweringMode::ViaCnot => {
                self.lower_2q(&Gate::Cx, q0, q1, out)?;
                out.push(local(q1, Mat2::rz(*theta)));
                self.lower_2q(&Gate::Cx, q0, q1, out)?;
                Ok(())
            }
            other => {
                // Direct numerical decomposition with a per-target cache.
                let target = if aligned || other.is_symmetric() {
                    other.mat4()
                } else {
                    swap_conjugate(&other.mat4())
                };
                let key = CacheKey {
                    edge: edge_idx,
                    strategy_tag: strategy_tag(self.strategy),
                    kind: gate_kind_hash(other, aligned),
                };
                let synth = match self.cache.get(&key) {
                    Some(s) => s.clone(),
                    None => {
                        let s = match &self.shared {
                            Some(shared) => basis.decomposer.decompose_cached(
                                &target,
                                mode_tag(self.mode),
                                shared.as_ref(),
                            )?,
                            None => basis.decomposer.decompose(&target)?,
                        };
                        self.cache.insert(key, s.clone());
                        s
                    }
                };
                self.emit(basis, &synth, g0, g1, out);
                Ok(())
            }
        }
    }

    fn emit(
        &self,
        basis: &SelectedBasis,
        synth: &Synthesized2Q,
        g0: usize,
        g1: usize,
        out: &mut Vec<LoweredOp>,
    ) {
        for (k, (u, v)) in synth.locals.iter().enumerate() {
            out.push(local(g0, *u));
            out.push(local(g1, *v));
            if k < synth.layers {
                out.push(LoweredOp::Entangler {
                    qubits: (g0, g1),
                    duration: basis.duration,
                    gate: basis.gate,
                });
            }
        }
    }

    /// Number of distinct cached decompositions accumulated so far.
    pub fn cache_size(&self) -> usize {
        self.cache.len()
    }

    /// Synthesizes the circuit's distinct decomposition targets across a
    /// bounded scoped-thread fan-out, filling the per-compilation cache so
    /// a subsequent [`Lowerer::lower`] hits on every one of them.
    ///
    /// Decompositions are deterministic, so lowering after a prewarm emits
    /// ops **bit-identical** to a serial lowering — the parallelism only
    /// changes when the synthesis work happens, not its results. Gates
    /// lowered through precomputed per-edge circuits (SWAP, CNOT, and the
    /// ViaCnot analytic expansions) need no synthesis and are skipped, as
    /// are two-qubit gates off any device edge. `threads <= 1` is a no-op,
    /// preserving today's serial behavior.
    ///
    /// Prewarming never fails: a target whose synthesis does not converge
    /// is simply left out of the cache, so the follow-up `lower` call
    /// recomputes it serially and surfaces the error (or a `NotCoupled`)
    /// at exactly the op a fully serial lowering would.
    pub fn prewarm(&mut self, routed: &Circuit, threads: usize) {
        if threads <= 1 {
            return;
        }
        // Distinct pending targets, in circuit order.
        let mut pending: Vec<(CacheKey, Mat4, &SelectedBasis)> = Vec::new();
        let mut seen: HashSet<CacheKey> = HashSet::new();
        for op in routed.ops() {
            if op.qubits.len() < 2 {
                continue;
            }
            let (q0, q1) = (op.qubits[0], op.qubits[1]);
            let Some(edge_idx) = self.device.topology().edge_index(q0, q1) else {
                continue;
            };
            match &op.gate {
                Gate::Swap | Gate::Cx => continue,
                Gate::Cz | Gate::CPhase(_) | Gate::Rzz(_) if self.mode == LoweringMode::ViaCnot => {
                    continue
                }
                other => {
                    let cal = &self.device.edges()[edge_idx];
                    let basis = cal.basis(self.strategy);
                    let (g0, g1) = cal.gate_order;
                    let aligned = (q0, q1) == (g0, g1);
                    let key = CacheKey {
                        edge: edge_idx,
                        strategy_tag: strategy_tag(self.strategy),
                        kind: gate_kind_hash(other, aligned),
                    };
                    if self.cache.contains_key(&key) || !seen.insert(key) {
                        continue;
                    }
                    let target = if aligned || other.is_symmetric() {
                        other.mat4()
                    } else {
                        swap_conjugate(&other.mat4())
                    };
                    pending.push((key, target, basis));
                }
            }
        }
        if pending.is_empty() {
            return;
        }
        let workers = threads.min(pending.len());
        let shared = self.shared.clone();
        let mode = self.mode;
        let chunk_len = pending.len().div_ceil(workers);
        let results: Vec<(CacheKey, Synthesized2Q)> = std::thread::scope(|s| {
            let handles: Vec<_> = pending
                .chunks(chunk_len)
                .map(|chunk| {
                    let shared = shared.clone();
                    s.spawn(move || {
                        chunk
                            .iter()
                            .filter_map(|(key, target, basis)| {
                                let r = match &shared {
                                    Some(cache) => basis.decomposer.decompose_cached(
                                        target,
                                        mode_tag(mode),
                                        cache.as_ref(),
                                    ),
                                    None => basis.decomposer.decompose(target),
                                };
                                r.ok().map(|s| (*key, s))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        for (key, synth) in results {
            self.cache.insert(key, synth);
        }
    }
}

fn local(qubit: usize, unitary: Mat2) -> LoweredOp {
    LoweredOp::Local { qubit, unitary }
}

/// Cache-namespace tag of a lowering mode, used as the `tag` of shared
/// [`nsb_synth::SynthKey`]s so modes never share entries.
pub fn mode_tag(mode: LoweringMode) -> u8 {
    match mode {
        LoweringMode::ViaCnot => 0,
        LoweringMode::Direct => 1,
    }
}

fn strategy_tag(s: BasisStrategy) -> u8 {
    match s {
        BasisStrategy::Baseline => 0,
        BasisStrategy::Criterion1 => 1,
        BasisStrategy::Criterion2 => 2,
    }
}

/// Conjugates a two-qubit unitary by SWAP (reverses the tensor order).
pub fn swap_conjugate(m: &Mat4) -> Mat4 {
    Mat4::swap() * *m * Mat4::swap()
}

fn gate_kind_hash(gate: &Gate, aligned: bool) -> u64 {
    use nsb_synth::StableHasher;
    use std::hash::{Hash, Hasher};
    // The per-compilation cache is in-memory only, but keying it with the
    // same stable hasher as the shared/persisted caches keeps every
    // cache-key fingerprint in the workspace on one algorithm.
    let mut h = StableHasher::new();
    aligned.hash(&mut h);
    match gate {
        Gate::CPhase(l) => {
            1u8.hash(&mut h);
            quantize(*l).hash(&mut h);
        }
        Gate::Rzz(t) => {
            2u8.hash(&mut h);
            quantize(*t).hash(&mut h);
        }
        Gate::ISwap => 3u8.hash(&mut h),
        Gate::Cz => 4u8.hash(&mut h),
        Gate::Unitary2(m) => {
            5u8.hash(&mut h);
            for r in 0..4 {
                for c in 0..4 {
                    quantize(m.at(r, c).re).hash(&mut h);
                    quantize(m.at(r, c).im).hash(&mut h);
                }
            }
        }
        other => {
            6u8.hash(&mut h);
            other.to_string().hash(&mut h);
        }
    }
    h.finish()
}

fn quantize(x: f64) -> i64 {
    (x * 1e9).round() as i64
}

/// Merges runs of adjacent local gates per qubit and drops locals that are
/// the identity up to a global phase.
pub fn merge_locals(ops: Vec<LoweredOp>, n_qubits: usize) -> Vec<LoweredOp> {
    let mut pending: Vec<Option<Mat2>> = vec![None; n_qubits];
    let mut out = Vec::with_capacity(ops.len());
    let flush = |pending: &mut Vec<Option<Mat2>>, q: usize, out: &mut Vec<LoweredOp>| {
        if let Some(u) = pending[q].take() {
            // Drop identity-up-to-phase locals.
            if (2.0 - u.trace().abs()).abs() > 1e-10 {
                out.push(LoweredOp::Local {
                    qubit: q,
                    unitary: u,
                });
            }
        }
    };
    for op in ops {
        match op {
            LoweredOp::Local { qubit, unitary } => {
                pending[qubit] = Some(match pending[qubit] {
                    Some(prev) => unitary * prev,
                    None => unitary,
                });
            }
            LoweredOp::Entangler { qubits, .. } => {
                flush(&mut pending, qubits.0, &mut out);
                flush(&mut pending, qubits.1, &mut out);
                out.push(op);
            }
        }
    }
    for q in 0..n_qubits {
        flush(&mut pending, q, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_conjugate_of_cnot_is_reversed_cnot() {
        let rev = swap_conjugate(&Mat4::cnot());
        // Reversed CNOT: control = second qubit.
        let mut expected = Mat4::identity();
        expected[(1, 1)] = nsb_math::Complex64::ZERO;
        expected[(3, 3)] = nsb_math::Complex64::ZERO;
        expected[(1, 3)] = nsb_math::Complex64::ONE;
        expected[(3, 1)] = nsb_math::Complex64::ONE;
        assert!(rev.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn merge_collapses_local_runs() {
        let ops = vec![
            LoweredOp::Local {
                qubit: 0,
                unitary: Mat2::h(),
            },
            LoweredOp::Local {
                qubit: 0,
                unitary: Mat2::h(),
            },
            LoweredOp::Local {
                qubit: 1,
                unitary: Mat2::x(),
            },
        ];
        let merged = merge_locals(ops, 2);
        // H * H = identity is dropped entirely; X remains.
        assert_eq!(merged.len(), 1);
        match &merged[0] {
            LoweredOp::Local { qubit, unitary } => {
                assert_eq!(*qubit, 1);
                assert!(unitary.approx_eq(&Mat2::x(), 1e-12));
            }
            _ => panic!("expected local"),
        }
    }

    #[test]
    fn merge_respects_entangler_barriers() {
        let ent = LoweredOp::Entangler {
            qubits: (0, 1),
            duration: 10.0,
            gate: Mat4::cnot(),
        };
        let ops = vec![
            LoweredOp::Local {
                qubit: 0,
                unitary: Mat2::h(),
            },
            ent.clone(),
            LoweredOp::Local {
                qubit: 0,
                unitary: Mat2::h(),
            },
        ];
        let merged = merge_locals(ops, 2);
        // The two H's cannot merge across the entangler.
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn prewarm_then_lower_matches_serial_lowering_bit_for_bit() {
        use nsb_circuit::generators;
        use nsb_device::{BasisStrategy, DeviceConfig};
        let device = Device::build(3, 2, DeviceConfig::fast_test()).expect("test device");
        let logical = generators::qft(4, true);
        let routed =
            crate::sabre_route(&logical, device.topology(), &crate::SabreConfig::default())
                .expect("route");

        let mut serial = Lowerer::new(&device, BasisStrategy::Baseline, LoweringMode::Direct);
        let expected = serial.lower(&routed.circuit).expect("serial lower");

        let mut warmed = Lowerer::new(&device, BasisStrategy::Baseline, LoweringMode::Direct);
        warmed.prewarm(&routed.circuit, 4);
        let prewarmed_entries = warmed.cache_size();
        assert!(prewarmed_entries > 0, "prewarm cached nothing");
        let got = warmed.lower(&routed.circuit).expect("warmed lower");
        assert_eq!(
            warmed.cache_size(),
            prewarmed_entries,
            "lower recomputed a target prewarm should have cached"
        );

        // Debug output round-trips every f64 bit pattern, so string
        // equality here is bit-identity of the emitted ops.
        assert_eq!(got.len(), expected.len());
        assert_eq!(
            format!("{got:?}"),
            format!("{expected:?}"),
            "prewarmed lowering must be bit-identical to serial lowering"
        );
    }

    #[test]
    fn prewarm_with_one_thread_is_a_no_op() {
        use nsb_circuit::generators;
        use nsb_device::{BasisStrategy, DeviceConfig};
        let device = Device::build(3, 2, DeviceConfig::fast_test()).expect("test device");
        let logical = generators::qft(3, true);
        let routed =
            crate::sabre_route(&logical, device.topology(), &crate::SabreConfig::default())
                .expect("route");
        let mut lowerer = Lowerer::new(&device, BasisStrategy::Baseline, LoweringMode::Direct);
        lowerer.prewarm(&routed.circuit, 1);
        assert_eq!(lowerer.cache_size(), 0, "threads <= 1 must not synthesize");
    }

    #[test]
    fn quantized_hash_distinguishes_angles() {
        let a = gate_kind_hash(&Gate::CPhase(0.5), true);
        let b = gate_kind_hash(&Gate::CPhase(0.25), true);
        let c = gate_kind_hash(&Gate::CPhase(0.5), false);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, gate_kind_hash(&Gate::CPhase(0.5), true));
    }

    #[test]
    fn lower_error_variants_display_and_chain() {
        use std::error::Error;
        let synth = LowerError::Synthesis(SynthesisFailed {
            best_error: 1e-3,
            max_layers: 5,
        });
        assert!(synth.to_string().contains("synthesis failed"));
        assert!(synth.source().is_some(), "Synthesis wraps its cause");
        let nc = LowerError::NotCoupled { q0: 2, q1: 5 };
        assert!(nc.to_string().contains("2,5"));
        assert!(nc.source().is_none());
    }
}
