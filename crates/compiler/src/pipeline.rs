//! The end-to-end transpiler: SABRE mapping, basis lowering, local-gate
//! merging, scheduling, fidelity evaluation — plus statevector
//! verification for small devices.

use crate::lower::{LowerError, LoweredOp, Lowerer, LoweringMode};
use crate::sabre::{sabre_route, Layout, RouteError, SabreConfig};
use crate::schedule::{schedule, Schedule};
use nsb_circuit::{Circuit, Gate, StateVector};
use nsb_device::{BasisStrategy, Device};
use nsb_synth::SynthCache;
use nsb_verify::{
    ScheduleFacts, VerifierSuite, VerifyConfig, VerifyLevel, VerifyOp, VerifyReport, VerifyTarget,
};
use std::fmt;
use std::sync::Arc;

/// A compiled (hardware-level) program with its schedule and fidelity.
#[derive(Clone, Debug)]
pub struct CompiledCircuit {
    /// Lowered operation list on physical qubits.
    pub ops: Vec<LoweredOp>,
    /// Number of physical qubits.
    pub n_qubits: usize,
    /// Logical-to-physical layout before the first gate.
    pub initial_layout: Layout,
    /// Layout after the last gate (routing permutes qubits).
    pub final_layout: Layout,
    /// SWAPs inserted by routing.
    pub swaps_inserted: usize,
    /// Schedule summary.
    pub schedule: Schedule,
    /// Coherence-limited circuit fidelity (paper's noise model).
    pub fidelity: f64,
}

impl CompiledCircuit {
    /// Rebuilds the lowered program as an `nsb-circuit` circuit of
    /// explicit unitaries, for statevector verification.
    pub fn to_circuit(&self) -> Circuit {
        let mut c = Circuit::new(self.n_qubits);
        for op in &self.ops {
            match op {
                LoweredOp::Local { qubit, unitary } => {
                    c.push(Gate::Unitary1(*unitary), &[*qubit]);
                }
                LoweredOp::Entangler { qubits, gate, .. } => {
                    c.push(Gate::Unitary2(Box::new(*gate)), &[qubits.0, qubits.1]);
                }
            }
        }
        c
    }
}

/// Compilation failure.
#[derive(Clone, Debug)]
pub enum CompileError {
    /// Routing stalled (degenerate topology).
    Route(RouteError),
    /// Lowering failed (synthesis non-convergence or an unrouted gate).
    Lower(LowerError),
    /// An inter-pass verification found the compiled program invalid.
    Verification {
        /// The pipeline stage after which the suite ran.
        stage: &'static str,
        /// The full verifier report.
        report: VerifyReport,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Route(e) => write!(f, "compilation failed: {e}"),
            CompileError::Lower(e) => write!(f, "compilation failed: {e}"),
            CompileError::Verification { stage, report } => {
                write!(f, "verification failed after `{stage}`: {report}")
            }
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Route(e) => Some(e),
            CompileError::Lower(e) => Some(e),
            CompileError::Verification { .. } => None,
        }
    }
}

impl From<RouteError> for CompileError {
    fn from(e: RouteError) -> Self {
        CompileError::Route(e)
    }
}

impl From<LowerError> for CompileError {
    fn from(e: LowerError) -> Self {
        CompileError::Lower(e)
    }
}

/// Converts lowered operations into the verifier's IR view, attaching the
/// claimed Cartan coordinate (the calibrated basis class of the edge) to
/// every entangler so the verifier can cross-check it.
pub fn to_verify_ops(ops: &[LoweredOp], device: &Device, strategy: BasisStrategy) -> Vec<VerifyOp> {
    ops.iter()
        .map(|op| match op {
            LoweredOp::Local { qubit, unitary } => VerifyOp::Local {
                qubit: *qubit,
                unitary: *unitary,
            },
            LoweredOp::Entangler {
                qubits,
                duration,
                gate,
            } => VerifyOp::TwoQubit {
                qubits: *qubits,
                duration: *duration,
                unitary: *gate,
                coord: device
                    .topology()
                    .edge_index(qubits.0, qubits.1)
                    .map(|e| device.edges()[e].basis(strategy).coord),
            },
        })
        .collect()
}

/// Exposes a computed [`Schedule`] as claimed facts for the verifier's
/// independent recomputation to validate.
pub fn to_schedule_facts(sched: &Schedule) -> ScheduleFacts {
    ScheduleFacts {
        duration: sched.duration,
        windows: sched.windows.clone(),
        busy: sched.busy.clone(),
        entangler_count: sched.entangler_count,
        local_count: sched.local_count,
    }
}

/// The paper's default lowering mode for a strategy: the baseline
/// decomposes targets directly (standing in for the analytic sqrt(iSWAP)
/// formulas), the criteria route everything through the cached SWAP/CNOT
/// decompositions.
pub fn default_mode(strategy: BasisStrategy) -> LoweringMode {
    match strategy {
        BasisStrategy::Baseline => LoweringMode::Direct,
        _ => LoweringMode::ViaCnot,
    }
}

/// The transpiler, bound to a device and a basis-gate strategy.
pub struct Transpiler<'d> {
    device: &'d Device,
    strategy: BasisStrategy,
    mode: LoweringMode,
    sabre: SabreConfig,
    shared: Option<Arc<dyn SynthCache>>,
    verify: VerifyLevel,
    verify_config: VerifyConfig,
}

impl<'d> Transpiler<'d> {
    /// Creates a transpiler with the mode defaults of [`default_mode`].
    /// The verification level starts at [`VerifyLevel::from_env`] (the
    /// `NSB_VERIFY` variable, or debug-only when unset).
    pub fn new(device: &'d Device, strategy: BasisStrategy) -> Self {
        Transpiler {
            device,
            strategy,
            mode: default_mode(strategy),
            sabre: SabreConfig::default(),
            shared: None,
            verify: VerifyLevel::from_env(),
            verify_config: VerifyConfig::default(),
        }
    }

    /// Overrides the lowering mode (for ablation studies).
    pub fn with_mode(mut self, mode: LoweringMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the SABRE configuration.
    pub fn with_sabre(mut self, sabre: SabreConfig) -> Self {
        self.sabre = sabre;
        self
    }

    /// Attaches a shared synthesis cache (see
    /// [`Lowerer::with_shared_cache`]); compilation output is unaffected,
    /// only repeated decomposition work is skipped.
    pub fn with_shared_cache(mut self, cache: Arc<dyn SynthCache>) -> Self {
        self.shared = Some(cache);
        self
    }

    /// Sets the inter-pass verification level.
    ///
    /// The default, [`VerifyLevel::Debug`], runs the verifier suites only in
    /// debug builds (a compiled-in debug assertion); [`VerifyLevel::Full`]
    /// always runs them and [`VerifyLevel::Off`] disables them entirely.
    pub fn with_verification(mut self, level: VerifyLevel) -> Self {
        self.verify = level;
        self
    }

    /// Overrides tolerances used by inter-pass verification.
    pub fn with_verify_config(mut self, config: VerifyConfig) -> Self {
        self.verify_config = config;
        self
    }

    /// Compiles a logical circuit to the device.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when routing stalls, a direct decomposition
    /// fails, or (with verification enabled) an inter-pass check rejects the
    /// compiled program.
    pub fn compile(&self, circuit: &Circuit) -> Result<CompiledCircuit, CompileError> {
        let routed = sabre_route(circuit, self.device.topology(), &self.sabre)?;
        if self.verify.is_enabled() {
            // Post-routing checkpoint: every remaining two-qubit gate must
            // sit on a coupled pair; lowering relies on this.
            let suite = VerifierSuite::structural().with_config(self.verify_config);
            let target = VerifyTarget::new(self.device, self.strategy, Vec::new())
                .with_source(&routed.circuit);
            let report = suite.run(&target);
            if !report.is_clean() {
                return Err(CompileError::Verification {
                    stage: "route",
                    report,
                });
            }
        }
        let mut lowerer = Lowerer::new(self.device, self.strategy, self.mode);
        if let Some(shared) = &self.shared {
            lowerer = lowerer.with_shared_cache(shared.clone());
        }
        let ops = lowerer.lower(&routed.circuit)?;
        let n_qubits = self.device.topology().n_qubits();
        let sched = schedule(&ops, n_qubits, self.device.config().t_1q);
        if self.verify.is_enabled() {
            // Post-lowering checkpoint: basis legality, Weyl canonicality,
            // schedule consistency and (for small devices) full unitary
            // equivalence against the routed source.
            let suite = VerifierSuite::standard().with_config(self.verify_config);
            let vops = to_verify_ops(&ops, self.device, self.strategy);
            let target = VerifyTarget::new(self.device, self.strategy, vops)
                .with_source(&routed.circuit)
                .with_schedule(to_schedule_facts(&sched));
            let report = suite.run(&target);
            if !report.is_clean() {
                return Err(CompileError::Verification {
                    stage: "lower",
                    report,
                });
            }
        }
        let fidelity = sched.coherence_fidelity(self.device.config().coherence_time);
        Ok(CompiledCircuit {
            ops,
            n_qubits,
            initial_layout: routed.initial_layout,
            final_layout: routed.final_layout,
            swaps_inserted: routed.swaps_inserted,
            schedule: sched,
            fidelity,
        })
    }
}

/// Verifies a compiled circuit against its logical source by statevector
/// simulation (only feasible for small devices; used by tests and the
/// verification example).
///
/// Probes several input states prepared by small circuits; returns the
/// minimum overlap `|<expected|actual>|` observed.
///
/// # Panics
///
/// Panics when the device is too large to simulate (> 16 qubits).
pub fn verify_compiled(logical: &Circuit, compiled: &CompiledCircuit) -> f64 {
    assert!(
        compiled.n_qubits <= 16,
        "statevector verification limited to 16 physical qubits"
    );
    let n_l = logical.n_qubits();
    let phys_circuit = compiled.to_circuit();
    let mut min_overlap = f64::INFINITY;
    for probe in probe_circuits(n_l) {
        // Logical evolution.
        let mut expected = StateVector::zero(n_l);
        expected.apply_circuit(&probe);
        expected.apply_circuit(logical);
        // Physical evolution: same preparation embedded by the initial
        // layout, then the compiled program.
        let embed_map = &compiled.initial_layout.logical_to_physical;
        let prep_phys = probe.remapped(embed_map, compiled.n_qubits);
        let mut actual = StateVector::zero(compiled.n_qubits);
        actual.apply_circuit(&prep_phys);
        actual.apply_circuit(&phys_circuit);
        // Compare: logical amplitudes live at the final layout's hosts.
        let final_map = &compiled.final_layout.logical_to_physical;
        let n_p = compiled.n_qubits;
        let mut overlap = nsb_math::Complex64::ZERO;
        for x in 0..(1usize << n_l) {
            let mut phys_index = 0usize;
            for (l, &host) in final_map.iter().enumerate().take(n_l) {
                if x >> (n_l - 1 - l) & 1 == 1 {
                    phys_index |= 1 << (n_p - 1 - host);
                }
            }
            overlap += expected.amplitudes()[x].conj() * actual.amplitudes()[phys_index];
        }
        min_overlap = min_overlap.min(overlap.abs());
    }
    min_overlap
}

/// A small, fixed family of state-preparation circuits exercising basis
/// states, superpositions and phases.
fn probe_circuits(n: usize) -> Vec<Circuit> {
    let mut probes = Vec::new();
    probes.push(Circuit::new(n)); // |0...0>
    let mut ones = Circuit::new(n);
    for q in 0..n {
        ones.push(Gate::X, &[q]);
    }
    probes.push(ones);
    let mut plus = Circuit::new(n);
    for q in 0..n {
        plus.push(Gate::H, &[q]);
        if q % 2 == 0 {
            plus.push(Gate::T, &[q]);
        }
    }
    probes.push(plus);
    let mut mixed = Circuit::new(n);
    for q in 0..n {
        match q % 3 {
            0 => {
                mixed.push(Gate::H, &[q]);
            }
            1 => {
                mixed.push(Gate::X, &[q]);
            }
            _ => {
                mixed.push(Gate::H, &[q]);
                mixed.push(Gate::S, &[q]);
            }
        }
    }
    probes.push(mixed);
    probes
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsb_circuit::generators;
    use nsb_device::DeviceConfig;
    use std::sync::OnceLock;

    fn test_device() -> &'static Device {
        static DEVICE: OnceLock<Device> = OnceLock::new();
        DEVICE.get_or_init(|| Device::build(3, 2, DeviceConfig::fast_test()).expect("test device"))
    }

    #[test]
    fn ghz_compiles_and_verifies_on_all_strategies() {
        let device = test_device();
        let logical = generators::ghz(4);
        for strategy in BasisStrategy::ALL {
            let compiled = Transpiler::new(device, strategy)
                .compile(&logical)
                .expect("compile");
            assert!(compiled.fidelity > 0.9, "{strategy}: {}", compiled.fidelity);
            let overlap = verify_compiled(&logical, &compiled);
            assert!(overlap > 0.999, "{strategy}: min overlap {overlap} too low");
        }
    }

    #[test]
    fn qft_compiles_and_verifies() {
        let device = test_device();
        let logical = generators::qft(4, true);
        for strategy in [BasisStrategy::Baseline, BasisStrategy::Criterion2] {
            let compiled = Transpiler::new(device, strategy)
                .compile(&logical)
                .expect("compile");
            let overlap = verify_compiled(&logical, &compiled);
            assert!(overlap > 0.999, "{strategy}: overlap {overlap}");
        }
    }

    #[test]
    fn criterion_gates_produce_faster_circuits() {
        let device = test_device();
        let logical = generators::qft(5, true);
        let base = Transpiler::new(device, BasisStrategy::Baseline)
            .with_mode(LoweringMode::ViaCnot)
            .compile(&logical)
            .expect("baseline");
        let c1 = Transpiler::new(device, BasisStrategy::Criterion1)
            .compile(&logical)
            .expect("criterion 1");
        assert!(
            c1.schedule.duration < base.schedule.duration,
            "criterion1 {} vs baseline {}",
            c1.schedule.duration,
            base.schedule.duration
        );
        assert!(c1.fidelity > base.fidelity);
    }

    #[test]
    fn direct_mode_agrees_with_via_cnot() {
        let device = test_device();
        let logical = generators::qft(3, false);
        let direct = Transpiler::new(device, BasisStrategy::Criterion2)
            .with_mode(LoweringMode::Direct)
            .compile(&logical)
            .expect("direct");
        let via = Transpiler::new(device, BasisStrategy::Criterion2)
            .compile(&logical)
            .expect("via cnot");
        for c in [&direct, &via] {
            let overlap = verify_compiled(&logical, c);
            assert!(overlap > 0.999, "overlap {overlap}");
        }
        // Direct mode uses fewer or equal entanglers (CPhase needs 2 native
        // gates directly vs 2 CNOTs x layers via expansion).
        assert!(direct.schedule.entangler_count <= via.schedule.entangler_count);
    }

    #[test]
    fn bv_compiles_with_expected_structure() {
        let device = test_device();
        let logical = generators::bv_all_ones(5);
        let compiled = Transpiler::new(device, BasisStrategy::Criterion2)
            .compile(&logical)
            .expect("compile");
        assert!(compiled.schedule.entangler_count >= 4 * 2);
        let overlap = verify_compiled(&logical, &compiled);
        assert!(overlap > 0.999, "overlap {overlap}");
    }

    #[test]
    fn compile_error_variants_display_and_chain() {
        use std::error::Error;
        let route = CompileError::from(RouteError::NoSwapCandidates { qubits: (0, 3) });
        assert!(matches!(route, CompileError::Route(_)));
        assert!(route.to_string().contains("routing stalled"));
        assert!(route.source().is_some());

        let lower = CompileError::from(LowerError::NotCoupled { q0: 1, q1: 2 });
        assert!(matches!(lower, CompileError::Lower(_)));
        assert!(lower.source().is_some());

        let verification = CompileError::Verification {
            stage: "lower",
            report: VerifyReport::default(),
        };
        assert!(verification.to_string().contains("after `lower`"));
        assert!(verification.source().is_none());
    }
}
