//! Qubit frequency allocation (paper Section VIII-C, Figure 7): a
//! checkerboard of high- and low-frequency transmons, each group sampled
//! from a normal distribution; neighboring qubits always come from
//! different groups so every pair is far detuned.

use crate::topology::GridTopology;
use nsb_math::standard_normal;
use rand::Rng;

/// Parameters of the frequency allocator.
#[derive(Clone, Copy, Debug)]
pub struct FrequencyPlan {
    /// Mean of the low-frequency group (GHz).
    pub low_mean: f64,
    /// Mean of the high-frequency group (GHz).
    pub high_mean: f64,
    /// Relative standard deviation (paper: 5%, deliberately pessimistic
    /// versus the ~0.5% of laser-annealed junctions).
    pub rel_std: f64,
}

impl Default for FrequencyPlan {
    fn default() -> Self {
        FrequencyPlan {
            low_mean: 4.3,
            high_mean: 6.3,
            rel_std: 0.05,
        }
    }
}

/// Per-qubit frequencies in GHz, checkerboard-allocated on the grid.
#[derive(Clone, Debug)]
pub struct FrequencyAllocation {
    freqs: Vec<f64>,
    is_high: Vec<bool>,
}

impl FrequencyAllocation {
    /// Samples frequencies for every qubit of the grid.
    pub fn sample<R: Rng + ?Sized>(grid: &GridTopology, plan: &FrequencyPlan, rng: &mut R) -> Self {
        let n = grid.n_qubits();
        let mut freqs = Vec::with_capacity(n);
        let mut is_high = Vec::with_capacity(n);
        for q in 0..n {
            let (r, c) = grid.position(q);
            let high = (r + c) % 2 == 1;
            let mean = if high { plan.high_mean } else { plan.low_mean };
            // Truncate at +-2 sigma: fabrication screening discards extreme
            // outliers, and it keeps every pair far detuned enough for the
            // dressed computational subspace to stay identifiable.
            let z = standard_normal(rng).clamp(-2.0, 2.0);
            let f = mean * (1.0 + plan.rel_std * z);
            freqs.push(f);
            is_high.push(high);
        }
        FrequencyAllocation { freqs, is_high }
    }

    /// Frequency of qubit `q` in GHz.
    pub fn frequency(&self, q: usize) -> f64 {
        self.freqs[q]
    }

    /// Whether qubit `q` belongs to the high-frequency group.
    pub fn is_high_group(&self, q: usize) -> bool {
        self.is_high[q]
    }

    /// All frequencies (GHz).
    pub fn frequencies(&self) -> &[f64] {
        &self.freqs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn neighbors_are_in_different_groups() {
        let g = GridTopology::new(10, 10);
        let mut rng = StdRng::seed_from_u64(1);
        let alloc = FrequencyAllocation::sample(&g, &FrequencyPlan::default(), &mut rng);
        for (a, b) in g.edges() {
            assert_ne!(
                alloc.is_high_group(a),
                alloc.is_high_group(b),
                "edge ({a},{b}) in the same group"
            );
        }
    }

    #[test]
    fn group_statistics_match_plan() {
        let g = GridTopology::new(10, 10);
        let plan = FrequencyPlan::default();
        let mut rng = StdRng::seed_from_u64(2);
        let alloc = FrequencyAllocation::sample(&g, &plan, &mut rng);
        let lows: Vec<f64> = (0..100)
            .filter(|&q| !alloc.is_high_group(q))
            .map(|q| alloc.frequency(q))
            .collect();
        let mean = lows.iter().sum::<f64>() / lows.len() as f64;
        assert!((mean - plan.low_mean).abs() < 0.15, "low mean {mean}");
        let var = lows.iter().map(|f| (f - mean) * (f - mean)).sum::<f64>() / lows.len() as f64;
        let rel = var.sqrt() / plan.low_mean;
        assert!((rel - plan.rel_std).abs() < 0.025, "rel std {rel}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let g = GridTopology::new(4, 4);
        let plan = FrequencyPlan::default();
        let a = FrequencyAllocation::sample(&g, &plan, &mut StdRng::seed_from_u64(9));
        let b = FrequencyAllocation::sample(&g, &plan, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.frequencies(), b.frequencies());
    }
}
