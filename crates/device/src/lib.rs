//! # nsb-device
//!
//! The simulated device of the paper's case study: a grid of
//! fixed-frequency transmons with checkerboard frequency allocation, a
//! tunable coupler per edge, per-edge Cartan trajectories at two drive
//! amplitudes, and per-edge basis gates selected by the Baseline /
//! Criterion 1 / Criterion 2 strategies — each with its cached SWAP and
//! CNOT decompositions (paper Sections V-E, VI and VIII).
//!
//! ```no_run
//! use nsb_device::{BasisStrategy, Device, DeviceConfig};
//!
//! let device = Device::build(10, 10, DeviceConfig::default()).unwrap();
//! let row = device.table1_row(BasisStrategy::Criterion1);
//! println!("mean basis gate: {:.2} ns", row.basis_duration);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibration;
mod coherence;
mod device;
mod freq;
mod topology;

pub use calibration::{
    initial_tuneup, retune, tuneup_from_trajectory, CandidateGate, TomographyModel, TuneupResult,
};
pub use coherence::{
    coherence_fidelity_2q, coherence_limit_1q, coherence_limit_2q, synthesized_duration,
};
pub use device::{
    BasisStrategy, Device, DeviceBuildError, DeviceConfig, EdgeCalibration, SelectedBasis,
    SynthesizedGate, Table1Row,
};
pub use freq::{FrequencyAllocation, FrequencyPlan};
pub use topology::GridTopology;
