//! Grid coupling topology (paper Figure 7: a 10x10 lattice).

/// A rectangular grid of qubits with nearest-neighbor coupling.
///
/// Qubit `(row, col)` has index `row * width + col`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridTopology {
    width: usize,
    height: usize,
}

impl GridTopology {
    /// Creates a `width x height` grid.
    ///
    /// # Panics
    ///
    /// Panics for an empty grid.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 1 && height >= 1, "empty grid");
        GridTopology { width, height }
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.width * self.height
    }

    /// Row and column of a qubit index.
    pub fn position(&self, q: usize) -> (usize, usize) {
        (q / self.width, q % self.width)
    }

    /// Qubit index at a position.
    pub fn qubit_at(&self, row: usize, col: usize) -> usize {
        row * self.width + col
    }

    /// All coupling edges `(low, high)` in a fixed deterministic order:
    /// horizontal edges row by row, then vertical edges.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut e = Vec::new();
        for r in 0..self.height {
            for c in 0..self.width.saturating_sub(1) {
                e.push((self.qubit_at(r, c), self.qubit_at(r, c + 1)));
            }
        }
        for r in 0..self.height.saturating_sub(1) {
            for c in 0..self.width {
                e.push((self.qubit_at(r, c), self.qubit_at(r + 1, c)));
            }
        }
        e
    }

    /// Index of the edge `(a, b)` in [`GridTopology::edges`] order, if the
    /// qubits are adjacent.
    pub fn edge_index(&self, a: usize, b: usize) -> Option<usize> {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (r, c) = self.position(lo);
        let horizontal_count = self.height * (self.width - 1);
        if hi == lo + 1 && c + 1 < self.width {
            Some(r * (self.width - 1) + c)
        } else if hi == lo + self.width && r + 1 < self.height {
            Some(horizontal_count + r * self.width + c)
        } else {
            None
        }
    }

    /// Whether two qubits are coupled.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        self.edge_index(a, b).is_some()
    }

    /// Neighbors of a qubit.
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        let (r, c) = self.position(q);
        let mut out = Vec::with_capacity(4);
        if c > 0 {
            out.push(self.qubit_at(r, c - 1));
        }
        if c + 1 < self.width {
            out.push(self.qubit_at(r, c + 1));
        }
        if r > 0 {
            out.push(self.qubit_at(r - 1, c));
        }
        if r + 1 < self.height {
            out.push(self.qubit_at(r + 1, c));
        }
        out
    }

    /// All-pairs shortest-path distances (Manhattan on a grid).
    pub fn distances(&self) -> Vec<Vec<usize>> {
        let n = self.n_qubits();
        let mut d = vec![vec![0usize; n]; n];
        for (a, row) in d.iter_mut().enumerate() {
            let (ra, ca) = self.position(a);
            for (b, slot) in row.iter_mut().enumerate() {
                let (rb, cb) = self.position(b);
                *slot = ra.abs_diff(rb) + ca.abs_diff(cb);
            }
        }
        d
    }

    /// A proper edge coloring with at most 4 colors (horizontal edges by
    /// column parity, vertical by row parity), used to schedule parallel
    /// calibration: same-color edges share no qubit (paper Section VI).
    pub fn edge_coloring(&self) -> Vec<usize> {
        self.edges()
            .iter()
            .map(|&(a, b)| {
                let (ra, ca) = self.position(a);
                let (_, cb) = self.position(b);
                if ca != cb {
                    ca % 2
                } else {
                    2 + ra % 2
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_by_ten_has_180_edges() {
        let g = GridTopology::new(10, 10);
        assert_eq!(g.n_qubits(), 100);
        assert_eq!(g.edges().len(), 180);
    }

    #[test]
    fn edge_index_round_trip() {
        let g = GridTopology::new(4, 3);
        for (i, &(a, b)) in g.edges().iter().enumerate() {
            assert_eq!(g.edge_index(a, b), Some(i));
            assert_eq!(g.edge_index(b, a), Some(i));
            assert!(g.are_adjacent(a, b));
        }
        assert_eq!(g.edge_index(0, 5), None);
        assert!(!g.are_adjacent(0, 2));
    }

    #[test]
    fn neighbors_of_corner_and_center() {
        let g = GridTopology::new(3, 3);
        assert_eq!(g.neighbors(0), vec![1, 3]);
        let mut center = g.neighbors(4);
        center.sort();
        assert_eq!(center, vec![1, 3, 5, 7]);
    }

    #[test]
    fn distances_are_manhattan() {
        let g = GridTopology::new(5, 5);
        let d = g.distances();
        assert_eq!(d[0][24], 8);
        assert_eq!(d[0][0], 0);
        assert_eq!(d[2][22], 4);
    }

    #[test]
    fn edge_coloring_is_proper_with_4_colors() {
        let g = GridTopology::new(10, 10);
        let colors = g.edge_coloring();
        let edges = g.edges();
        assert!(colors.iter().all(|&c| c < 4));
        for i in 0..edges.len() {
            for j in (i + 1)..edges.len() {
                if colors[i] != colors[j] {
                    continue;
                }
                let (a, b) = edges[i];
                let (c, d) = edges[j];
                assert!(
                    a != c && a != d && b != c && b != d,
                    "same-color edges {i} and {j} share a qubit"
                );
            }
        }
    }
}
