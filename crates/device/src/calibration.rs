//! The two-stage calibration protocol of Section VI, against the pulse
//! simulator standing in for the quantum device.
//!
//! Stage 1 ("initial tuneup"): coarse amplitude/frequency tuning, QPT of
//! every gate along the trajectory, candidate narrowing via the Section V
//! region geometry, and a GST-precision refinement of the survivors.
//!
//! Stage 2 ("retuning"): a cheap daily re-estimate of the selected gate
//! that reuses the previously found duration and drive settings.
//!
//! Tomography here is statistically modeled: the estimate of a gate is the
//! polar projection of `U + noise`, with per-component Gaussian noise of
//! scale `~1/sqrt(shots)` — the asymptotic behavior of linear-inversion
//! QPT. GST differs by a higher effective shot budget (and in reality by
//! SPAM self-consistency, which has no analogue in this noiseless-SPAM
//! simulation). See DESIGN.md for the substitution note.

use nsb_math::{complex_normal, polar_unitary4, Mat4};
use nsb_sim::{CartanTrajectory, PreparedCell, TrajectoryConfig};
use nsb_weyl::{kak_vector, SelectionCriterion, WeylCoord};
use rand::Rng;

/// Statistical model of a tomographic characterization.
#[derive(Clone, Copy, Debug)]
pub struct TomographyModel {
    /// Number of measurement shots per configuration.
    pub shots: u64,
    /// Noise amplification constant mapping shots to matrix-element noise.
    pub noise_scale: f64,
}

impl TomographyModel {
    /// Typical quick QPT: enough to localize candidates but not to compile
    /// against (paper: "we are not able to narrow down to one basis gate
    /// due to the imprecision of QPT").
    pub fn qpt() -> Self {
        TomographyModel {
            shots: 4_000,
            noise_scale: 2.0,
        }
    }

    /// GST-grade characterization: an order of magnitude more effective
    /// statistics after the self-consistent fit.
    pub fn gst() -> Self {
        TomographyModel {
            shots: 400_000,
            noise_scale: 2.0,
        }
    }

    /// Produces an estimated unitary for a true gate.
    pub fn estimate<R: Rng + ?Sized>(&self, truth: &Mat4, rng: &mut R) -> Mat4 {
        let sigma = self.noise_scale / (self.shots as f64).sqrt();
        let mut noisy = *truth;
        for r in 0..4 {
            for c in 0..4 {
                noisy[(r, c)] += complex_normal(rng).scale(sigma);
            }
        }
        polar_unitary4(&noisy)
    }

    /// Expected estimation error scale (Frobenius) for sanity checks.
    pub fn expected_error(&self) -> f64 {
        self.noise_scale / (self.shots as f64).sqrt() * 4.0
    }
}

/// A candidate basis gate surviving the QPT narrowing stage.
#[derive(Clone, Debug)]
pub struct CandidateGate {
    /// Index into the trajectory.
    pub index: usize,
    /// Pulse duration (ns).
    pub duration: f64,
    /// QPT-estimated unitary.
    pub qpt_estimate: Mat4,
    /// Coordinates of the QPT estimate.
    pub qpt_coord: WeylCoord,
}

/// The outcome of an initial tuneup for one edge and one criterion.
#[derive(Clone, Debug)]
pub struct TuneupResult {
    /// Candidates that passed the criterion under QPT coordinates.
    pub candidates: Vec<CandidateGate>,
    /// Index (into the trajectory) of the selected gate.
    pub selected_index: usize,
    /// GST-refined unitary of the selected gate — the unitary handed to
    /// the compiler.
    pub refined_gate: Mat4,
    /// Coordinates of the refined gate.
    pub refined_coord: WeylCoord,
    /// True pulse duration of the selected gate (ns).
    pub duration: f64,
}

/// Runs the initial tuneup stage for a prepared cell at drive amplitude
/// `xi`: simulate the trajectory (steps 1-2), narrow candidates with the
/// criterion's region geometry applied to QPT estimates (step 3), then
/// refine the fastest few candidates with GST and select (step 4).
pub fn initial_tuneup<R: Rng + ?Sized>(
    cell: &PreparedCell,
    xi: f64,
    criterion: SelectionCriterion,
    min_entangling_power: f64,
    max_leakage: f64,
    traj_config: &TrajectoryConfig,
    rng: &mut R,
) -> Option<(CartanTrajectory, TuneupResult)> {
    let traj = cell.trajectory(xi, traj_config);
    let result = tuneup_from_trajectory(&traj, criterion, min_entangling_power, max_leakage, rng)?;
    Some((traj, result))
}

/// The tuneup logic given an already-simulated trajectory (shared by the
/// initial tuneup and by tests).
pub fn tuneup_from_trajectory<R: Rng + ?Sized>(
    traj: &CartanTrajectory,
    criterion: SelectionCriterion,
    min_entangling_power: f64,
    max_leakage: f64,
    rng: &mut R,
) -> Option<TuneupResult> {
    let qpt = TomographyModel::qpt();
    let gst = TomographyModel::gst();
    // Step 2-3: QPT every point, keep those passing the criterion on the
    // *estimated* coordinates. Points whose measured leakage exceeds the
    // quality ceiling are rejected outright: an experimentalist would not
    // calibrate a gate that visibly loses population.
    let mut candidates = Vec::new();
    for (i, p) in traj.points.iter().enumerate() {
        if p.leakage > max_leakage {
            continue;
        }
        let est = qpt.estimate(&p.gate, rng);
        let coord = kak_vector(&est);
        if criterion.accepts(coord) && nsb_weyl::entangling_power(coord) >= min_entangling_power {
            candidates.push(CandidateGate {
                index: i,
                duration: p.duration,
                qpt_estimate: est,
                qpt_coord: coord,
            });
        }
    }
    if candidates.is_empty() {
        return None;
    }
    // Step 4: GST-refine the fastest few candidates; select the fastest
    // whose *refined* coordinates still pass the criterion.
    for cand in candidates.iter().take(5) {
        let p = &traj.points[cand.index];
        let refined = gst.estimate(&p.gate, rng);
        let coord = kak_vector(&refined);
        if criterion.accepts(coord) && nsb_weyl::entangling_power(coord) >= min_entangling_power {
            return Some(TuneupResult {
                selected_index: cand.index,
                refined_gate: refined,
                refined_coord: coord,
                duration: p.duration,
                candidates,
            });
        }
    }
    None
}

/// The retuning stage: re-estimates the previously selected gate at
/// GST precision without re-scanning the trajectory (paper: 1-5 minutes
/// per basis gate instead of a full tuneup).
pub fn retune<R: Rng + ?Sized>(
    traj: &CartanTrajectory,
    previous: &TuneupResult,
    rng: &mut R,
) -> TuneupResult {
    let gst = TomographyModel::gst();
    let p = &traj.points[previous.selected_index];
    let refined = gst.estimate(&p.gate, rng);
    TuneupResult {
        candidates: previous.candidates.clone(),
        selected_index: previous.selected_index,
        refined_coord: kak_vector(&refined),
        refined_gate: refined,
        duration: p.duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tomography_error_scales_with_shots() {
        let mut rng = StdRng::seed_from_u64(5);
        let truth = Mat4::sqrt_iswap();
        let few = TomographyModel {
            shots: 100,
            noise_scale: 2.0,
        };
        let many = TomographyModel {
            shots: 1_000_000,
            noise_scale: 2.0,
        };
        let avg_err = |m: &TomographyModel, rng: &mut StdRng| {
            (0..12)
                .map(|_| (m.estimate(&truth, rng) - truth).norm())
                .sum::<f64>()
                / 12.0
        };
        let e_few = avg_err(&few, &mut rng);
        let e_many = avg_err(&many, &mut rng);
        assert!(e_few > 20.0 * e_many, "few {e_few:.2e} many {e_many:.2e}");
        assert!(e_many < 1e-2);
    }

    #[test]
    fn estimates_are_unitary() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = TomographyModel::qpt();
        let est = m.estimate(&Mat4::cnot(), &mut rng);
        assert!(est.is_unitary(1e-9));
    }

    #[test]
    fn gst_refinement_recovers_coordinates() {
        let mut rng = StdRng::seed_from_u64(7);
        let truth = nsb_weyl::canonical_gate(WeylCoord::new(0.3, 0.22, 0.05));
        let gst = TomographyModel::gst();
        let est = gst.estimate(&truth, &mut rng);
        let c = kak_vector(&est);
        assert!(c.dist(WeylCoord::new(0.3, 0.22, 0.05)) < 5e-3, "{c}");
    }
}
