//! Coherence-limited gate fidelities: a re-implementation of the closed
//! forms behind Qiskit Ignis' `coherence_limit` (the function the paper
//! uses for Table I).

/// Average-gate-infidelity coherence limit for a single qubit with
/// relaxation time `t1`, dephasing time `t2`, over a gate of length
/// `gate_len` (same time units).
pub fn coherence_limit_1q(t1: f64, t2: f64, gate_len: f64) -> f64 {
    0.5 * (1.0 - (2.0 / 3.0) * (-gate_len / t2).exp() - (1.0 / 3.0) * (-gate_len / t1).exp())
}

/// Average-gate-infidelity coherence limit for a two-qubit gate, given the
/// per-qubit `t1` and `t2` lists. For `t1 = t2 = T` this expands to
/// `1.2 * gate_len / T` at small `gate_len`.
pub fn coherence_limit_2q(t1: [f64; 2], t2: [f64; 2], gate_len: f64) -> f64 {
    let mut t1f = 0.0;
    let mut t2f = 0.0;
    for i in 0..2 {
        t1f += (1.0 / 15.0) * (-gate_len / t1[i]).exp();
        t2f += (2.0 / 15.0)
            * ((-gate_len / t2[i]).exp() + (-gate_len * (1.0 / t2[i] + 1.0 / t1[1 - i])).exp());
    }
    t1f += (1.0 / 15.0) * (-gate_len * (1.0 / t1[0] + 1.0 / t1[1])).exp();
    t2f += (4.0 / 15.0) * (-gate_len * (1.0 / t2[0] + 1.0 / t2[1])).exp();
    0.75 * (1.0 - t1f - t2f)
}

/// Convenience: two-qubit coherence-limited *fidelity* with a single
/// coherence time `T` for all qubits and channels, the noise model of the
/// paper's case study (`T = 80 us`).
pub fn coherence_fidelity_2q(t: f64, gate_len: f64) -> f64 {
    1.0 - coherence_limit_2q([t, t], [t, t], gate_len)
}

/// Duration of a gate synthesized as `layers` entangling layers of duration
/// `t_2q` interleaved with `layers + 1` local layers of duration `t_1q`
/// (this reproduces Table I's arithmetic, e.g. 3 x 83.04 + 4 x 20 =
/// 329.1 ns for the baseline SWAP).
pub fn synthesized_duration(layers: usize, t_2q: f64, t_1q: f64) -> f64 {
    layers as f64 * t_2q + (layers + 1) as f64 * t_1q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_vanish_at_zero_duration() {
        assert!(coherence_limit_1q(80e3, 80e3, 0.0).abs() < 1e-15);
        assert!(coherence_limit_2q([80e3; 2], [80e3; 2], 0.0).abs() < 1e-15);
    }

    #[test]
    fn small_time_expansion_2q_is_1p2_t_over_big_t() {
        let t = 80_000.0;
        let dt = 10.0;
        let err = coherence_limit_2q([t; 2], [t; 2], dt);
        let expected = 1.2 * dt / t;
        assert!(
            (err / expected - 1.0).abs() < 1e-3,
            "err {err:.3e} vs 1.2 t/T {expected:.3e}"
        );
    }

    #[test]
    fn small_time_expansion_1q_is_half_t_over_big_t() {
        let t = 80_000.0;
        let dt = 20.0;
        let err = coherence_limit_1q(t, t, dt);
        assert!((err / (0.5 * dt / t) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn monotone_in_duration() {
        let t = 80_000.0;
        let mut prev = 0.0;
        for k in 1..20 {
            let e = coherence_limit_2q([t; 2], [t; 2], k as f64 * 25.0);
            assert!(e > prev);
            prev = e;
        }
    }

    #[test]
    fn table1_duration_arithmetic() {
        // Baseline SWAP: 3 layers of 83.04 ns + 4 local layers of 20 ns.
        assert!((synthesized_duration(3, 83.04, 20.0) - 329.12).abs() < 1e-9);
        // Criterion-2 CNOT: 2 x 10.76 + 3 x 20 = 81.52 ns.
        assert!((synthesized_duration(2, 10.76, 20.0) - 81.52).abs() < 1e-9);
    }
}
