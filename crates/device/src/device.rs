//! The simulated 10x10 device: per-edge trajectories, basis-gate selection
//! under the three strategies, and per-edge decomposition caches
//! (paper Section VIII-C).

use crate::calibration::{tuneup_from_trajectory, TomographyModel};
use crate::coherence::{coherence_fidelity_2q, synthesized_duration};
use crate::freq::{FrequencyAllocation, FrequencyPlan};
use crate::topology::GridTopology;
use nsb_math::Mat4;
use nsb_sim::{PreparedCell, TrajectoryConfig, UnitCellParams};
use nsb_synth::{Decomposer, DecomposerConfig, Synthesized2Q};
use nsb_weyl::{SelectionCriterion, WeylCoord};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// The three basis-gate strategies compared in the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BasisStrategy {
    /// sqrt(iSWAP) from the standard slow trajectory (xi = 0.005 Phi_0).
    Baseline,
    /// Fastest gate on the strong-drive trajectory able to synthesize SWAP
    /// in 3 layers.
    Criterion1,
    /// Fastest gate able to synthesize SWAP in 3 layers AND CNOT in 2.
    Criterion2,
}

impl BasisStrategy {
    /// All strategies in report order.
    pub const ALL: [BasisStrategy; 3] = [
        BasisStrategy::Baseline,
        BasisStrategy::Criterion1,
        BasisStrategy::Criterion2,
    ];
}

impl fmt::Display for BasisStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasisStrategy::Baseline => write!(f, "Baseline"),
            BasisStrategy::Criterion1 => write!(f, "Criterion 1"),
            BasisStrategy::Criterion2 => write!(f, "Criterion 2"),
        }
    }
}

/// A cached decomposition of a common target into one edge's basis gate.
#[derive(Clone, Debug)]
pub struct SynthesizedGate {
    /// The synthesized circuit (locals + layer count).
    pub circuit: Synthesized2Q,
    /// Wall-clock duration including local layers (ns).
    pub duration: f64,
}

/// One selected basis gate on one edge, with its decomposition cache.
#[derive(Clone, Debug)]
pub struct SelectedBasis {
    /// Which strategy selected this gate.
    pub strategy: BasisStrategy,
    /// Entangling pulse duration of the basis gate (ns).
    pub duration: f64,
    /// The characterized unitary the compiler targets.
    pub gate: Mat4,
    /// Cartan coordinates.
    pub coord: WeylCoord,
    /// Leakage of the underlying pulse.
    pub leakage: f64,
    /// Cached SWAP decomposition.
    pub swap: SynthesizedGate,
    /// Cached CNOT decomposition.
    pub cnot: SynthesizedGate,
    /// Decomposer bound to this basis gate, for direct synthesis of other
    /// targets.
    pub decomposer: Decomposer,
}

/// Calibration record for one edge of the device.
#[derive(Clone, Debug)]
pub struct EdgeCalibration {
    /// The two qubits (low index first).
    pub qubits: (usize, usize),
    /// The qubits ordered as the calibrated gate's tensor factors:
    /// (low-frequency qubit, high-frequency qubit). Basis-gate unitaries
    /// act on `|q_lo q_hi>` in this order.
    pub gate_order: (usize, usize),
    /// Residual static ZZ at the coupler bias (rad/ns).
    pub residual_zz: f64,
    /// Baseline sqrt(iSWAP) basis gate.
    pub baseline: SelectedBasis,
    /// Criterion-1 nonstandard basis gate.
    pub criterion1: SelectedBasis,
    /// Criterion-2 nonstandard basis gate.
    pub criterion2: SelectedBasis,
}

impl EdgeCalibration {
    /// The record for a strategy.
    pub fn basis(&self, strategy: BasisStrategy) -> &SelectedBasis {
        match strategy {
            BasisStrategy::Baseline => &self.baseline,
            BasisStrategy::Criterion1 => &self.criterion1,
            BasisStrategy::Criterion2 => &self.criterion2,
        }
    }
}

/// Configuration of the device build.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Frequency allocation plan.
    pub plan: FrequencyPlan,
    /// Master seed; per-edge RNGs derive from it deterministically.
    pub seed: u64,
    /// Baseline (standard-trajectory) drive amplitude in Phi_0.
    pub xi_baseline: f64,
    /// Strong-drive (nonstandard-trajectory) amplitude in Phi_0.
    pub xi_nonstandard: f64,
    /// Single-qubit gate duration (ns).
    pub t_1q: f64,
    /// Coherence time T for every qubit (ns).
    pub coherence_time: f64,
    /// Minimum entangling power a selected basis gate must have.
    pub min_entangling_power: f64,
    /// Maximum tolerated leakage of a selected nonstandard basis gate
    /// (paper: leakage must stay below the decoherence-induced errors).
    pub max_leakage: f64,
    /// Maximum class distance from sqrt(iSWAP) accepted for the baseline
    /// gate (the full 3-level model stays well under 0.05; the 2-level
    /// test model deviates more).
    pub baseline_tolerance: f64,
    /// Trajectory simulation settings for the baseline amplitude.
    pub baseline_traj: TrajectoryConfig,
    /// Trajectory simulation settings for the strong drive.
    pub nonstandard_traj: TrajectoryConfig,
    /// Synthesis settings for the per-edge decomposition caches.
    pub synth: DecomposerConfig,
    /// Levels per mode in the pulse simulation (3 = full model; 2 = fast).
    pub levels: usize,
    /// Worker threads for the per-edge builds.
    pub threads: usize,
    /// Whether basis gates are characterized through the simulated GST
    /// noise model (true reproduces the calibration pipeline; false uses
    /// the exact simulated unitary).
    pub tomography: bool,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            plan: FrequencyPlan::default(),
            seed: 2022,
            xi_baseline: 0.005,
            xi_nonstandard: 0.04,
            t_1q: 20.0,
            coherence_time: 80_000.0,
            min_entangling_power: 0.15,
            max_leakage: 5e-3,
            baseline_tolerance: 0.15,
            baseline_traj: TrajectoryConfig {
                t_max: 240.0,
                dt: 0.015,
                ..TrajectoryConfig::default()
            },
            nonstandard_traj: TrajectoryConfig {
                t_max: 45.0,
                dt: 0.015,
                ..TrajectoryConfig::default()
            },
            synth: DecomposerConfig::default(),
            levels: 3,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            tomography: true,
        }
    }
}

impl DeviceConfig {
    /// A configuration small and coarse enough for unit tests: two-level
    /// modes, coarse integration, stronger drives so the trajectories are
    /// short.
    pub fn fast_test() -> Self {
        DeviceConfig {
            xi_baseline: 0.02,
            xi_nonstandard: 0.08,
            baseline_traj: TrajectoryConfig {
                t_max: 80.0,
                dt: 0.05,
                drive_scan_points: 3,
                drive_probe_t: 20.0,
                ..TrajectoryConfig::default()
            },
            nonstandard_traj: TrajectoryConfig {
                t_max: 25.0,
                dt: 0.05,
                drive_scan_points: 3,
                drive_probe_t: 10.0,
                ..TrajectoryConfig::default()
            },
            levels: 2,
            threads: 2,
            max_leakage: 1.0,
            baseline_tolerance: 0.3,
            ..DeviceConfig::default()
        }
    }
}

/// Errors produced while building a device.
#[derive(Clone, Debug)]
pub struct DeviceBuildError {
    /// Edge index that failed.
    pub edge: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for DeviceBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "edge {}: {}", self.edge, self.reason)
    }
}

impl std::error::Error for DeviceBuildError {}

/// The fully calibrated device.
#[derive(Clone, Debug)]
pub struct Device {
    topology: GridTopology,
    frequencies: FrequencyAllocation,
    config: DeviceConfig,
    edges: Vec<EdgeCalibration>,
}

impl Device {
    /// Builds and calibrates a `width x height` grid device.
    ///
    /// Edges are processed in parallel; all randomness derives from
    /// per-edge seeds so results are independent of thread scheduling.
    ///
    /// # Errors
    ///
    /// Returns the first [`DeviceBuildError`] when any edge fails
    /// calibration or synthesis.
    pub fn build(
        width: usize,
        height: usize,
        config: DeviceConfig,
    ) -> Result<Device, DeviceBuildError> {
        let topology = GridTopology::new(width, height);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let frequencies = FrequencyAllocation::sample(&topology, &config.plan, &mut rng);
        let edge_list = topology.edges();
        let mut slots: Vec<Option<Result<EdgeCalibration, DeviceBuildError>>> =
            (0..edge_list.len()).map(|_| None).collect();
        let threads = config.threads.max(1);
        let chunk = edge_list.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (tid, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
                let edge_list = &edge_list;
                let frequencies = &frequencies;
                let config = &config;
                scope.spawn(move || {
                    for (k, slot) in slot_chunk.iter_mut().enumerate() {
                        let idx = tid * chunk + k;
                        let (a, b) = edge_list[idx];
                        // Retry with extended trajectory windows: slow
                        // outlier edges may cross the selection faces later
                        // than the default t_max allows.
                        let mut result = build_edge(idx, a, b, frequencies, config);
                        let mut extended = config.clone();
                        for _ in 0..2 {
                            if result.is_ok() {
                                break;
                            }
                            extended.baseline_traj.t_max *= 1.6;
                            extended.nonstandard_traj.t_max *= 1.6;
                            // Outlier edges with parasitic resonances may
                            // not meet the leakage ceiling anywhere; relax
                            // it rather than fail the whole device.
                            extended.max_leakage *= 4.0;
                            result = build_edge(idx, a, b, frequencies, &extended);
                        }
                        *slot = Some(result);
                    }
                });
            }
        });
        let mut edges = Vec::with_capacity(edge_list.len());
        for slot in slots {
            // lint: allow(no-expect) — every slot was just written by the scoped calibration threads
            match slot.expect("all edges processed") {
                Ok(cal) => edges.push(cal),
                Err(e) => return Err(e),
            }
        }
        Ok(Device {
            topology,
            frequencies,
            config,
            edges,
        })
    }

    /// The coupling topology.
    pub fn topology(&self) -> &GridTopology {
        &self.topology
    }

    /// Qubit frequencies.
    pub fn frequencies(&self) -> &FrequencyAllocation {
        &self.frequencies
    }

    /// Build configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// All edge calibrations in [`GridTopology::edges`] order.
    pub fn edges(&self) -> &[EdgeCalibration] {
        &self.edges
    }

    /// Calibration record for the edge between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics when the qubits are not adjacent.
    pub fn edge(&self, a: usize, b: usize) -> &EdgeCalibration {
        let idx = self
            .topology
            .edge_index(a, b)
            .unwrap_or_else(|| panic!("qubits {a},{b} are not coupled")); // lint: allow(no-panic) — documented contract
        &self.edges[idx]
    }

    /// A stable fingerprint of this device's calibration.
    ///
    /// Two devices share a calibration hash exactly when every edge's
    /// selected basis gates (for all three strategies) are numerically
    /// identical at the synthesis fingerprint resolution and the timing
    /// parameters relevant to compilation agree. The hash is computed
    /// with [`nsb_synth::StableHasher`], so it is identical across
    /// processes, platforms and Rust versions — `nsb-store` snapshots and
    /// the service pool use it to decide whether persisted synthesis
    /// results may be reused for a device.
    pub fn calibration_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = nsb_synth::StableHasher::new();
        self.topology.width().hash(&mut h);
        self.topology.height().hash(&mut h);
        self.config.seed.hash(&mut h);
        self.config.t_1q.to_bits().hash(&mut h);
        self.config.coherence_time.to_bits().hash(&mut h);
        for e in &self.edges {
            e.qubits.hash(&mut h);
            e.gate_order.hash(&mut h);
            for strategy in BasisStrategy::ALL {
                let b = e.basis(strategy);
                nsb_synth::mat4_fingerprint(&b.gate).hash(&mut h);
                b.duration.to_bits().hash(&mut h);
            }
        }
        h.finish()
    }

    /// Mean basis / SWAP / CNOT durations and coherence-limited fidelities
    /// for a strategy: one row of Table I.
    pub fn table1_row(&self, strategy: BasisStrategy) -> Table1Row {
        let t = self.config.coherence_time;
        let n = self.edges.len() as f64;
        let mut row = Table1Row {
            strategy,
            ..Table1Row::default()
        };
        for e in &self.edges {
            let b = e.basis(strategy);
            row.basis_duration += b.duration / n;
            row.basis_fidelity += coherence_fidelity_2q(t, b.duration) / n;
            row.swap_duration += b.swap.duration / n;
            row.swap_fidelity += coherence_fidelity_2q(t, b.swap.duration) / n;
            row.cnot_duration += b.cnot.duration / n;
            row.cnot_fidelity += coherence_fidelity_2q(t, b.cnot.duration) / n;
        }
        row
    }
}

/// One row of the paper's Table I.
#[derive(Clone, Copy, Debug)]
pub struct Table1Row {
    /// The strategy this row describes.
    pub strategy: BasisStrategy,
    /// Mean basis-gate duration (ns).
    pub basis_duration: f64,
    /// Mean basis-gate coherence-limited fidelity.
    pub basis_fidelity: f64,
    /// Mean synthesized SWAP duration (ns).
    pub swap_duration: f64,
    /// Mean synthesized SWAP fidelity.
    pub swap_fidelity: f64,
    /// Mean synthesized CNOT duration (ns).
    pub cnot_duration: f64,
    /// Mean synthesized CNOT fidelity.
    pub cnot_fidelity: f64,
}

impl Default for Table1Row {
    fn default() -> Self {
        Table1Row {
            strategy: BasisStrategy::Baseline,
            basis_duration: 0.0,
            basis_fidelity: 0.0,
            swap_duration: 0.0,
            swap_fidelity: 0.0,
            cnot_duration: 0.0,
            cnot_fidelity: 0.0,
        }
    }
}

fn build_edge(
    idx: usize,
    a: usize,
    b: usize,
    frequencies: &FrequencyAllocation,
    config: &DeviceConfig,
) -> Result<EdgeCalibration, DeviceBuildError> {
    let err = |reason: String| DeviceBuildError { edge: idx, reason };
    let mut rng =
        StdRng::seed_from_u64(config.seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(idx as u64 + 1)));
    let (fa, fb) = (frequencies.frequency(a), frequencies.frequency(b));
    let gate_order = if fa <= fb { (a, b) } else { (b, a) };
    let params = UnitCellParams {
        levels: config.levels,
        ..UnitCellParams::with_qubit_frequencies(fa, fb)
    };
    let cell = PreparedCell::prepare(&params);
    // Baseline: sqrt(iSWAP) off the standard trajectory.
    let base_traj = cell.trajectory(config.xi_baseline, &config.baseline_traj);
    let bp = base_traj
        .closest_to(WeylCoord::SQRT_ISWAP)
        .ok_or_else(|| err("empty baseline trajectory".into()))?;
    if bp.coord.class_dist(WeylCoord::SQRT_ISWAP) > config.baseline_tolerance {
        return Err(err(format!(
            "baseline trajectory misses sqrt(iSWAP): best {} at {} ns",
            bp.coord, bp.duration
        )));
    }
    let gst = TomographyModel::gst();
    let baseline_gate = if config.tomography {
        gst.estimate(&bp.gate, &mut rng)
    } else {
        bp.gate
    };
    let baseline = finish_basis(
        BasisStrategy::Baseline,
        bp.duration,
        baseline_gate,
        bp.leakage,
        config,
    )
    .map_err(&err)?;
    // Nonstandard criteria off the strong-drive trajectory.
    let fast_traj = cell.trajectory(config.xi_nonstandard, &config.nonstandard_traj);
    let select = |criterion: SelectionCriterion,
                  strategy: BasisStrategy,
                  rng: &mut StdRng|
     -> Result<SelectedBasis, DeviceBuildError> {
        let tune = if config.tomography {
            tuneup_from_trajectory(
                &fast_traj,
                criterion,
                config.min_entangling_power,
                config.max_leakage,
                rng,
            )
        } else {
            fast_traj
                .points
                .iter()
                .position(|p| {
                    p.leakage <= config.max_leakage
                        && criterion.accepts(p.coord)
                        && nsb_weyl::entangling_power(p.coord) >= config.min_entangling_power
                })
                .map(|i| crate::calibration::TuneupResult {
                    candidates: Vec::new(),
                    selected_index: i,
                    refined_gate: fast_traj.points[i].gate,
                    refined_coord: fast_traj.points[i].coord,
                    duration: fast_traj.points[i].duration,
                })
        }
        .ok_or_else(|| {
            err(format!(
                "no {strategy} basis gate found within {} ns",
                config.nonstandard_traj.t_max
            ))
        })?;
        let leak = fast_traj.points[tune.selected_index].leakage;
        finish_basis(strategy, tune.duration, tune.refined_gate, leak, config).map_err(&err)
    };
    let criterion1 = select(
        SelectionCriterion::SwapIn3,
        BasisStrategy::Criterion1,
        &mut rng,
    )?;
    let criterion2 = select(
        SelectionCriterion::SwapIn3CnotIn2,
        BasisStrategy::Criterion2,
        &mut rng,
    )?;
    Ok(EdgeCalibration {
        qubits: (a.min(b), a.max(b)),
        gate_order,
        residual_zz: cell.residual_zz,
        baseline,
        criterion1,
        criterion2,
    })
}

fn finish_basis(
    strategy: BasisStrategy,
    duration: f64,
    gate: Mat4,
    leakage: f64,
    config: &DeviceConfig,
) -> Result<SelectedBasis, String> {
    let decomposer = Decomposer::with_config(gate, config.synth);
    let coord = decomposer.basis_coord();
    let swap = decomposer
        .decompose(&Mat4::swap())
        .map_err(|e| format!("{strategy}: SWAP synthesis failed: {e}"))?;
    let cnot = decomposer
        .decompose(&Mat4::cnot())
        .map_err(|e| format!("{strategy}: CNOT synthesis failed: {e}"))?;
    let swap = SynthesizedGate {
        duration: synthesized_duration(swap.layers, duration, config.t_1q),
        circuit: swap,
    };
    let cnot = SynthesizedGate {
        duration: synthesized_duration(cnot.layers, duration, config.t_1q),
        circuit: cnot,
    };
    Ok(SelectedBasis {
        strategy,
        duration,
        gate,
        coord,
        leakage,
        swap,
        cnot,
        decomposer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_device_builds_and_has_sane_table1() {
        let device = Device::build(2, 1, DeviceConfig::fast_test()).expect("build");
        assert_eq!(device.edges().len(), 1);
        let e = &device.edges()[0];
        assert_eq!(e.qubits, (0, 1));
        // Nonstandard gates are faster than baseline.
        assert!(e.criterion1.duration < e.baseline.duration);
        assert!(e.criterion2.duration <= e.baseline.duration);
        // SWAP syntheses use at most 3 layers; baseline uses exactly 3.
        assert_eq!(e.baseline.swap.circuit.layers, 3);
        assert!(e.criterion1.swap.circuit.layers <= 3);
        assert!(e.criterion2.cnot.circuit.layers <= 2);
        // Table 1 row ordering: criterion fidelities beat baseline.
        let base = device.table1_row(BasisStrategy::Baseline);
        let c1 = device.table1_row(BasisStrategy::Criterion1);
        let c2 = device.table1_row(BasisStrategy::Criterion2);
        assert!(c1.basis_fidelity > base.basis_fidelity);
        assert!(c2.cnot_fidelity >= c1.cnot_fidelity - 1e-6);
        assert!(base.swap_duration > c1.swap_duration);
    }

    #[test]
    fn edge_lookup_by_qubits() {
        let device = Device::build(2, 1, DeviceConfig::fast_test()).expect("build");
        let e = device.edge(1, 0);
        assert_eq!(e.qubits, (0, 1));
    }

    #[test]
    fn calibration_hash_separates_devices() {
        let a = Device::build(2, 1, DeviceConfig::fast_test()).expect("build");
        let b = Device::build(2, 1, DeviceConfig::fast_test()).expect("build");
        assert_eq!(
            a.calibration_hash(),
            b.calibration_hash(),
            "identical builds must agree"
        );
        let other = Device::build(
            2,
            1,
            DeviceConfig {
                seed: 7,
                ..DeviceConfig::fast_test()
            },
        )
        .expect("build");
        assert_ne!(a.calibration_hash(), other.calibration_hash());
    }

    #[test]
    fn build_is_deterministic() {
        let a = Device::build(2, 1, DeviceConfig::fast_test()).expect("build");
        let b = Device::build(2, 1, DeviceConfig::fast_test()).expect("build");
        assert_eq!(
            a.edges()[0].criterion1.duration,
            b.edges()[0].criterion1.duration
        );
        assert!(a.edges()[0]
            .baseline
            .gate
            .approx_eq(&b.edges()[0].baseline.gate, 1e-12));
    }
}
