//! A lightweight line-level static analyzer for workspace library code.
//!
//! The analyzer scans every library source file for patterns the workspace
//! forbids outside test code — panicking shortcuts (`unwrap()`, `expect(`,
//! `panic!`), placeholders and debug output (`todo!`, `unimplemented!`,
//! `dbg!`, `println!`) — and for crate roots missing
//! `#![forbid(unsafe_code)]`. In the simulation and synthesis hot paths
//! (`crates/sim`, `crates/synth`) it additionally flags heap-allocated
//! 4×4 matrices (`DMat::zeros(4, 4)`) that should use the stack
//! [`Mat4`] kernel. Binary targets (`src/main.rs`, `src/bin/`)
//! are exempt from the panicking and output rules (a CLI may print and
//! bail), not from `todo!`/`dbg!`. It is deliberately not a full parser: it
//! strips comments and string literals, tracks `#[cfg(test)]` modules by
//! brace depth, and honors `// lint: allow(rule)` suppression markers on
//! the offending line or the line above it.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// The rules the analyzer enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `.unwrap()` in library code.
    NoUnwrap,
    /// `.expect(` in library code.
    NoExpect,
    /// `panic!` in library code.
    NoPanic,
    /// `todo!` or `unimplemented!` anywhere.
    NoTodo,
    /// `dbg!` anywhere.
    NoDbg,
    /// `println!`-family output in non-binary targets.
    NoPrintln,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// Heap-allocated 4×4 (`DMat::zeros(4, 4)`) in hot-path crates that
    /// have the stack [`Mat4`] kernel available (`nsb-sim`, `nsb-synth`).
    PreferMat4,
}

impl Rule {
    /// The identifier used in diagnostics and `lint: allow(...)` markers.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::NoExpect => "no-expect",
            Rule::NoPanic => "no-panic",
            Rule::NoTodo => "no-todo",
            Rule::NoDbg => "no-dbg",
            Rule::NoPrintln => "no-println",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::PreferMat4 => "prefer-mat4",
        }
    }
}

/// One diagnostic produced by the analyzer.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Offending file.
    pub file: PathBuf,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// What was found.
    pub message: String,
    /// The offending source line, trimmed, for context.
    pub snippet: String,
}

impl Finding {
    /// Renders the finding as a rustc-style diagnostic.
    pub fn render(&self) -> String {
        let mut s = format!("error[{}]: {}\n", self.rule.id(), self.message);
        if self.line > 0 {
            s.push_str(&format!(
                "  --> {}:{}\n   | {}\n",
                self.file.display(),
                self.line,
                self.snippet
            ));
        } else {
            s.push_str(&format!("  --> {}\n", self.file.display()));
        }
        s
    }
}

/// Whether a file is a binary target (where terminal output is fine) or
/// library code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// `src/main.rs` or a file under `src/bin/`.
    Bin,
    /// Everything else under `src/`.
    Lib,
}

/// Collects the workspace's library source files.
///
/// Scans the root package's `src/` and every `crates/*/src/` except
/// `crates/xtask` itself (this tool is a development binary and its source
/// necessarily spells out the forbidden patterns). Vendored dependency
/// stubs under `vendor/` are third-party stand-ins and are skipped too.
pub fn source_files(root: &Path) -> Vec<(PathBuf, FileKind)> {
    let mut out = Vec::new();
    let mut src_dirs = vec![root.join("src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "xtask"))
            .collect();
        dirs.sort();
        for d in dirs {
            src_dirs.push(d.join("src"));
        }
    }
    for dir in src_dirs {
        collect_rs(&dir, &mut out);
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<(PathBuf, FileKind)>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let is_bin = path.file_name().is_some_and(|n| n == "main.rs")
                || path
                    .parent()
                    .and_then(|p| p.file_name())
                    .is_some_and(|n| n == "bin");
            let kind = if is_bin { FileKind::Bin } else { FileKind::Lib };
            out.push((path, kind));
        }
    }
}

/// Runs the analyzer over the whole workspace rooted at `root`.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (path, kind) in source_files(root) {
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        findings.extend(analyze(&rel, &text, kind));
    }
    findings
}

/// Analyzes one file's source text.
pub fn analyze(file: &Path, text: &str, kind: FileKind) -> Vec<Finding> {
    let mut findings = Vec::new();
    let is_crate_root = kind == FileKind::Lib
        && file.file_name().is_some_and(|n| n == "lib.rs")
        && file
            .parent()
            .and_then(|p| p.file_name())
            .is_some_and(|n| n == "src");
    if is_crate_root && !text.contains("#![forbid(unsafe_code)]") {
        findings.push(Finding {
            file: file.to_path_buf(),
            line: 0,
            rule: Rule::ForbidUnsafe,
            message: "crate root does not declare `#![forbid(unsafe_code)]`".into(),
            snippet: String::new(),
        });
    }
    let mut in_block_comment = false;
    let mut brace_depth: i64 = 0;
    // Depth at which a `#[cfg(test)] mod` opened; lines inside it are test
    // code and exempt from the panicking-shortcut rules.
    let mut test_mod_open_depth: Option<i64> = None;
    let mut cfg_test_pending = false;
    let mut allow_from_previous: BTreeSet<String> = BTreeSet::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let mut allowed = std::mem::take(&mut allow_from_previous);
        if let Some(marks) = allow_markers(raw) {
            let only_comment = raw.trim_start().starts_with("//");
            if only_comment {
                allow_from_previous = marks.clone();
            }
            allowed.extend(marks);
        }
        let code = strip_code(raw, &mut in_block_comment);
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        if let Some(open_depth) = test_mod_open_depth {
            brace_depth += opens - closes;
            if brace_depth <= open_depth {
                test_mod_open_depth = None;
            }
            continue;
        }
        if code.contains("#[cfg(test)]") {
            cfg_test_pending = true;
            brace_depth += opens - closes;
            continue;
        }
        if cfg_test_pending {
            let trimmed = code.trim();
            if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                cfg_test_pending = false;
                if opens > 0 {
                    test_mod_open_depth = Some(brace_depth);
                    brace_depth += opens - closes;
                    continue;
                }
                // `mod tests;` — the gated module lives in its own file;
                // that file is still scanned but has no cfg marker, so we
                // accept it as library code (the workspace keeps test
                // modules inline).
            } else if !trimmed.is_empty() && !trimmed.starts_with("#[") {
                // The cfg gated a single non-module item: exempt that item's
                // opening line, then resume.
                cfg_test_pending = false;
                brace_depth += opens - closes;
                continue;
            }
        }
        brace_depth += opens - closes;
        let mut hit = |rule: Rule, message: String| {
            if allowed.contains(rule.id()) || allowed.contains("all") {
                return;
            }
            findings.push(Finding {
                file: file.to_path_buf(),
                line: line_no,
                rule,
                message,
                snippet: raw.trim().to_string(),
            });
        };
        let forbidden = |what: &str| format!("forbidden pattern `{what}` in library code");
        if kind == FileKind::Lib {
            if code.contains(".unwrap()") {
                hit(Rule::NoUnwrap, forbidden(".unwrap()"));
            }
            if code.contains(".expect(") {
                hit(Rule::NoExpect, forbidden(".expect("));
            }
            if code.contains("panic!") {
                hit(Rule::NoPanic, forbidden("panic!"));
            }
        }
        if code.contains("todo!") || code.contains("unimplemented!") {
            hit(Rule::NoTodo, forbidden("todo!/unimplemented!"));
        }
        if code.contains("dbg!") {
            hit(Rule::NoDbg, forbidden("dbg!"));
        }
        if kind == FileKind::Lib
            && ["println!", "print!", "eprintln!", "eprint!"]
                .iter()
                .any(|p| code.contains(p))
        {
            hit(Rule::NoPrintln, forbidden("println!-family output"));
        }
        if kind == FileKind::Lib
            && mat4_hot_path(file)
            && (code.contains("DMat::zeros(4, 4)") || code.contains("DMat::zeros(4,4)"))
        {
            hit(
                Rule::PreferMat4,
                "heap-allocated 4x4 `DMat::zeros(4, 4)` in a hot-path crate; \
                 use the stack `nsb_math::Mat4` kernel instead"
                    .into(),
            );
        }
    }
    findings
}

/// Whether `file` belongs to a crate whose library code should use the
/// stack `Mat4` kernel for 4×4 work (the simulation and synthesis hot
/// paths).
fn mat4_hot_path(file: &Path) -> bool {
    file.starts_with("crates/sim/src") || file.starts_with("crates/synth/src")
}

/// Parses a `lint: allow(...)` marker out of a line's comments; returns
/// the allowed rule ids (or `{"all"}` for a bare `lint: allow`).
fn allow_markers(raw: &str) -> Option<BTreeSet<String>> {
    let pos = raw.find("lint: allow")?;
    let rest = &raw[pos + "lint: allow".len()..];
    let mut set = BTreeSet::new();
    if let Some(open) = rest.find('(') {
        if let Some(close) = rest[open..].find(')') {
            for id in rest[open + 1..open + close].split(',') {
                set.insert(id.trim().to_string());
            }
            return Some(set);
        }
    }
    set.insert("all".to_string());
    Some(set)
}

/// Strips line comments, block comments, string literals and char literals
/// from one line, preserving the surviving code (literals are replaced by
/// a space so adjacent tokens do not fuse).
fn strip_code(raw: &str, in_block_comment: &mut bool) -> String {
    let chars: Vec<char> = raw.chars().collect();
    let mut out = String::with_capacity(raw.len());
    let mut i = 0;
    let mut in_string = false;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if *in_block_comment {
            if c == '*' && next == Some('/') {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if in_string {
            if c == '\\' {
                i += 2;
            } else {
                if c == '"' {
                    in_string = false;
                }
                i += 1;
            }
            continue;
        }
        if c == '/' && next == Some('/') {
            break;
        }
        if c == '/' && next == Some('*') {
            *in_block_comment = true;
            i += 2;
            continue;
        }
        if c == '"' {
            in_string = true;
            out.push(' ');
            i += 1;
            continue;
        }
        if c == '\'' {
            // Distinguish char literals from lifetimes: a char literal has
            // a closing quote right after one (possibly escaped) character.
            if next == Some('\\') {
                if let Some(close) = chars[i + 2..].iter().position(|&c| c == '\'') {
                    out.push(' ');
                    i += 2 + close + 1;
                    continue;
                }
            } else if chars.get(i + 2) == Some(&'\'') {
                out.push(' ');
                i += 3;
                continue;
            }
            out.push('\'');
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    // An unterminated string at end-of-line (rare multi-line literal) is
    // treated conservatively: the next line scans as code.
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(text: &str) -> Vec<Finding> {
        analyze(Path::new("crates/foo/src/code.rs"), text, FileKind::Lib)
    }

    #[test]
    fn flags_panicking_shortcuts() {
        let f =
            lint("fn f() {\n    x.unwrap();\n    y.expect(\"boom\");\n    panic!(\"no\");\n}\n");
        let rules: Vec<Rule> = f.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec![Rule::NoUnwrap, Rule::NoExpect, Rule::NoPanic]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn skips_comments_and_strings() {
        let f = lint(
            "fn f() {\n    // x.unwrap() in a comment\n    let s = \"panic! .unwrap()\";\n    /* .expect( */\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn skips_cfg_test_modules() {
        let text = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\nfn after() { y.unwrap(); }\n";
        let f = lint(text);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 7);
    }

    #[test]
    fn honors_allow_markers() {
        let same_line = "fn f() { x.unwrap() } // lint: allow(no-unwrap)\n";
        assert!(lint(same_line).is_empty());
        let prev_line = "// lint: allow(no-expect)\nfn f() { x.expect(\"ok\") }\n";
        assert!(lint(prev_line).is_empty());
        let wrong_rule = "fn f() { x.unwrap() } // lint: allow(no-expect)\n";
        assert_eq!(lint(wrong_rule).len(), 1);
    }

    #[test]
    fn println_only_in_lib_files() {
        let text = "fn f() { println!(\"hi\"); }\n";
        assert_eq!(lint(text).len(), 1);
        let bin = analyze(Path::new("crates/foo/src/bin/tool.rs"), text, FileKind::Bin);
        assert!(bin.is_empty());
    }

    #[test]
    fn crate_root_requires_forbid_unsafe() {
        let missing = analyze(
            Path::new("crates/foo/src/lib.rs"),
            "fn f() {}\n",
            FileKind::Lib,
        );
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].rule, Rule::ForbidUnsafe);
        let present = analyze(
            Path::new("crates/foo/src/lib.rs"),
            "#![forbid(unsafe_code)]\nfn f() {}\n",
            FileKind::Lib,
        );
        assert!(present.is_empty());
    }

    #[test]
    fn lifetimes_do_not_break_char_stripping() {
        let text = "fn f<'a>(x: &'a str) -> &'a str { x }\nfn g() { let c = 'x'; let _ = c; }\n";
        assert!(lint(text).is_empty());
    }

    #[test]
    fn heap_4x4_flagged_only_in_hot_path_crates() {
        let text = "fn f() { let m = DMat::zeros(4, 4); black_box(m); }\n";
        let sim = analyze(Path::new("crates/sim/src/evolve.rs"), text, FileKind::Lib);
        assert_eq!(sim.len(), 1, "{sim:?}");
        assert_eq!(sim[0].rule, Rule::PreferMat4);
        assert!(sim[0].message.contains("Mat4"));
        let synth = analyze(
            Path::new("crates/synth/src/optimizer.rs"),
            "fn g() { DMat::zeros(4,4); }\n",
            FileKind::Lib,
        );
        assert_eq!(synth.len(), 1, "{synth:?}");
        // Other crates (e.g. nsb-math's own generic code) are exempt.
        let math = analyze(Path::new("crates/math/src/dmat.rs"), text, FileKind::Lib);
        assert!(math.is_empty(), "{math:?}");
        // Non-4x4 shapes are fine even in hot-path crates.
        let other = analyze(
            Path::new("crates/sim/src/evolve.rs"),
            "fn f() { DMat::zeros(27, 4); }\n",
            FileKind::Lib,
        );
        assert!(other.is_empty(), "{other:?}");
        // The escape hatch works like every other rule.
        let allowed = analyze(
            Path::new("crates/sim/src/evolve.rs"),
            "fn f() { DMat::zeros(4, 4); } // lint: allow(prefer-mat4)\n",
            FileKind::Lib,
        );
        assert!(allowed.is_empty(), "{allowed:?}");
    }

    #[test]
    fn todo_and_dbg_flagged() {
        let f = lint("fn f() {\n    todo!();\n}\nfn g() {\n    dbg!(3);\n}\n");
        let rules: Vec<Rule> = f.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec![Rule::NoTodo, Rule::NoDbg]);
    }
}
