//! A relative-link checker for the workspace's markdown documentation.
//!
//! Scans every `.md` file in the repository (skipping `target/`,
//! `.git/` and other hidden directories), extracts inline
//! markdown links and images (`[text](target)`), and reports every
//! relative target that does not exist on disk. Absolute URLs
//! (`http://`, `https://`, `mailto:`) and intra-page anchors (`#...`)
//! are ignored; `path#anchor` targets are checked for the path part
//! only. Fenced code blocks are skipped so format-spec tables and
//! example snippets cannot produce false positives.

use std::fs;
use std::path::{Path, PathBuf};

/// One unresolved markdown link.
#[derive(Clone, Debug)]
pub struct BrokenLink {
    /// The markdown file containing the link.
    pub file: PathBuf,
    /// 1-based line number of the link.
    pub line: usize,
    /// The link target as written.
    pub target: String,
}

impl BrokenLink {
    /// Renders the finding as a rustc-style diagnostic.
    pub fn render(&self) -> String {
        format!(
            "error[doc-links]: broken relative link `{}`\n  --> {}:{}\n",
            self.target,
            self.file.display(),
            self.line
        )
    }
}

/// Directories never scanned for markdown.
const SKIP_DIRS: &[&str] = &["target", ".git", "node_modules"];

/// Checks every markdown file under `root`; returns all broken links.
pub fn run(root: &Path) -> Vec<BrokenLink> {
    let mut files = Vec::new();
    collect_md(root, &mut files);
    files.sort();
    let mut broken = Vec::new();
    for file in &files {
        check_file(root, file, &mut broken);
    }
    broken
}

fn collect_md(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect_md(&path, out);
            }
        } else if name.ends_with(".md") {
            out.push(path);
        }
    }
}

fn check_file(root: &Path, file: &Path, broken: &mut Vec<BrokenLink>) {
    let Ok(text) = fs::read_to_string(file) else {
        return;
    };
    let base = file.parent().unwrap_or(root);
    let mut in_fence = false;
    for (idx, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        for target in extract_targets(line) {
            if is_external(&target) {
                continue;
            }
            let path_part = target.split('#').next().unwrap_or("");
            if path_part.is_empty() {
                continue; // pure anchor
            }
            let resolved = if let Some(rooted) = path_part.strip_prefix('/') {
                root.join(rooted)
            } else {
                base.join(path_part)
            };
            if !resolved.exists() {
                broken.push(BrokenLink {
                    file: file.to_path_buf(),
                    line: idx + 1,
                    target,
                });
            }
        }
    }
}

fn is_external(target: &str) -> bool {
    target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with("//")
}

/// Pulls every `](target)` out of one line. Inline code spans are
/// stripped first so `` `[a](b)` `` examples are not treated as links.
fn extract_targets(line: &str) -> Vec<String> {
    let line = strip_code_spans(line);
    let bytes = line.as_bytes();
    let mut targets = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            let start = i + 2;
            let mut depth = 1;
            let mut end = start;
            while end < bytes.len() && depth > 0 {
                match bytes[end] {
                    b'(' => depth += 1,
                    b')' => depth -= 1,
                    _ => {}
                }
                if depth > 0 {
                    end += 1;
                }
            }
            if depth == 0 {
                let target = line[start..end].trim();
                // `[text](target "title")` — drop the optional title.
                let target = target.split_whitespace().next().unwrap_or("");
                if !target.is_empty() {
                    targets.push(target.to_string());
                }
                i = end;
            }
        }
        i += 1;
    }
    targets
}

fn strip_code_spans(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_span = false;
    for c in line.chars() {
        if c == '`' {
            in_span = !in_span;
            out.push(' ');
        } else if in_span {
            out.push(' ');
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_plain_and_titled_links() {
        let t = extract_targets("see [a](x.md) and ![img](img/y.png \"alt\") end");
        assert_eq!(t, vec!["x.md".to_string(), "img/y.png".to_string()]);
    }

    #[test]
    fn skips_code_spans_and_anchors() {
        assert!(extract_targets("use `[a](fake.md)` in markdown").is_empty());
        let t = extract_targets("[sec](#anchor) [doc](guide.md#part)");
        assert_eq!(t, vec!["#anchor".to_string(), "guide.md#part".to_string()]);
    }

    #[test]
    fn external_targets_are_ignored() {
        assert!(is_external("https://example.com/x"));
        assert!(is_external("mailto:a@b.c"));
        assert!(!is_external("docs/x.md"));
    }

    #[test]
    fn finds_broken_links_and_accepts_good_ones() {
        let dir = std::env::temp_dir().join(format!("nsb-doclinks-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join("real.md"), "# real\n").expect("write");
        fs::write(
            dir.join("README.md"),
            "[ok](real.md)\n[anchor](real.md#top)\n[missing](gone.md)\n\
             ```\n[in-fence](also-gone.md)\n```\n[web](https://example.com)\n",
        )
        .expect("write");
        let broken = run(&dir);
        assert_eq!(broken.len(), 1);
        assert_eq!(broken[0].target, "gone.md");
        assert_eq!(broken[0].line, 3);
        let _ = fs::remove_dir_all(&dir);
    }
}
