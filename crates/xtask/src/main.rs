//! Workspace automation driver: `cargo run -p xtask -- <task>`.
//!
//! Tasks:
//! - `lint [root] [--json PATH]` — run the `nsb-lint` AST static
//!   analyzer over all workspace code and exit nonzero when any finding
//!   survives (used by CI). `--json PATH` additionally writes the
//!   machine-readable diagnostics report CI uploads as an artifact.
//! - `doc-links` — verify that every relative link in the repository's
//!   markdown files resolves to an existing file (used by CI).

mod doclinks;

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/xtask; the workspace root is two up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

/// Parses `[root] [--json PATH]` in either order after the task name.
fn lint_args(args: &[String]) -> (PathBuf, Option<PathBuf>) {
    let mut root = None;
    let mut json = None;
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--json" {
            json = args.get(i + 1).map(PathBuf::from);
            i += 2;
        } else {
            root.get_or_insert_with(|| PathBuf::from(&args[i]));
            i += 1;
        }
    }
    (root.unwrap_or_else(workspace_root), json)
}

fn run_lint(args: &[String]) -> ExitCode {
    let (root, json_path) = lint_args(args);
    let findings = nsb_lint::run_workspace(&root);
    for f in &findings {
        eprint!("{}", f.render());
    }
    if let Some(path) = json_path {
        let json = nsb_lint::to_json(&findings);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("xtask lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("xtask lint: JSON report written to {}", path.display());
    }
    if findings.is_empty() {
        eprintln!(
            "xtask lint: clean ({} rules over workspace)",
            nsb_lint::RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args),
        Some("doc-links") => {
            let root = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(workspace_root);
            let broken = doclinks::run(&root);
            for b in &broken {
                eprint!("{}", b.render());
            }
            if broken.is_empty() {
                eprintln!("xtask doc-links: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("xtask doc-links: {} broken link(s)", broken.len());
                ExitCode::FAILURE
            }
        }
        Some(other) => {
            eprintln!(
                "xtask: unknown task `{other}`\n\nusage: cargo run -p xtask -- <lint|doc-links> [root] [--json PATH]"
            );
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- <lint|doc-links> [root] [--json PATH]");
            ExitCode::FAILURE
        }
    }
}
