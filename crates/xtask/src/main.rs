//! Workspace automation driver: `cargo run -p xtask -- <task>`.
//!
//! Tasks:
//! - `lint` — run the static-analysis gate over all library code and exit
//!   nonzero when any finding survives (used by CI).
//! - `doc-links` — verify that every relative link in the repository's
//!   markdown files resolves to an existing file (used by CI).

mod doclinks;
mod lint;

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/xtask; the workspace root is two up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(workspace_root);
            let findings = lint::run(&root);
            for f in &findings {
                eprint!("{}", f.render());
            }
            if findings.is_empty() {
                eprintln!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("xtask lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Some("doc-links") => {
            let root = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(workspace_root);
            let broken = doclinks::run(&root);
            for b in &broken {
                eprint!("{}", b.render());
            }
            if broken.is_empty() {
                eprintln!("xtask doc-links: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("xtask doc-links: {} broken link(s)", broken.len());
                ExitCode::FAILURE
            }
        }
        Some(other) => {
            eprintln!(
                "xtask: unknown task `{other}`\n\nusage: cargo run -p xtask -- <lint|doc-links> [root]"
            );
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- <lint|doc-links> [root]");
            ExitCode::FAILURE
        }
    }
}
