//! SABRE mapping benchmarks on the 10x10 grid.

use criterion::{criterion_group, criterion_main, Criterion};
use nsb_compiler::{sabre_route, SabreConfig};
use nsb_core::prelude::*;

fn bench_sabre(c: &mut Criterion) {
    let topo = GridTopology::new(10, 10);
    let cfg = SabreConfig::default();
    let mut group = c.benchmark_group("routing/sabre");
    group.sample_size(10);
    for (name, circuit) in [
        ("qft20", generators::qft(20, true)),
        ("bv49", generators::bv_all_ones(49)),
        ("cuccaro20", generators::cuccaro_adder(9)),
    ] {
        group.bench_function(name, |b| b.iter(|| sabre_route(&circuit, &topo, &cfg)));
    }
    group.finish();
}

criterion_group!(benches, bench_sabre);
criterion_main!(benches);
