//! Weyl-chamber geometry micro-benchmarks: coordinate extraction,
//! canonicalization and region membership (the inner loops of basis-gate
//! selection and the Monte-Carlo volume estimates).

use criterion::{criterion_group, criterion_main, Criterion};
use nsb_core::prelude::*;
use nsb_weyl::{can_cnot_in_2, can_swap_in_3};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_kak_vector(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let gates: Vec<Mat4> = (0..32).map(|_| nsb_math::haar_u4(&mut rng)).collect();
    let mut k = 0usize;
    c.bench_function("weyl/kak_vector", |b| {
        b.iter(|| {
            k = (k + 1) % gates.len();
            kak_vector(&gates[k])
        })
    });
}

fn bench_canonicalize(c: &mut Criterion) {
    let p = WeylCoord::new(-1.37, 0.84, 0.21);
    c.bench_function("weyl/canonicalize", |b| b.iter(|| p.canonicalize()));
}

fn bench_region_membership(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let points: Vec<WeylCoord> = (0..64)
        .map(|_| nsb_weyl::sample_chamber(&mut rng))
        .collect();
    let mut k = 0usize;
    c.bench_function("weyl/swap3_and_cnot2_membership", |b| {
        b.iter(|| {
            k = (k + 1) % points.len();
            (can_swap_in_3(points[k]), can_cnot_in_2(points[k]))
        })
    });
}

fn bench_full_kak(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let gates: Vec<Mat4> = (0..8).map(|_| nsb_math::haar_u4(&mut rng)).collect();
    let mut k = 0usize;
    let mut group = c.benchmark_group("weyl/full_kak");
    group.sample_size(20);
    group.bench_function("kak_decompose", |b| {
        b.iter(|| {
            k = (k + 1) % gates.len();
            nsb_synth::kak_decompose(&gates[k])
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kak_vector,
    bench_canonicalize,
    bench_region_membership,
    bench_full_kak
);
criterion_main!(benches);
