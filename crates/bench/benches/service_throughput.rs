//! Batch compilation throughput: cached-parallel service versus serial
//! one-at-a-time transpilation over the Table II benchmarks that fit a
//! small device.

use criterion::{criterion_group, criterion_main, Criterion};
use nsb_core::prelude::*;
use std::sync::OnceLock;

fn device() -> &'static Device {
    static DEVICE: OnceLock<Device> = OnceLock::new();
    DEVICE.get_or_init(|| Device::build(4, 3, DeviceConfig::fast_test()).expect("bench device"))
}

/// The batch both sides compile: small Table II entries, two strategies.
fn batch() -> Vec<(BasisStrategy, Circuit)> {
    let capacity = device().topology().n_qubits();
    table2_suite(7)
        .into_iter()
        .filter(|b| b.circuit.n_qubits() <= capacity)
        .flat_map(|b| {
            [BasisStrategy::Baseline, BasisStrategy::Criterion2]
                .into_iter()
                .map(move |s| (s, b.circuit.clone()))
        })
        .collect()
}

fn bench_batch_compilation(c: &mut Criterion) {
    let jobs = batch();
    let mut group = c.benchmark_group("service/table2_batch");
    group.sample_size(10);

    group.bench_function("serial", |b| {
        b.iter(|| {
            for (strategy, circuit) in &jobs {
                Transpiler::new(device(), *strategy)
                    .compile(circuit)
                    .expect("serial compile");
            }
        })
    });

    group.bench_function("cached_parallel", |b| {
        b.iter(|| {
            let service = CompileService::new(
                device().clone(),
                ServiceConfig {
                    queue_capacity: jobs.len().max(1),
                    ..ServiceConfig::default()
                },
            )
            .expect("start service");
            let handles: Vec<_> = jobs
                .iter()
                .map(|(strategy, circuit)| {
                    service
                        .submit(JobSpec::new(circuit.clone(), *strategy))
                        .expect("submit")
                })
                .collect();
            for h in handles {
                h.wait().expect("service compile");
            }
            service.shutdown();
        })
    });

    // Intra-job fan-out: a single worker so the only parallelism is the
    // per-job scoped-thread prewarm of distinct synthesis targets.
    // Compare against `one_worker` to see what the fan-out alone buys.
    for (id, intra) in [("one_worker", 1usize), ("one_worker_fanout4", 4)] {
        group.bench_function(id, |b| {
            b.iter(|| {
                let service = CompileService::new(
                    device().clone(),
                    ServiceConfig {
                        workers: 1,
                        queue_capacity: jobs.len().max(1),
                        intra_job_threads: intra,
                        ..ServiceConfig::default()
                    },
                )
                .expect("start service");
                let handles: Vec<_> = jobs
                    .iter()
                    .map(|(strategy, circuit)| {
                        service
                            .submit(JobSpec::new(circuit.clone(), *strategy))
                            .expect("submit")
                    })
                    .collect();
                for h in handles {
                    h.wait().expect("service compile");
                }
                service.shutdown();
            })
        });
    }

    // Warm-started variant: each iteration builds a fresh service but
    // preloads its cache from a snapshot persisted once up front, so the
    // measured delta versus `cached_parallel` is what warm starts save.
    let store_dir =
        std::env::temp_dir().join(format!("nsb-bench-warm-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = SnapshotStore::open(&store_dir).expect("open store");
    {
        let seed = CompileService::new(
            device().clone(),
            ServiceConfig {
                queue_capacity: jobs.len().max(1),
                ..ServiceConfig::default()
            },
        )
        .expect("seed service");
        for (strategy, circuit) in &jobs {
            seed.submit(JobSpec::new(circuit.clone(), *strategy))
                .expect("submit")
                .wait()
                .expect("seed compile");
        }
        seed.drain_to(&store).expect("persist seed cache");
        seed.shutdown();
    }
    group.bench_function("warm_started_parallel", |b| {
        b.iter(|| {
            let service = CompileService::new(
                device().clone(),
                ServiceConfig {
                    queue_capacity: jobs.len().max(1),
                    ..ServiceConfig::default()
                },
            )
            .expect("start service");
            service.warm_start_from(&store).expect("warm start");
            let handles: Vec<_> = jobs
                .iter()
                .map(|(strategy, circuit)| {
                    service
                        .submit(JobSpec::new(circuit.clone(), *strategy))
                        .expect("submit")
                })
                .collect();
            for h in handles {
                h.wait().expect("service compile");
            }
            service.shutdown();
        })
    });
    let _ = std::fs::remove_dir_all(&store_dir);

    group.finish();
}

criterion_group!(benches, bench_batch_compilation);
criterion_main!(benches);
