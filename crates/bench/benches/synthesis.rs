//! Gate-synthesis micro-benchmarks, including the Section VII ablation:
//! the analytic depth oracle versus NuOp-style incremental layer search.

use criterion::{criterion_group, criterion_main, Criterion};
use nsb_core::prelude::*;
use nsb_weyl::canonical_gate;

fn bench_depth_oracle_ablation(c: &mut Criterion) {
    // A nonstandard basis gate similar to what Criterion 1 selects.
    let basis = canonical_gate(WeylCoord::new(0.30, 0.26, 0.03));
    let with_oracle = Decomposer::with_config(
        basis,
        DecomposerConfig {
            use_depth_oracle: true,
            ..DecomposerConfig::default()
        },
    );
    let without_oracle = Decomposer::with_config(
        basis,
        DecomposerConfig {
            use_depth_oracle: false,
            ..DecomposerConfig::default()
        },
    );
    let mut group = c.benchmark_group("synthesis/swap_into_nonstandard");
    group.sample_size(10);
    group.bench_function("with_depth_oracle", |b| {
        b.iter(|| with_oracle.decompose(&Mat4::swap()).unwrap())
    });
    group.bench_function("nuop_incremental", |b| {
        b.iter(|| without_oracle.decompose(&Mat4::swap()).unwrap())
    });
    group.finish();

    let mut group = c.benchmark_group("synthesis/cnot_into_nonstandard");
    group.sample_size(10);
    group.bench_function("with_depth_oracle", |b| {
        b.iter(|| with_oracle.decompose(&Mat4::cnot()).unwrap())
    });
    group.bench_function("nuop_incremental", |b| {
        b.iter(|| without_oracle.decompose(&Mat4::cnot()).unwrap())
    });
    group.finish();
}

fn bench_standard_targets(c: &mut Criterion) {
    let dec = Decomposer::new(Mat4::sqrt_iswap());
    let mut group = c.benchmark_group("synthesis/sqrt_iswap_basis");
    group.sample_size(10);
    group.bench_function("swap_3layer", |b| {
        b.iter(|| dec.decompose(&Mat4::swap()).unwrap())
    });
    group.bench_function("cphase_direct", |b| {
        b.iter(|| dec.decompose(&Mat4::cphase(0.7)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_depth_oracle_ablation, bench_standard_targets);
criterion_main!(benches);
