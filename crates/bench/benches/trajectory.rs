//! Pulse-simulation benchmarks: the per-edge cost of trajectory
//! generation that dominates device calibration.

use criterion::{criterion_group, criterion_main, Criterion};
use nsb_core::prelude::*;

fn bench_trajectory(c: &mut Criterion) {
    let cell = PreparedCell::prepare(&UnitCellParams::default());
    let mut group = c.benchmark_group("sim/trajectory");
    group.sample_size(10);
    group.bench_function("strong_drive_20ns", |b| {
        let cfg = TrajectoryConfig {
            t_max: 20.0,
            drive_scan_points: 1,
            ..TrajectoryConfig::default()
        };
        b.iter(|| cell.trajectory(0.04, &cfg))
    });
    group.bench_function("zero_zz_bias_search", |b| {
        b.iter(|| PreparedCell::prepare(&UnitCellParams::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_trajectory);
criterion_main!(benches);
