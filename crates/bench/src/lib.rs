//! # nsb-bench
//!
//! Table/figure regeneration binaries and Criterion micro-benchmarks for
//! the MICRO 2022 reproduction. See the `bin/` targets:
//!
//! * `table1`, `table2` — the paper's evaluation tables;
//! * `fig2_trajectory`, `fig4_regions`, `fig5_stability`, `fig7_device` —
//!   the figures;
//!
//! and the benches `synthesis` (including the Section VII depth-oracle
//! ablation), `weyl_geometry`, `routing`, `trajectory`.

#![forbid(unsafe_code)]
