//! Regenerates Table II: coherence-limited fidelities of the benchmark
//! circuits (QFT, BV, Cuccaro, QAOA) compiled to the 10x10 device with the
//! three basis-gate strategies.
//!
//! Run with: `cargo run --release -p nsb-bench --bin table2`

use nsb_core::prelude::*;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2022u64);
    eprintln!("building 10x10 case-study device (seed {seed})...");
    let t0 = std::time::Instant::now();
    let device = build_case_study_device(seed).expect("device build");
    eprintln!("device ready in {:.1} s", t0.elapsed().as_secs_f64());

    // Paper Table II for shape comparison.
    let paper: &[(&str, f64, f64, f64)] = &[
        ("qft 10", 0.582, 0.656, 0.708),
        ("qft 20", 0.0133, 0.0603, 0.0994),
        ("bv 9", 0.887, 0.944, 0.953),
        ("bv 19", 0.793, 0.899, 0.910),
        ("bv 29", 0.445, 0.725, 0.743),
        ("bv 39", 0.268, 0.563, 0.597),
        ("bv 49", 0.277, 0.584, 0.624),
        ("bv 59", 0.125, 0.438, 0.474),
        ("bv 69", 0.0915, 0.394, 0.432),
        ("bv 79", 0.00428, 0.113, 0.142),
        ("bv 89", 0.0244, 0.231, 0.263),
        ("bv 99", 0.0006, 0.0626, 0.0797),
        ("cuccaro 10", 0.215, 0.463, 0.526),
        ("cuccaro 20", 0.008, 0.0768, 0.118),
        ("qaoa 0.1 10", 0.972, 0.985, 0.988),
        ("qaoa 0.1 20", 0.844, 0.920, 0.936),
        ("qaoa 0.1 30", 0.144, 0.433, 0.490),
        ("qaoa 0.1 40", 0.0000585, 0.0559, 0.0856),
        ("qaoa 0.33 10", 0.661, 0.810, 0.843),
        ("qaoa 0.33 20", 0.150, 0.422, 0.482),
    ];

    println!("Table II — coherence-limited benchmark fidelities");
    println!("(ours first, paper in brackets)\n");
    println!(
        "{:<14} {:>6} {:>6} | {:>22} {:>22} {:>22}",
        "benchmark", "2Q", "swaps", "Baseline", "Criterion 1", "Criterion 2"
    );
    let mut ordered_ok = 0usize;
    let mut total = 0usize;
    for bench in table2_suite(seed) {
        let t = std::time::Instant::now();
        let row = evaluate_benchmark(&device, &bench).expect("compile");
        let p = paper.iter().find(|(n, ..)| *n == bench.name);
        let fmt = |ours: f64, paper: Option<f64>| match paper {
            Some(p) => format!("{:>8.4} [{:>8.4}]", ours, p),
            None => format!("{:>8.4} [   n/a  ]", ours),
        };
        println!(
            "{:<14} {:>6} {:>6} | {} {} {}",
            row.name,
            row.logical_2q,
            row.results[0].swaps,
            fmt(row.results[0].fidelity, p.map(|x| x.1)),
            fmt(row.results[1].fidelity, p.map(|x| x.2)),
            fmt(row.results[2].fidelity, p.map(|x| x.3)),
        );
        total += 1;
        if row.results[2].fidelity >= row.results[1].fidelity - 0.02
            && row.results[1].fidelity > row.results[0].fidelity
        {
            ordered_ok += 1;
        }
        eprintln!(
            "  [{} compiled in {:.1} s]",
            row.name,
            t.elapsed().as_secs_f64()
        );
    }
    println!("\nordering check (C2 >= C1 > Baseline): {ordered_ok}/{total} rows");
}
