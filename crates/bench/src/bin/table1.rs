//! Regenerates Table I: average duration and coherence-limited fidelity of
//! the 2Q basis gates and the synthesized SWAP / CNOT gates, for the
//! Baseline, Criterion 1 and Criterion 2 strategies, on the full 10x10
//! case-study device.
//!
//! Run with: `cargo run --release -p nsb-bench --bin table1`

use nsb_core::prelude::*;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2022u64);
    eprintln!("building 10x10 case-study device (seed {seed})...");
    let t0 = std::time::Instant::now();
    let device = build_case_study_device(seed).expect("device build");
    eprintln!(
        "device ready in {:.1} s ({} edges)",
        t0.elapsed().as_secs_f64(),
        device.edges().len()
    );

    println!("Table I — average duration (ns) and coherence-limited fidelity");
    println!("(paper values in brackets; T = 80 us, 1Q gates = 20 ns)\n");
    println!(
        "{:<12} {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10}",
        "Strategy", "Basis ns", "Basis F", "SWAP ns", "SWAP F", "CNOT ns", "CNOT F"
    );
    let paper = [
        ("Baseline", 83.04, 0.99884, 329.1, 0.99541, 226.1, 0.99684),
        (
            "Criterion 1",
            10.15,
            0.99986,
            110.5,
            0.99845,
            110.5,
            0.99845,
        ),
        (
            "Criterion 2",
            10.76,
            0.99985,
            112.3,
            0.99843,
            81.51,
            0.99886,
        ),
    ];
    let mut rows = Vec::new();
    for (strategy, p) in BasisStrategy::ALL.iter().zip(paper) {
        let row = device.table1_row(*strategy);
        println!(
            "{:<12} {:>10.2} {:>10.5} | {:>10.1} {:>10.5} | {:>10.1} {:>10.5}",
            format!("{strategy}"),
            row.basis_duration,
            row.basis_fidelity,
            row.swap_duration,
            row.swap_fidelity,
            row.cnot_duration,
            row.cnot_fidelity
        );
        println!(
            "{:<12} {:>10.2} {:>10.5} | {:>10.1} {:>10.5} | {:>10.1} {:>10.5}",
            "  [paper]", p.1, p.2, p.3, p.4, p.5, p.6
        );
        rows.push(row);
    }
    let speedup = rows[0].basis_duration / rows[1].basis_duration;
    let swap_speedup_1 = rows[0].swap_duration / rows[1].swap_duration;
    let swap_speedup_2 = rows[0].swap_duration / rows[2].swap_duration;
    let cnot_speedup_1 = rows[0].cnot_duration / rows[1].cnot_duration;
    let cnot_speedup_2 = rows[0].cnot_duration / rows[2].cnot_duration;
    println!("\nshape checks (paper values in brackets):");
    println!("  basis-gate speedup, Criterion 1 vs baseline: {speedup:.1}x   [~8x]");
    println!("  SWAP speedup:  C1 {swap_speedup_1:.1}x, C2 {swap_speedup_2:.1}x   [3.0x, 2.9x]");
    println!("  CNOT speedup:  C1 {cnot_speedup_1:.1}x, C2 {cnot_speedup_2:.1}x   [2.0x, 2.8x]");
    let mean_leak: f64 = device
        .edges()
        .iter()
        .map(|e| e.criterion1.leakage)
        .sum::<f64>()
        / device.edges().len() as f64;
    println!("  mean Criterion-1 basis-gate leakage: {mean_leak:.2e}");
}
