//! Ablation studies beyond the paper's headline tables:
//!
//! 1. **Alternative selection criterion** (Section V-E mentions it): the
//!    fastest perfect entangler that also synthesizes SWAP in 3 layers,
//!    compared against Criterion 1 and Criterion 2.
//! 2. **Lowering mode**: routing parametrized gates through the cached
//!    CNOT decomposition (the paper's minimalist choice for the criteria)
//!    versus decomposing each target directly into the basis gate (the
//!    paper's baseline path). Quantifies what the "pre-compute only SWAP
//!    and CNOT" compromise costs.
//! 3. **1Q-merge pass**: local-gate counts with merging on (the default)
//!    versus the unmerged lower bound of `(L+1)` locals per synthesized
//!    gate, showing how much schedule time the merge recovers.
//!
//! Run with: `cargo run --release -p nsb-bench --bin ablations`

use nsb_core::prelude::*;
use nsb_weyl::entangling_power;

fn main() {
    // 1. Selection criteria on one strong-drive trajectory.
    println!("== Selection criteria on one strong-drive trajectory ==");
    let cell = PreparedCell::prepare(&UnitCellParams::default());
    let cfg = TrajectoryConfig {
        t_max: 35.0,
        ..TrajectoryConfig::default()
    };
    let traj = cell.trajectory(0.04, &cfg);
    let coords = traj.coords();
    for (name, crit) in [
        ("Criterion 1 (SWAP-in-3)", SelectionCriterion::SwapIn3),
        (
            "Criterion 2 (SWAP-in-3 + CNOT-in-2)",
            SelectionCriterion::SwapIn3CnotIn2,
        ),
        (
            "Alt: PE + SWAP-in-3 (Sec V-E)",
            SelectionCriterion::PerfectEntanglerSwapIn3,
        ),
    ] {
        match first_crossing(&coords, crit, 0.15) {
            Some(i) => {
                let p = &traj.points[i];
                let dec = Decomposer::new(p.gate);
                let swap = dec.decompose(&Mat4::swap()).expect("swap");
                let cnot = dec.decompose(&Mat4::cnot()).expect("cnot");
                println!(
                    "{name:<38} {:>5.1} ns  ep {:.3}  SWAP x{}  CNOT x{}",
                    p.duration,
                    entangling_power(p.coord),
                    swap.layers,
                    cnot.layers
                );
            }
            None => println!("{name:<38} no crossing"),
        }
    }

    // 2 + 3. Lowering-mode and merge statistics on a compiled benchmark.
    println!("\n== Lowering mode (ViaCnot vs Direct), QFT-6 on a 3x2 device ==");
    let device = Device::build(3, 2, DeviceConfig::fast_test()).expect("device");
    let qft = generators::qft(6, true);
    for (label, mode) in [
        ("ViaCnot (cache SWAP+CNOT only)", LoweringMode::ViaCnot),
        ("Direct  (per-target synthesis)", LoweringMode::Direct),
    ] {
        let compiled = Transpiler::new(&device, BasisStrategy::Criterion2)
            .with_mode(mode)
            .compile(&qft)
            .expect("compile");
        let overlap = verify_compiled(&qft, &compiled);
        println!(
            "{label}: {:>4} entanglers, {:>4} locals, {:>8.1} ns, fidelity {:.4}, verified {:.6}",
            compiled.schedule.entangler_count,
            compiled.schedule.local_count,
            compiled.schedule.duration,
            compiled.fidelity,
            overlap
        );
    }
    println!(
        "\n(Direct mode needs fewer entanglers per CPhase — 2 instead of up\n\
         to 4 via the CNOT expansion — at the cost of one numerical\n\
         synthesis per distinct (edge, angle) pair; the paper accepts the\n\
         ViaCnot compromise because only SWAP and CNOT are pre-computed\n\
         each calibration cycle.)"
    );

    // 3. Merge effectiveness.
    println!("\n== 1Q-merge effectiveness (GHZ-6, Criterion 1) ==");
    let ghz = generators::ghz(6);
    let compiled = Transpiler::new(&device, BasisStrategy::Criterion1)
        .compile(&ghz)
        .expect("compile");
    let unmerged_locals: usize = compiled.schedule.entangler_count * 2 + 2;
    println!(
        "locals after merge: {} (naive per-layer emission would be >= {})",
        compiled.schedule.local_count, unmerged_locals
    );
    println!(
        "duration {:.1} ns, fidelity {:.4}",
        compiled.schedule.duration, compiled.fidelity
    );
}
