//! Regenerates Figure 2: a nonstandard Cartan trajectory from the
//! strong-drive simulation, printing the per-ns Weyl-chamber coordinates
//! and the first perfect entangler (the paper's measured device showed a
//! 13 ns first PE; our simulated equivalent lands in the same regime).
//!
//! Run with: `cargo run --release -p nsb-bench --bin fig2_trajectory`

use nsb_core::prelude::*;
use nsb_weyl::{entangling_power, is_perfect_entangler};

fn main() {
    let xi = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.04f64);
    println!("simulating the case-study unit cell at xi = {xi} Phi_0\n");
    let cell = PreparedCell::prepare(&UnitCellParams::default());
    println!(
        "zero-ZZ coupler bias: {:.4} GHz (residual ZZ {:.2e} rad/ns)",
        cell.params.omega_c / (2.0 * std::f64::consts::PI),
        cell.residual_zz
    );
    let cfg = TrajectoryConfig {
        t_max: 40.0,
        ..TrajectoryConfig::default()
    };
    let traj = cell.trajectory(xi, &cfg);
    println!(
        "calibrated drive: {:.4} GHz (difference frequency {:.4} GHz)\n",
        traj.drive.omega_d / (2.0 * std::f64::consts::PI),
        cell.difference_frequency() / (2.0 * std::f64::consts::PI)
    );
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>8} {:>9} {:>4}",
        "t(ns)", "tx", "ty", "tz", "ep", "leakage", "PE"
    );
    for p in &traj.points {
        println!(
            "{:>6.1} {:>10.5} {:>10.5} {:>10.5} {:>8.4} {:>9.2e} {:>4}",
            p.duration,
            p.coord.x,
            p.coord.y,
            p.coord.z,
            entangling_power(p.coord),
            p.leakage,
            if is_perfect_entangler(p.coord, 1e-9) {
                "yes"
            } else {
                ""
            }
        );
    }
    match traj.first_perfect_entangler() {
        Some(p) => println!(
            "\nfirst perfect entangler at {} ns, coord {} (paper's measured device: 13 ns)",
            p.duration, p.coord
        ),
        None => println!("\nno perfect entangler within the window"),
    }
    let coords = traj.coords();
    for (name, crit) in [
        ("Criterion 1 (SWAP in 3)", SelectionCriterion::SwapIn3),
        (
            "Criterion 2 (SWAP in 3 + CNOT in 2)",
            SelectionCriterion::SwapIn3CnotIn2,
        ),
    ] {
        match first_crossing(&coords, crit, 0.15) {
            Some(i) => println!(
                "{name}: selected gate at {} ns, coord {}",
                traj.points[i].duration, traj.points[i].coord
            ),
            None => println!("{name}: no crossing in window"),
        }
    }
}
