//! Regenerates Figure 5: Cartan trajectories at two drive amplitudes
//! (xi = 0.005 and 0.01 Phi_0). The paper's measured trajectories doubled
//! in speed when the amplitude doubled while staying qualitatively
//! similar; the same holds for the simulated trajectories.
//!
//! Run with: `cargo run --release -p nsb-bench --bin fig5_stability`

use nsb_core::prelude::*;
use nsb_sim::trajectory_speed;

fn main() {
    let cell = PreparedCell::prepare(&UnitCellParams::default());
    let mut speeds = Vec::new();
    for (xi, t_max) in [(0.005f64, 120.0f64), (0.01, 60.0)] {
        let cfg = TrajectoryConfig {
            t_max,
            ..TrajectoryConfig::default()
        };
        let traj = cell.trajectory(xi, &cfg);
        println!(
            "xi = {xi} Phi_0 (delta = {:.2} MHz):",
            1e3 * traj.drive.delta / (2.0 * std::f64::consts::PI)
        );
        println!("{:>7} {:>10} {:>10} {:>10}", "t(ns)", "tx", "ty", "tz");
        for p in traj.points.iter().step_by((t_max as usize) / 12) {
            println!(
                "{:>7.1} {:>10.5} {:>10.5} {:>10.5}",
                p.duration, p.coord.x, p.coord.y, p.coord.z
            );
        }
        let v = trajectory_speed(&traj, traj.points.len());
        println!("mean Weyl-space speed: {v:.5} /ns\n");
        speeds.push((xi, v, traj));
    }
    let ratio = speeds[1].1 / speeds[0].1;
    println!("speed ratio (xi doubled): {ratio:.2}x   [paper: ~2x]");
    // Shape similarity: compare coordinates at matched fractional times.
    let (a, b) = (&speeds[0].2, &speeds[1].2);
    let mut shape_dist: f64 = 0.0;
    let mut count = 0;
    for k in 1..=10 {
        let ia = (a.points.len() * k / 10).min(a.points.len() - 1);
        let ib = (b.points.len() * k / 10).min(b.points.len() - 1);
        shape_dist += a.points[ia].coord.class_dist(b.points[ib].coord);
        count += 1;
    }
    shape_dist /= count as f64;
    println!("mean shape distance at matched fractional time: {shape_dist:.4}");
    println!("(small distance = trajectories are rescaled copies, as in Fig. 5)");
}
