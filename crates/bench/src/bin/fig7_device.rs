//! Regenerates Figure 7: the 10x10 device sketch with its checkerboard
//! frequency allocation, plus the edge-coloring used to parallelize
//! calibration (Section VI: a grid needs 4 colors).
//!
//! Run with: `cargo run --release -p nsb-bench --bin fig7_device`

use nsb_core::prelude::*;
use nsb_device::FrequencyAllocation;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2022u64);
    let grid = GridTopology::new(10, 10);
    let mut rng = StdRng::seed_from_u64(seed);
    let alloc = FrequencyAllocation::sample(&grid, &FrequencyPlan::default(), &mut rng);
    println!("10x10 grid, checkerboard frequency groups (GHz), seed {seed}:\n");
    for r in 0..10 {
        let mut line = String::new();
        for c in 0..10 {
            let q = grid.qubit_at(r, c);
            let tag = if alloc.is_high_group(q) { 'H' } else { 'L' };
            line.push_str(&format!("{tag}{:5.2} ", alloc.frequency(q)));
        }
        println!("{line}");
    }
    let lows: Vec<f64> = (0..100)
        .filter(|&q| !alloc.is_high_group(q))
        .map(|q| alloc.frequency(q))
        .collect();
    let highs: Vec<f64> = (0..100)
        .filter(|&q| alloc.is_high_group(q))
        .map(|q| alloc.frequency(q))
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nlow group:  mean {:.3} GHz ({} qubits)   [plan: 4.3]",
        mean(&lows),
        lows.len()
    );
    println!(
        "high group: mean {:.3} GHz ({} qubits)   [plan: 6.3]",
        mean(&highs),
        highs.len()
    );
    let detunings: Vec<f64> = grid
        .edges()
        .iter()
        .map(|&(a, b)| (alloc.frequency(a) - alloc.frequency(b)).abs())
        .collect();
    let min_det = detunings.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "per-edge detuning: min {:.2} GHz, mean {:.2} GHz (every pair far detuned)",
        min_det,
        mean(&detunings)
    );
    // Edge coloring for parallel calibration.
    let colors = grid.edge_coloring();
    let mut counts = [0usize; 4];
    for &c in &colors {
        counts[c] += 1;
    }
    println!(
        "\nedge coloring for parallel calibration: {} colors, group sizes {:?}",
        counts.iter().filter(|&&c| c > 0).count(),
        counts
    );
    println!("=> calibration overhead does not scale with device size (Section VI)");
}
