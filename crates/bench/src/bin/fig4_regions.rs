//! Regenerates Figure 4 and the Section V volume numbers: Monte-Carlo
//! volume fractions of the perfect-entangler polyhedron (50%), S_SWAP,3
//! (68.5%) and S_CNOT,2 (75%), the mirror-segment structure of Appendix B,
//! and a cross-validation of the region geometry against the numerical
//! synthesis oracle.
//!
//! Run with: `cargo run --release -p nsb-bench --bin fig4_regions`

use nsb_core::prelude::*;
use nsb_synth::{numerical_can_cnot_in_2, numerical_can_swap_in_3, OracleConfig};
use nsb_weyl::{
    can_swap_in_2_pair, cnot2_complement, is_perfect_entangler, sample_chamber, swap3_complement,
    volume_fraction,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let samples = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000u32);
    let mut rng = StdRng::seed_from_u64(0xf19u64);

    println!("== Exact tetrahedron volumes (Figure 4 d/e) ==");
    let chamber = nsb_weyl::chamber_volume();
    let s3: f64 = swap3_complement().iter().map(|t| t.tet.volume()).sum();
    let c2: f64 = cnot2_complement().iter().map(|t| t.tet.volume()).sum();
    println!("chamber volume: {chamber:.6} (= 1/24)");
    println!(
        "S_SWAP,3 complement: {:.4} of chamber  =>  S_SWAP,3 = {:.1}%   [paper: 68.5%]",
        s3 / chamber,
        100.0 * (1.0 - s3 / chamber)
    );
    println!(
        "S_CNOT,2 complement: {:.4} of chamber  =>  S_CNOT,2 = {:.1}%   [paper: 75%]",
        c2 / chamber,
        100.0 * (1.0 - c2 / chamber)
    );

    println!("\n== Monte-Carlo membership fractions ({samples} samples) ==");
    let pe = volume_fraction(|p| is_perfect_entangler(p, 0.0), samples, &mut rng);
    println!("perfect entanglers: {:.2}%   [50%]", 100.0 * pe);
    let s3 = volume_fraction(can_swap_in_3, samples, &mut rng);
    println!("SWAP in 3 layers:   {:.2}%   [68.5%]", 100.0 * s3);
    let c2 = volume_fraction(can_cnot_in_2, samples, &mut rng);
    println!("CNOT in 2 layers:   {:.2}%   [75%]", 100.0 * c2);
    let both = volume_fraction(|p| can_swap_in_3(p) && can_cnot_in_2(p), samples, &mut rng);
    println!("both (Fig. 4f):     {:.2}%", 100.0 * both);

    println!("\n== Appendix B mirror structure (Figure 4 a/b) ==");
    println!(
        "CNOT <-> iSWAP mirror pair: {}",
        can_swap_in_2_pair(WeylCoord::CNOT, WeylCoord::ISWAP, 1e-9)
    );
    for k in 0..=4 {
        let t = k as f64 / 4.0;
        // L0 runs from the B gate to sqrt(SWAP).
        let p = WeylCoord::new(0.5 - 0.25 * t, 0.25, 0.25 * t);
        println!("L0 point {p}: self-mirror = {}", p.is_self_mirror(1e-9));
    }
    // An XY-deviating trajectory and its mirror trajectory (Fig. 4b).
    println!("\nexample trajectory vs mirror (blue/orange in Fig. 4b):");
    for k in [0.2f64, 0.5, 0.8] {
        let p = WeylCoord::new(0.52 * k, 0.48 * k, 0.04 * k).canonicalize();
        let m = p.mirror();
        println!("  {p}  ->  {m}");
    }

    println!("\n== Numerical-oracle cross-validation (36 interior points) ==");
    let cfg = OracleConfig::default();
    let mut rng = StdRng::seed_from_u64(0xcafe);
    let mut agree = 0;
    let mut checked = 0;
    while checked < 36 {
        let p = sample_chamber(&mut rng);
        // Stay away from region boundaries where tolerances differ.
        if near_boundary(p, 0.02) {
            continue;
        }
        let ok_s3 = numerical_can_swap_in_3(p, &cfg) == can_swap_in_3(p);
        let ok_c2 = numerical_can_cnot_in_2(p, &cfg) == can_cnot_in_2(p);
        if ok_s3 && ok_c2 {
            agree += 1;
        } else {
            println!("  disagreement at {p}");
        }
        checked += 1;
    }
    println!("agreement: {agree}/{checked}");
}

fn near_boundary(p: WeylCoord, margin: f64) -> bool {
    let near = |tets: &[nsb_weyl::ComplementTet]| {
        tets.iter().any(|t| {
            let inside = t.excludes(p);
            let inflated = t
                .tet
                .barycentric(p)
                .is_some_and(|w| w.iter().all(|&v| v >= -margin));
            inside != inflated
        })
    };
    near(&swap3_complement()) || near(&cnot2_complement())
}
