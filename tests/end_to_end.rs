//! End-to-end integration tests: build a small device, compile the
//! benchmark suite with all three strategies, verify compiled circuits by
//! statevector simulation, and check the paper's qualitative orderings.

use nonstandard_basis::prelude::*;
use std::sync::OnceLock;

fn device() -> &'static Device {
    static DEVICE: OnceLock<Device> = OnceLock::new();
    DEVICE.get_or_init(|| Device::build(3, 2, DeviceConfig::fast_test()).expect("device"))
}

#[test]
fn small_suite_compiles_under_all_strategies() {
    let device = device();
    for bench in small_suite(11) {
        let row = evaluate_benchmark(device, &bench).expect("compile");
        for r in &row.results {
            assert!(r.fidelity > 0.0 && r.fidelity <= 1.0, "{}", bench.name);
            assert!(r.duration > 0.0);
            assert!(r.entanglers >= row.logical_2q, "{}", bench.name);
        }
    }
}

#[test]
fn criterion_strategies_beat_baseline_on_fidelity() {
    let device = device();
    let mut wins = 0;
    let mut total = 0;
    for bench in small_suite(11) {
        let row = evaluate_benchmark(device, &bench).expect("compile");
        total += 1;
        if row.results[1].fidelity > row.results[0].fidelity
            && row.results[2].fidelity > row.results[0].fidelity
        {
            wins += 1;
        }
    }
    assert!(
        wins >= total - 1,
        "criterion gates should beat the baseline on nearly all benchmarks ({wins}/{total})"
    );
}

#[test]
fn compiled_benchmarks_are_functionally_correct() {
    // Statevector verification of compiled programs against the logical
    // circuits, covering permutations from routing and the per-edge
    // nonstandard decompositions.
    let device = device();
    for bench in small_suite(11) {
        let compiled =
            compile_on(device, BasisStrategy::Criterion2, &bench.circuit).expect("compile");
        let overlap = verify_compiled(&bench.circuit, &compiled);
        assert!(
            overlap > 0.999,
            "{}: compiled/logical overlap {overlap}",
            bench.name
        );
    }
}

#[test]
fn bv_compiled_still_recovers_secret() {
    // Compile BV, then actually run the compiled program and read out the
    // secret from the physical qubits.
    let device = device();
    let secret = [true, false, true, true];
    let logical = generators::bernstein_vazirani(&secret);
    let compiled = compile_on(device, BasisStrategy::Criterion1, &logical).expect("compile");
    let mut state = StateVector::zero(compiled.n_qubits);
    state.apply_circuit(&compiled.to_circuit());
    let out = state.most_probable();
    let map = &compiled.final_layout.logical_to_physical;
    for (l, &bit) in secret.iter().enumerate() {
        let phys = map[l];
        let measured = out >> (compiled.n_qubits - 1 - phys) & 1 == 1;
        assert_eq!(measured, bit, "data qubit {l}");
    }
}

#[test]
fn per_edge_basis_gates_actually_differ() {
    // The paper's core idea: every pair gets its own gate. Frequencies
    // differ per edge, so selected durations and coordinates differ.
    let device = device();
    let c1_durations: Vec<f64> = device
        .edges()
        .iter()
        .map(|e| e.criterion1.duration)
        .collect();
    let distinct = {
        let mut d = c1_durations.clone();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        d.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        d.len()
    };
    assert!(
        distinct >= 2,
        "heterogeneous device should have heterogeneous basis gates: {c1_durations:?}"
    );
}

#[test]
fn table1_orderings_hold_on_small_device() {
    let device = device();
    let base = device.table1_row(BasisStrategy::Baseline);
    let c1 = device.table1_row(BasisStrategy::Criterion1);
    let c2 = device.table1_row(BasisStrategy::Criterion2);
    // Basis gates: criteria are faster and higher fidelity.
    assert!(c1.basis_duration < base.basis_duration);
    assert!(c1.basis_fidelity > base.basis_fidelity);
    // Synthesized gates keep the ordering.
    assert!(c1.swap_duration < base.swap_duration);
    assert!(c2.cnot_duration <= c1.cnot_duration + 1e-9);
}
