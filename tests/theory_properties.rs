//! Property-based tests of the theoretical core: canonicalization, KAK
//! coordinates, entangling power, mirror symmetry, region geometry and
//! synthesis — the invariants Section V relies on.

use nonstandard_basis::prelude::*;
use nsb_core::synth::decompose_with_bases;
use nsb_core::weyl::{
    can_swap_in_3, canonical_gate, entangling_power, is_perfect_entangler, local_invariants,
};
use proptest::prelude::*;

fn arb_coord() -> impl Strategy<Value = WeylCoord> {
    (-1.5f64..1.5, -1.5f64..1.5, -1.5f64..1.5).prop_map(|(x, y, z)| WeylCoord::new(x, y, z))
}

fn arb_chamber_coord() -> impl Strategy<Value = WeylCoord> {
    arb_coord().prop_map(|c| c.canonicalize())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn canonicalization_is_idempotent(c in arb_coord()) {
        let once = c.canonicalize();
        let twice = once.canonicalize();
        prop_assert!(once.dist(twice) < 1e-9, "{once} vs {twice}");
        prop_assert!(once.in_chamber(1e-9));
    }

    #[test]
    fn canonicalization_respects_pair_negation(c in arb_coord()) {
        let flipped = WeylCoord::new(-c.x, -c.y, c.z);
        prop_assert!(c.canonicalize().dist(flipped.canonicalize()) < 1e-9);
    }

    #[test]
    fn canonicalization_respects_integer_shifts(c in arb_coord()) {
        let shifted = WeylCoord::new(c.x + 1.0, c.y - 1.0, c.z);
        prop_assert!(c.canonicalize().dist(shifted.canonicalize()) < 1e-9);
    }

    #[test]
    fn kak_vector_round_trips_canonical_gates(c in arb_chamber_coord()) {
        let u = canonical_gate(c);
        let back = kak_vector(&u);
        prop_assert!(back.class_dist(c) < 1e-6, "{c} -> {back}");
    }

    #[test]
    fn entangling_power_bounds(c in arb_coord()) {
        let ep = entangling_power(c);
        prop_assert!((-1e-12..=2.0 / 9.0 + 1e-12).contains(&ep));
    }

    #[test]
    fn entangling_power_is_class_invariant(c in arb_coord()) {
        let ep1 = entangling_power(c);
        let ep2 = entangling_power(c.canonicalize());
        prop_assert!((ep1 - ep2).abs() < 1e-9);
    }

    #[test]
    fn mirror_is_involution(c in arb_chamber_coord()) {
        let mm = c.mirror().mirror();
        prop_assert!(mm.class_eq(c, 1e-7), "{c} -> {mm}");
    }

    #[test]
    fn perfect_entanglers_have_high_entangling_power(c in arb_chamber_coord()) {
        if is_perfect_entangler(c, -1e-9) {
            prop_assert!(entangling_power(c) >= 1.0 / 6.0 - 1e-9);
        }
    }

    #[test]
    fn invariants_agree_for_locally_equivalent_gates(c in arb_chamber_coord(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let u = canonical_gate(c);
        let l1 = Mat4::kron(&nsb_core::math::haar_su2(&mut rng), &nsb_core::math::haar_su2(&mut rng));
        let l2 = Mat4::kron(&nsb_core::math::haar_su2(&mut rng), &nsb_core::math::haar_su2(&mut rng));
        let (a1, a2, a3) = local_invariants(&u);
        let (b1, b2, b3) = local_invariants(&(l1 * u * l2));
        prop_assert!((a1 - b1).abs() < 1e-8 && (a2 - b2).abs() < 1e-8 && (a3 - b3).abs() < 1e-8);
    }

    #[test]
    fn swap_region_is_criterion_superset(c in arb_chamber_coord()) {
        // Criterion 2 accepts a point only if criterion 1 does.
        if SelectionCriterion::SwapIn3CnotIn2.accepts(c) {
            prop_assert!(SelectionCriterion::SwapIn3.accepts(c));
        }
    }
}

#[test]
fn mirror_pairs_synthesize_swap_in_two_layers() {
    // Randomized spot-check of Appendix B using the numerical synthesizer:
    // B and mirror(B) always build SWAP in two layers.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    // Decision tolerance 1e-5: exact decompositions occasionally stall in
    // the optimizer's slow tail around 1e-6, still 100x below the >1e-4
    // plateau of impossible targets.
    let cfg = DecomposerConfig {
        tol: 1e-5,
        ..DecomposerConfig::default()
    };
    for _ in 0..4 {
        let c = nsb_core::weyl::sample_chamber(&mut rng);
        let b = canonical_gate(c);
        let m = canonical_gate(c.mirror());
        let result = decompose_with_bases(&Mat4::swap(), &[b, m], &cfg);
        assert!(
            result.is_ok(),
            "mirror pair at {c} failed: {:?}",
            result.err()
        );
    }
}

#[test]
fn swap3_region_matches_synthesis_for_landmarks() {
    for (coord, expected) in [
        (WeylCoord::CNOT, true),
        (WeylCoord::ISWAP, true),
        (WeylCoord::SQRT_ISWAP, true),
        (WeylCoord::new(0.1, 0.08, 0.02), false),
    ] {
        assert_eq!(can_swap_in_3(coord), expected, "{coord}");
        let dec = Decomposer::new(canonical_gate(coord));
        let got = dec.decompose(&Mat4::swap()).map(|s| s.layers <= 3);
        assert_eq!(got.unwrap_or(false), expected, "synthesis at {coord}");
    }
}
