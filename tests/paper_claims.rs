//! Fast checks of the paper's headline quantitative claims that do not
//! need the full 10x10 device (those run in the bench binaries).

use nonstandard_basis::prelude::*;
use nsb_core::device::{coherence_limit_2q, synthesized_duration};
use nsb_core::weyl::{
    can_cnot_in_2, can_swap_in_3, chamber_volume, cnot2_complement, is_perfect_entangler,
    swap3_complement, volume_fraction,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn section5_volume_numbers() {
    // Exact tetrahedron volumes reproduce 68.5% and 75%.
    let chamber = chamber_volume();
    let s3: f64 = swap3_complement().iter().map(|t| t.tet.volume()).sum();
    assert!((1.0 - s3 / chamber - 0.685).abs() < 0.001, "S_SWAP,3");
    let c2: f64 = cnot2_complement().iter().map(|t| t.tet.volume()).sum();
    assert!((1.0 - c2 / chamber - 0.75).abs() < 1e-9, "S_CNOT,2");
    // Monte-Carlo membership agrees.
    let mut rng = StdRng::seed_from_u64(5);
    let mc = volume_fraction(can_swap_in_3, 30_000, &mut rng);
    assert!((mc - 0.685).abs() < 0.015, "MC S_SWAP,3 = {mc}");
    let mc = volume_fraction(can_cnot_in_2, 30_000, &mut rng);
    assert!((mc - 0.75).abs() < 0.015, "MC S_CNOT,2 = {mc}");
    let pe = volume_fraction(|p| is_perfect_entangler(p, 0.0), 30_000, &mut rng);
    assert!((pe - 0.5).abs() < 0.015, "MC PE = {pe}");
}

#[test]
fn table1_duration_formula_matches_paper_arithmetic() {
    // Paper Table I is consistent with duration = L*t2q + (L+1)*t1q.
    // Baseline: basis 83.04 ns, SWAP 3 layers, CNOT 2 layers.
    assert!((synthesized_duration(3, 83.04, 20.0) - 329.1).abs() < 0.1);
    assert!((synthesized_duration(2, 83.04, 20.0) - 226.1).abs() < 0.1);
    // Criterion 1: basis 10.15 ns; SWAP and CNOT both 3 layers.
    assert!((synthesized_duration(3, 10.15, 20.0) - 110.5).abs() < 0.1);
    // Criterion 2: basis 10.76; SWAP 3 layers, CNOT 2 layers.
    assert!((synthesized_duration(3, 10.76, 20.0) - 112.3).abs() < 0.1);
    assert!((synthesized_duration(2, 10.76, 20.0) - 81.51).abs() < 0.1);
}

#[test]
fn coherence_limit_reproduces_table1_fidelities() {
    // The Ignis-style 2Q coherence limit evaluated at the paper's
    // durations reproduces the paper's fidelities to ~1e-4.
    // Tolerance note: the paper averages per-edge fidelities over 180
    // edges with spread-out durations, so (by Jensen's inequality) its
    // table value exceeds the closed form evaluated at the mean duration;
    // the gap grows with duration and stays under 4e-4 here.
    let t = 80_000.0;
    let check = |dur: f64, expected: f64| {
        let fid = 1.0 - coherence_limit_2q([t; 2], [t; 2], dur);
        assert!(
            (fid - expected).abs() < 5e-4,
            "duration {dur}: got {fid:.5}, paper {expected:.5}"
        );
    };
    check(83.04, 0.99884);
    check(10.15, 0.99986);
    check(329.1, 0.99541);
    check(226.1, 0.99684);
    check(110.5, 0.99845);
    check(81.51, 0.99886);
}

#[test]
fn strong_drive_is_8x_faster_shape() {
    // Speed of the trajectory scales linearly with drive amplitude, so
    // xi = 0.04 vs 0.005 gives the paper's ~8x basis-gate speedup. Checked
    // here at a cheap amplitude pair with the ratio rescaled.
    let cell = PreparedCell::prepare(&UnitCellParams::default());
    let cfg = TrajectoryConfig {
        t_max: 40.0,
        dt: 0.02,
        drive_scan_points: 1,
        ..TrajectoryConfig::default()
    };
    let slow = cell.trajectory(0.02, &cfg);
    let fast = cell.trajectory(0.04, &cfg);
    let v_slow = nsb_core::sim::trajectory_speed(&slow, slow.points.len());
    let v_fast = nsb_core::sim::trajectory_speed(&fast, fast.points.len());
    let ratio = v_fast / v_slow * (0.02 / 0.005) / (0.04 / 0.005);
    assert!(
        (0.75..=1.3).contains(&ratio),
        "speed/amplitude linearity violated: {ratio}"
    );
}

#[test]
fn nonstandard_gate_supports_both_criteria_synthesis() {
    // A gate with the deviation profile our strong-drive trajectories
    // produce synthesizes SWAP in 3 and CNOT in 2 layers exactly.
    let gate = nsb_core::weyl::canonical_gate(WeylCoord::new(0.27, 0.25, 0.03));
    let dec = Decomposer::new(gate);
    let swap = dec.decompose(&Mat4::swap()).unwrap();
    assert_eq!(swap.layers, 3);
    assert!(swap.error < 1e-7);
    let cnot = dec.decompose(&Mat4::cnot()).unwrap();
    assert_eq!(cnot.layers, 2);
    assert!(cnot.error < 1e-7);
}
